#!/usr/bin/env bash
# Full local gate: everything CI runs, in the order cheapest-feedback-first.
#
#   scripts/check.sh            # build + test + fmt + clippy
#   OFFLINE=1 scripts/check.sh  # pass --offline to every cargo call
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO_FLAGS=()
if [[ "${OFFLINE:-0}" == "1" ]]; then
  CARGO_FLAGS+=(--offline)
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release "${CARGO_FLAGS[@]}" --workspace

echo "==> cargo test"
cargo test -q "${CARGO_FLAGS[@]}" --workspace

echo "==> fault matrix (resilience + fault-injection suite)"
cargo test -q "${CARGO_FLAGS[@]}" --test fault_matrix

echo "==> E-FAULT smoke (availability table under a scripted outage)"
cargo run -q --release "${CARGO_FLAGS[@]}" -p placeless-bench --bin experiments -- fault

echo "==> E-STAGE smoke (staged-plan partial hits + lease >=2x gate,"
echo "    zero-copy probe, 4 MiB big-doc smoke; writes BENCH_stage.json)"
cargo run -q --release "${CARGO_FLAGS[@]}" -p placeless-bench --bin experiments -- stage

echo "==> E-CRASH smoke (write-journal durability; writes BENCH_crash.json)"
cargo run -q --release "${CARGO_FLAGS[@]}" -p placeless-bench --bin experiments -- crash

echo "==> E-MERGE smoke (op-based multi-writer merge; writes BENCH_merge.json)"
cargo run -q --release "${CARGO_FLAGS[@]}" -p placeless-bench --bin experiments -- merge

echo "==> E-LOAD smoke (trace-driven load + coalesce probe + write mix; writes BENCH_load.json)"
E_LOAD_USERS=20000 E_LOAD_OPS=4000 E_LOAD_THREADS=4 \
  E_LOAD_WMIX_WRITES=800 E_LOAD_WMIX_DOCS=48 E_LOAD_WMIX_FLUSH_EVERY=400 \
  cargo run -q --release "${CARGO_FLAGS[@]}" -p placeless-bench --bin experiments -- load

echo "==> E-OVERLOAD smoke (deadline admission + brownout under a 10x burst; writes BENCH_overload.json)"
E_OVERLOAD_EVENTS=300 E_OVERLOAD_THREADS=4 E_OVERLOAD_WALL_MICROS=150 \
  cargo run -q --release "${CARGO_FLAGS[@]}" -p placeless-bench --bin experiments -- overload

echo "==> cargo clippy (-D warnings)"
cargo clippy "${CARGO_FLAGS[@]}" --workspace --all-targets -- -D warnings

echo "==> all checks passed"
