//! A personalized web portal: the paper's "financial portfolio tracking
//! and travel status" scenario (§3).
//!
//! Each user composes a my.yahoo-style page from a web-served template plus
//! live external sources. The portfolio property ships a *smart verifier*:
//! small quote moves are insignificant (entry stays valid), large moves
//! refresh the cached entry **in place** without re-running the read path.
//!
//! Run with `cargo run --example personalized_portal`.

use placeless::prelude::*;
use std::sync::Arc;

fn main() -> Result<()> {
    let clock = VirtualClock::new();
    let space = DocumentSpace::new(clock.clone());

    let trader = UserId(1);
    let traveler = UserId(2);

    // The portal template is a web page with a 60 s TTL, like my.yahoo.
    let portal = WebServer::new("my.portal.com");
    portal.publish("/home.html", "== Your morning briefing ==", 60_000_000);
    let provider = WebProvider::new(portal, "/home.html", Link::of_class(LinkClass::Wan, 3));
    let doc = space.create_document(trader, provider);
    space.add_reference(traveler, doc)?;

    // External sources outside Placeless control.
    let market = StockMarket::new();
    let xrx = market.list("XRX", 4_250); // $42.50
    let ibm = market.list("IBM", 11_800); // $118.00
    let board = TravelBoard::new();
    let aa100 = board.add_flight("AA100", "on time");

    // The trader's view appends live quotes; 2 % significance threshold.
    space.attach_active(
        Scope::Personal(trader),
        doc,
        Portfolio::new(
            vec![
                ("XRX".to_owned(), xrx.clone() as Arc<dyn ExternalSource>),
                ("IBM".to_owned(), ibm as Arc<dyn ExternalSource>),
            ],
            0.02,
        ),
    )?;

    // The traveler composes flight status with a runtime-authored
    // PropLang property instead of compiled code.
    let env = ExtEnv::new();
    env.add(aa100.clone());
    let flight_widget = ScriptProperty::compile(
        "flight-status",
        "@cost(300)\n@watch_ext(\"flight:AA100\")\nappend(\"\\nAA100: \") | append_ext(\"flight:AA100\")",
        env,
    )?;
    space.attach_active(Scope::Personal(traveler), doc, flight_widget)?;

    let cache = DocumentCache::with_defaults(space.clone());

    // First loads: per-user versions of the same document.
    println!(
        "trader view:\n{}\n",
        String::from_utf8_lossy(&cache.read(trader, doc)?)
    );
    println!(
        "traveler view:\n{}\n",
        String::from_utf8_lossy(&cache.read(traveler, doc)?)
    );

    // A 0.5 % move in XRX: insignificant, the trader's hit stays valid.
    market.set_price("XRX", 4_270);
    let _ = cache.read(trader, doc)?;
    let s = cache.stats();
    println!(
        "after +0.5% : hits={} replacements={} (small move tolerated)",
        s.hits, s.verifier_replacements
    );

    // A 10 % crash: the verifier rewrites the quotes section in place —
    // no full read path, no middleware round trip.
    market.set_price("XRX", 3_850);
    let view = cache.read(trader, doc)?;
    let s = cache.stats();
    println!(
        "after -10%  : hits={} replacements={}",
        s.hits, s.verifier_replacements
    );
    assert!(String::from_utf8_lossy(&view).contains("38.50"));

    // The traveler's flight is delayed: the PropLang @watch_ext epoch
    // verifier invalidates, and the refill shows the new status.
    aa100.set("delayed 45m");
    let view = cache.read(traveler, doc)?;
    println!("traveler after delay:\n{}", String::from_utf8_lossy(&view));
    let s = cache.stats();
    println!(
        "\nfinal stats : hits={} misses={} verifier_invalidations={} replacements={}",
        s.hits, s.misses, s.verifier_invalidations, s.verifier_replacements
    );
    Ok(())
}
