//! A daily mail briefing: documents over an append-only mail store,
//! composed with external sources, prefetched as a collection.
//!
//! Demonstrates three corners of the system at once:
//! * the [`MailStore`] repository, whose digest documents verify by
//!   message count (new mail invalidates the cached briefing);
//! * a PropLang header that stamps the briefing with live data;
//! * collection prefetch: opening one folder's briefing warms the rest.
//!
//! Run with `cargo run --example mail_briefing`.

use placeless::prelude::*;
use placeless_cache::PrefetchConfig;

fn main() -> Result<()> {
    let clock = VirtualClock::new();
    let space = DocumentSpace::new(clock.clone());
    let user = UserId(1);

    // The mail store, reached over the LAN.
    let mail = MailStore::new();
    mail.deliver("inbox", "doug@parc", "review by 11/30", "please");
    mail.deliver(
        "inbox",
        "karin@parc",
        "re: caching section",
        "comments inline",
    );
    mail.deliver("hotos", "chair@hotos99", "submission received", "#42");
    mail.deliver("board", "facilities@parc", "garage closed friday", "");

    let mut docs = Vec::new();
    for folder in ["inbox", "hotos", "board"] {
        let provider =
            MailDigestProvider::new(mail.clone(), folder, 10, Link::of_class(LinkClass::Lan, 17));
        let doc = space.create_document(user, provider);
        space.add_to_collection("briefing", doc)?;
        docs.push(doc);
    }

    // A runtime-authored header stamping each digest with the XRX quote.
    let market = StockMarket::new();
    let xrx = market.list("XRX", 4_250);
    let env = ExtEnv::new();
    env.add(xrx.clone());
    for &doc in &docs {
        let header = ScriptProperty::compile(
            "brief-header",
            "@watch_ext(\"stock:XRX\")\nprepend(\"MORNING BRIEFING (XRX \") | prepend_guard",
            env.clone(),
        );
        // `prepend_guard` is not a transform — show the parse error path,
        // then attach the correct program.
        assert!(header.is_err(), "typo'd programs fail at compile time");
        let header = ScriptProperty::compile(
            "brief-header",
            "@watch_ext(\"stock:XRX\")\nappend(\"\\n-- XRX \") | append_ext(\"stock:XRX\")",
            env.clone(),
        )?;
        space.attach_active(Scope::Personal(user), doc, header)?;
    }

    // An application-level cache with collection prefetch.
    let cache = DocumentCache::new(
        space.clone(),
        CacheConfig {
            prefetch: PrefetchConfig::up_to(8),
            ..CacheConfig::default()
        },
    );

    // Opening the inbox briefing warms the whole collection.
    let inbox = cache.read(user, docs[0])?;
    println!("{}", String::from_utf8_lossy(&inbox));
    println!(
        "after first read: prefetches={} resident={}",
        cache.stats().prefetches,
        cache.len()
    );
    let t0 = clock.now();
    let hotos = cache.read(user, docs[1])?;
    println!(
        "\n{}\n(hotos briefing served in {:.3} ms — prefetched)",
        String::from_utf8_lossy(&hotos),
        clock.now().since(t0) as f64 / 1_000.0
    );

    // New mail arrives: the count verifier invalidates the cached inbox.
    mail.deliver("inbox", "eyal@rice", "latency numbers", "attached");
    let fresh = cache.read(user, docs[0])?;
    assert!(String::from_utf8_lossy(&fresh).contains("latency numbers"));
    println!(
        "\nnew mail detected by the count verifier: verifier_invalidations={}",
        cache.stats().verifier_invalidations
    );

    // The stock moves: every briefing's @watch_ext verifier invalidates.
    market.set_price("XRX", 4_410);
    let restamped = cache.read(user, docs[2])?;
    assert!(String::from_utf8_lossy(&restamped).contains("44.10"));
    println!(
        "quote moved: briefings restamped (verifier_invalidations={})",
        cache.stats().verifier_invalidations
    );

    let stats = cache.stats();
    println!(
        "\nfinal: hits={} misses={} prefetches={} prefetch_hits={}",
        stats.hits, stats.misses, stats.prefetches, stats.prefetch_hits
    );
    Ok(())
}
