//! A day at the lab: the full system under a mixed, multi-user workload.
//!
//! Six researchers share a document space spanning four repositories (file
//! system, web, DMS, mail), each with their own personal property profile
//! and their own application-level cache. The simulation drives thousands
//! of reads and writes — through NFS editors, with out-of-band edits,
//! property churn, stock ticks, timer-driven replication, and collection
//! browsing — then prints the day's ledger.
//!
//! Run with `cargo run --example office_simulation`.

use placeless::prelude::*;
use placeless_cache::PrefetchConfig;
use placeless_simenv::trace::WorkloadBuilder;
use placeless_simenv::SimRng;
use std::sync::Arc;

fn main() -> Result<()> {
    let clock = VirtualClock::new();
    let space = DocumentSpace::new(clock.clone());
    register_standard(space.registry());

    let users: Vec<UserId> = (1..=6).map(UserId).collect();
    let names = ["eyal", "karin", "doug", "anthony", "paul", "keith"];

    // --- Repositories -----------------------------------------------------
    let fs = MemFs::new(clock.clone());
    let web = WebServer::new("parcweb");
    let dms = Dms::new();
    let market = StockMarket::new();
    let xrx = market.list("XRX", 4_250);

    let mut docs: Vec<DocumentId> = Vec::new();
    // Eight shared drafts on the file system.
    for i in 0..8 {
        let path = format!("/shared/draft-{i}.doc");
        fs.create(
            &path,
            format!("draft {i}: teh placeless documents paper. more text follows."),
        );
        let provider = FsProvider::new(fs.clone(), &path, Link::of_class(LinkClass::Lan, i as u64));
        docs.push(space.create_document(users[0], provider));
    }
    // Four web pages.
    for i in 0..4 {
        let path = format!("/pages/{i}.html");
        web.publish(
            &path,
            format!("page {i} content. workshop schedule."),
            30_000_000,
        );
        let provider = WebProvider::new(web.clone(), &path, Link::of_class(LinkClass::Lan, 20 + i));
        docs.push(space.create_document(users[0], provider));
    }
    // Two DMS specs.
    for i in 0..2 {
        let key = format!("spec-{i}");
        dms.import(&key, format!("specification {i} v1"));
        let provider = DmsProvider::new(
            dms.clone(),
            &key,
            "placeless",
            Link::of_class(LinkClass::Lan, 30 + i),
        );
        let doc = space.create_document(users[0], provider.clone());
        provider.wire_invalidations(space.bus().clone(), doc);
        docs.push(doc);
    }

    // Everyone gets references; the drafts form a collection.
    for &user in &users {
        for &doc in &docs {
            space.add_reference(user, doc)?;
        }
    }
    for &doc in &docs[..8] {
        space.add_to_collection("drafts", doc)?;
    }

    // --- Properties -------------------------------------------------------
    // Universal: notifiers + versioning on the shared drafts.
    let versioning = Versioning::new();
    for &doc in &docs {
        space.attach_active(Scope::Universal, doc, ContentWriteNotifier::any())?;
        space.attach_active(Scope::Universal, doc, PropertyChangeNotifier::any())?;
    }
    space.attach_active(Scope::Universal, docs[0], versioning.clone())?;

    // Personal profiles, applied as data.
    let profiles = [
        "spell-corrector\nqos factor=20.0", // eyal
        "translate language=\"fr\"",        // karin
        "summarize sentences=2",            // doug
        "watermark",                        // anthony
        "",                                 // paul: vanilla
        "rot13-at-rest",                    // keith (at-rest scrambling)
    ];
    for (&user, profile) in users.iter().zip(profiles) {
        let specs = parse_profile(profile)?;
        for &doc in &docs[..8] {
            apply_profile(&space, Scope::Personal(user), doc, &specs)?;
        }
    }
    // Eyal's portfolio page on top of one web doc.
    space.attach_active(
        Scope::Personal(users[0]),
        docs[8],
        Portfolio::new(
            vec![("XRX".to_owned(), xrx.clone() as Arc<dyn ExternalSource>)],
            0.02,
        ),
    )?;
    // Eyal replicates draft 0 to Rice nightly.
    let rice = MemFs::new(clock.clone());
    let replicate = ReplicateTo::new(
        rice.clone(),
        "/rice/draft-0.doc",
        Link::of_class(LinkClass::Wan, 40),
    );
    space.attach_active(Scope::Personal(users[0]), docs[0], replicate.clone())?;

    // --- Caches: one per user, GDSF with collection prefetch --------------
    let caches: Vec<Arc<DocumentCache>> = users
        .iter()
        .map(|_| {
            DocumentCache::new(
                space.clone(),
                CacheConfig {
                    capacity_bytes: 64 * 1024,
                    policy: placeless_cache::PolicyFactory::by_name("gdsf").expect("gdsf"),
                    prefetch: PrefetchConfig::up_to(4),
                    ..CacheConfig::default()
                },
            )
        })
        .collect();

    // NFS layer for the editors, over each user's cache.
    let nfs_servers: Vec<Arc<NfsServer>> = caches
        .iter()
        .map(|cache| {
            let nfs = NfsServer::new(CachedBackend::new(cache.clone()));
            for (i, &doc) in docs[..8].iter().enumerate() {
                nfs.export(&format!("/shared/draft-{i}.doc"), doc);
            }
            nfs
        })
        .collect();

    // --- The day ----------------------------------------------------------
    let events = WorkloadBuilder::new(1999)
        .users(users.len())
        .documents(docs.len())
        .zipf_theta(0.7)
        .write_fraction(0.08)
        .events(3_000)
        .mean_think_micros(20_000)
        .build();
    let mut rng = SimRng::seeded(42);
    let mut editor_saves = 0u64;
    let mut oob_edits = 0u64;

    for (i, event) in events.iter().enumerate() {
        clock.advance(event.think_micros);
        let user = users[event.user];
        let doc = docs[event.doc];
        let cache = &caches[event.user];

        if event.is_write && event.doc < 8 {
            // A save through the user's MS-Word over NFS.
            let path = format!("/shared/draft-{}.doc", event.doc);
            if let Ok(mut editor) = Editor::open(nfs_servers[event.user].clone(), user, &path) {
                editor.type_text(&format!(" [edit by {} at {}]", names[event.user], i));
                editor.save()?;
                editor_saves += 1;
            }
        } else {
            let _ = cache.read(user, doc)?;
        }

        // Background noise.
        if i % 100 == 99 {
            market.set_price("XRX", 4_000 + rng.next_below(600));
        }
        if i % 250 == 249 {
            // Someone edits a draft directly over a raw NFS mount.
            let victim = rng.next_below(8) as usize;
            fs.write_direct(
                &format!("/shared/draft-{victim}.doc"),
                format!("draft {victim}: rewritten out-of-band at event {i}."),
            )?;
            oob_edits += 1;
        }
        if i % 500 == 499 {
            space.timer_tick()?; // end-of-“hour”: replication etc.
        }
    }
    space.timer_tick()?;

    // --- The ledger ---------------------------------------------------------
    println!("=== a day at the lab: {} events ===\n", events.len());
    println!(
        "{:<10} {:>6} {:>7} {:>7} {:>10} {:>10} {:>9}",
        "user", "hits", "misses", "hit %", "notif.inv", "verif.inv", "prefetch"
    );
    for (i, cache) in caches.iter().enumerate() {
        let s = cache.stats();
        println!(
            "{:<10} {:>6} {:>7} {:>6.1}% {:>10} {:>10} {:>9}",
            names[i],
            s.hits,
            s.misses,
            s.hit_rate().unwrap_or(0.0) * 100.0,
            s.notifier_invalidations,
            s.verifier_invalidations,
            s.prefetches
        );
    }
    let (posted, delivered) = space.bus().counters();
    println!("\neditor saves       : {editor_saves}");
    println!("out-of-band edits  : {oob_edits}");
    println!("versions of draft-0: {}", versioning.version_count());
    println!("rice replicas made : {}", replicate.copies_made());
    println!("invalidations      : {posted} posted, {delivered} delivered");
    println!("middleware ops     : {}", space.ops_count());
    println!(
        "virtual time       : {:.1} s",
        clock.now().as_micros() as f64 / 1e6
    );

    // Spot-check consistency: every user's final view of draft 1 reflects
    // the latest content (no cache serves stale bytes at rest).
    let (truth, _) = space.read_document(users[4], docs[1])?;
    let paul_cached = caches[4].read(users[4], docs[1])?;
    assert_eq!(truth, paul_cached, "cache agrees with the middleware");
    println!("\nfinal consistency spot-check: OK");
    Ok(())
}
