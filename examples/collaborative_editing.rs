//! The paper's running example, end to end: Eyal, Paul, and Doug
//! collaborate on the HotOS draft (Figures 1 and 2).
//!
//! * the base document carries a universal **versioning** property and the
//!   caching **notifiers**;
//! * Eyal personalizes with **spelling correction** and **replication to
//!   Rice**; Doug attaches a *read by 11/30* label; Paul a *1999 workshop
//!   submission* label;
//! * MS Word is played by the scripted [`Editor`] over the **NFS layer**,
//!   with an application-level cache in between.
//!
//! Run with `cargo run --example collaborative_editing`.

use placeless::prelude::*;
use placeless_simenv::LatencyModel;

fn main() -> Result<()> {
    let clock = VirtualClock::new();
    let space = DocumentSpace::new(clock.clone());

    let eyal = UserId(1);
    let paul = UserId(2);
    let doug = UserId(3);

    // The draft lives in the PARC file system, reached over the LAN.
    let parc_fs = MemFs::new(clock.clone());
    parc_fs.create(
        "/tilde/edelara/hotos.doc",
        "Caching in teh Placeless Documents system poses new challenges.",
    );
    let provider = FsProvider::new(
        parc_fs.clone(),
        "/tilde/edelara/hotos.doc",
        Link::of_class(LinkClass::Lan, 1),
    );
    let doc = space.create_document(eyal, provider);
    space.add_reference(paul, doc)?;
    space.add_reference(doug, doc)?;

    // --- Figure 1: universal and personal properties ---------------------
    let versioning = Versioning::new();
    space.attach_active(Scope::Universal, doc, versioning.clone())?;
    space.attach_active(Scope::Universal, doc, ContentWriteNotifier::any())?;
    space.attach_active(Scope::Universal, doc, PropertyChangeNotifier::any())?;

    // Eyal: keep a copy at Rice + spell correction. Order matters (§3,
    // cause 3): on the write path the later-attached property runs first,
    // so attaching the replicator *before* the corrector makes the replica
    // capture the corrected text.
    let rice_fs = MemFs::new(clock.clone());
    let replicate = ReplicateTo::new(
        rice_fs.clone(),
        "/rice/hotos.doc",
        Link::of_class(LinkClass::Wan, 2),
    );
    space.attach_active(Scope::Personal(eyal), doc, replicate.clone())?;
    space.attach_active(Scope::Personal(eyal), doc, SpellCheck::new())?;

    // Paul and Doug: static statements about the document's context.
    space.attach_static(
        Scope::Personal(paul),
        doc,
        "label",
        "1999 workshop submission",
    )?;
    space.attach_static(Scope::Personal(doug), doc, "deadline", "read by 11/30")?;

    // --- Figure 2: MS Word saves through NFS + cache ----------------------
    let cache = DocumentCache::new(
        space.clone(),
        CacheConfig {
            local_latency: LatencyModel::new(50, 5),
            ..CacheConfig::default()
        },
    );
    let nfs = NfsServer::new(CachedBackend::new(cache.clone()));
    nfs.export("/tilde/edelara/hotos.doc", doc);

    let mut word = Editor::open(nfs.clone(), eyal, "/tilde/edelara/hotos.doc")?;
    println!("eyal opens : {}", word.text());
    word.type_text(" Active properties recieve events.");
    word.save()?; // spell-corrector runs on the write path

    // Doug reads the corrected draft (no corrector of his own needed).
    let doug_view = Editor::open(nfs.clone(), doug, "/tilde/edelara/hotos.doc")?;
    println!("doug reads : {}", doug_view.text());
    assert!(doug_view.text().contains("receive"));
    assert!(!doug_view.text().contains("recieve"));

    // The universal versioning property linked the revision at the base.
    println!("versions   : {}", versioning.version_count());
    println!(
        "version 1  : {:?}",
        space.property_value(eyal, doc, "version:1").is_some()
    );

    // End of day: the timer fires and Eyal's replica ships to Rice.
    space.timer_tick()?;
    println!(
        "rice copy  : {}",
        String::from_utf8_lossy(&rice_fs.read("/rice/hotos.doc")?)
    );

    // Cache behaviour: Doug rereads — a hit; then Paul edits the file
    // directly in the file system (outside Placeless control!) and the
    // mtime verifier catches it on Doug's next read.
    let _ = cache.read(doug, doc)?;
    parc_fs.write_direct(
        "/tilde/edelara/hotos.doc",
        "Paul rewrote everything via NFS mount.",
    )?;
    let after = cache.read(doug, doc)?;
    println!("after edit : {}", String::from_utf8_lossy(&after));

    let stats = cache.stats();
    println!(
        "cache      : hits={} misses={} verifier_invalidations={} notifier_invalidations={}",
        stats.hits, stats.misses, stats.verifier_invalidations, stats.notifier_invalidations
    );
    Ok(())
}
