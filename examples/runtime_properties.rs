//! Runtime-authored active properties with PropLang.
//!
//! The original Placeless system attached executable Java objects to
//! documents. A compiled Rust system can't load code at runtime, so this
//! reproduction carries behaviour as *data*: PropLang programs attached
//! through the property registry. This example authors several properties
//! from strings — including their caching metadata — and shows they are
//! full citizens of the caching architecture.
//!
//! Run with `cargo run --example runtime_properties`.

use placeless::prelude::*;

fn main() -> Result<()> {
    let clock = VirtualClock::new();
    let space = DocumentSpace::new(clock.clone());
    let user = UserId(1);

    let provider = MemoryProvider::new(
        "report",
        "draft report. teh numbers look good. final section pending.",
        2_000,
    );
    let doc = space.create_document(user, provider);

    // Register the interpreter-backed kind once...
    let env = ExtEnv::new();
    let quotes = SimpleExternal::new("stock:XRX", "42.50");
    env.add(quotes.clone());
    register_proplang(space.registry(), env);

    // ...then attach behaviour written as strings, at runtime.
    let programs: &[(&str, &str)] = &[
        (
            "fix-typos",
            r#"replace("teh", "the")"#,
        ),
        (
            "exec-summary",
            "@cost(1500)\nfirst_sentences(2) | prepend(\"EXEC SUMMARY: \")",
        ),
        (
            "ticker",
            "@watch_ext(\"stock:XRX\")\nappend(\"\\n[XRX \") | append_ext(\"stock:XRX\") | append(\"]\")",
        ),
    ];
    for (name, source) in programs {
        space.attach_by_name(
            Scope::Personal(user),
            doc,
            "proplang",
            &Params::new().with("name", *name).with("source", *source),
        )?;
        println!("attached proplang:{name}");
    }

    let (view, report) = space.read_document(user, doc)?;
    println!("\ncomposed view:\n{}\n", String::from_utf8_lossy(&view));
    println!(
        "pipeline executed: {:?}\ncost: {:.0}µs, verifiers: {}",
        report.executed,
        report.cost.effective_micros(),
        report.verifiers.len()
    );

    // The scripted properties collaborate with the cache like compiled
    // ones: the @watch_ext verifier invalidates on quote changes.
    let cache = DocumentCache::with_defaults(space.clone());
    cache.read(user, doc)?;
    cache.read(user, doc)?;
    println!("\nafter two cached reads: {:?}", cache.stats().hits);
    quotes.set("44.10");
    let fresh = cache.read(user, doc)?;
    assert!(String::from_utf8_lossy(&fresh).contains("44.10"));
    println!(
        "quote moved → verifier_invalidations={}, fresh ticker shown",
        cache.stats().verifier_invalidations
    );

    // Property *modification* (upgrading a script) is invalidation cause 2:
    // attach a change notifier, then swap the summary program in place.
    space.attach_active(Scope::Personal(user), doc, PropertyChangeNotifier::any())?;
    cache.read(user, doc)?;
    let props = space.list_properties(Scope::Personal(user), doc)?;
    let (summary_id, _) = props
        .iter()
        .find(|(_, name)| name == "proplang:exec-summary")
        .expect("attached above");
    let upgraded = ScriptProperty::compile(
        "exec-summary-v2",
        "first_sentences(1) | prepend(\"TL;DR: \")",
        ExtEnv::new(),
    )?;
    space.modify_property(
        Scope::Personal(user),
        doc,
        *summary_id,
        AttachedProperty::Active(upgraded),
    )?;
    let view = cache.read(user, doc)?;
    println!(
        "\nafter upgrading the script:\n{}",
        String::from_utf8_lossy(&view)
    );
    println!(
        "notifier_invalidations={}",
        cache.stats().notifier_invalidations
    );
    Ok(())
}
