//! Quickstart: documents, active properties, and a cache in ~80 lines.
//!
//! Run with `cargo run --example quickstart`.

use placeless::prelude::*;

fn main() -> Result<()> {
    // Everything runs on a shared virtual clock: latencies below are
    // simulated microseconds, so results are deterministic.
    let clock = VirtualClock::new();
    let space = DocumentSpace::new(clock.clone());

    let alice = UserId(1);
    let bob = UserId(2);

    // A base document whose bits live in an in-memory repository; fetching
    // them costs 5 ms.
    let provider = MemoryProvider::new("notes", "hello placeless world", 5_000);
    let doc = space.create_document(alice, provider);
    space.add_reference(bob, doc)?;

    // Personalize: Alice reads the document in French; Bob gets a summary.
    space.attach_active(Scope::Personal(alice), doc, Translate::to("fr"))?;
    space.attach_active(Scope::Personal(bob), doc, Summarize::first_sentences(1))?;
    // Universal notifiers keep caches consistent with property changes and
    // content writes through the middleware.
    space.attach_active(Scope::Universal, doc, PropertyChangeNotifier::any())?;
    space.attach_active(Scope::Universal, doc, ContentWriteNotifier::any())?;

    // Same document, two different contents — the paper's core point.
    let (alice_view, report) = space.read_document(alice, doc)?;
    let (bob_view, _) = space.read_document(bob, doc)?;
    println!("alice sees : {}", String::from_utf8_lossy(&alice_view));
    println!("bob sees   : {}", String::from_utf8_lossy(&bob_view));
    println!(
        "read path  : cacheability={:?}, cost={:.0}µs, verifiers={}",
        report.cacheability,
        report.cost.effective_micros(),
        report.verifiers.len()
    );

    // Put an application-level cache in front of the middleware.
    let cache = DocumentCache::with_defaults(space.clone());
    let t0 = clock.now();
    cache.read(alice, doc)?; // miss: full property path
    let miss_ms = clock.now().since(t0) as f64 / 1_000.0;
    let t1 = clock.now();
    cache.read(alice, doc)?; // hit: verifiers + local copy
    let hit_ms = clock.now().since(t1) as f64 / 1_000.0;
    println!("cache miss : {miss_ms:.2} ms");
    println!("cache hit  : {hit_ms:.2} ms");

    // Writes through the middleware invalidate cached versions via the
    // notifier — the next read misses and sees fresh content.
    space.write_document(bob, doc, b"rewritten by bob. second sentence.")?;
    let fresh = cache.read(alice, doc)?;
    println!("after write: {}", String::from_utf8_lossy(&fresh));

    let stats = cache.stats();
    println!(
        "cache stats: hits={} misses={} notifier_invalidations={}",
        stats.hits, stats.misses, stats.notifier_invalidations
    );

    // Attach new behaviour at runtime, by name, with parameters.
    register_standard(space.registry());
    space.attach_by_name(Scope::Personal(alice), doc, "watermark", &Params::new())?;
    let (view, _) = space.read_document(alice, doc)?;
    println!("watermarked: {}", String::from_utf8_lossy(&view));

    Ok(())
}
