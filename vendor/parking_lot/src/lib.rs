//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::Mutex` / `std::sync::RwLock` behind parking_lot's
//! poison-free API (`lock()` / `read()` / `write()` return guards directly).
//! Poisoning is deliberately ignored: a panic while holding a lock does not
//! prevent other threads from continuing, matching parking_lot semantics.

use std::fmt;
use std::sync::{self, MutexGuard as StdMutexGuard};
use std::sync::{RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard};

/// A mutual-exclusion lock with a poison-free API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: StdMutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: guard }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: e.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock with a poison-free API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: StdReadGuard<'a, T>,
}

/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: StdWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trips() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
