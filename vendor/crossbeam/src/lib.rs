//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::thread::scope` with the crossbeam calling
//! convention (spawned closures receive a `&Scope` argument) implemented
//! over `std::thread::scope`. One behavioural difference: a panicking
//! spawned thread aborts the scope by propagating the panic rather than
//! surfacing it through the returned `Result`, which is indistinguishable
//! for callers that `.unwrap()` the result — as all callers here do.

pub mod thread {
    /// Result type mirroring `crossbeam::thread::scope`.
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// A scope for spawning borrowing threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread that may borrow from the enclosing scope. The
        /// closure receives this scope, so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned;
    /// returns once every spawned thread has finished.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn nested_spawn_through_the_scope_argument() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }
}
