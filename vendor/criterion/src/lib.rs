//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the workspace's benches use —
//! `criterion_group!` / `criterion_main!`, `Criterion::bench_function` /
//! `benchmark_group`, `BenchmarkGroup::{throughput, bench_function,
//! bench_with_input, finish}`, `Bencher::{iter, iter_with_setup}`,
//! `BenchmarkId`, `Throughput`, and `black_box` — over a simple
//! time-bounded runner that reports the median wall-clock time per
//! iteration. No statistics, plots, or baseline comparisons.
//!
//! When invoked with `--test` (as `cargo test` does for `harness = false`
//! bench targets) each benchmark runs a single iteration so test runs
//! stay fast.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Wall-clock budget per benchmark in normal (non `--test`) runs.
const MEASURE_BUDGET: Duration = Duration::from_millis(120);
/// Iteration cap per benchmark in normal runs.
const MAX_ITERS: u32 = 60;

/// Identifier for one parameterised benchmark case.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter value.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        Self {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// An id carrying just a parameter value.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Throughput annotation; recorded but only echoed in output.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Measurement driver handed to benchmark closures.
pub struct Bencher {
    quick: bool,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, repeating until the budget is exhausted.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.iter_with_setup(|| (), |()| routine());
    }

    /// Times `routine` with a fresh untimed `setup` product per iteration.
    pub fn iter_with_setup<S, O, P, R>(&mut self, mut setup: P, mut routine: R)
    where
        P: FnMut() -> S,
        R: FnMut(S) -> O,
    {
        let budget_start = Instant::now();
        let max_iters = if self.quick { 1 } else { MAX_ITERS };
        for _ in 0..max_iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
            if !self.quick && budget_start.elapsed() >= MEASURE_BUDGET {
                break;
            }
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort();
        self.samples[self.samples.len() / 2]
    }
}

/// Top-level benchmark registry / runner.
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs harness=false bench binaries with `--test`.
        let quick = std::env::args().any(|a| a == "--test");
        Self { quick }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(self.quick, name, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A named set of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion.quick, &label, self.throughput, f);
        self
    }

    /// Runs a parameterised benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(self.criterion.quick, &label, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group. Present for API compatibility.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    quick: bool,
    label: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        quick,
        samples: Vec::new(),
    };
    f(&mut bencher);
    let median = bencher.median();
    let iters = bencher.samples.len();
    let rate = match throughput {
        Some(Throughput::Bytes(bytes)) if median > Duration::ZERO => {
            let mbps = bytes as f64 / median.as_secs_f64() / 1e6;
            format!("  {mbps:.1} MB/s")
        }
        Some(Throughput::Elements(n)) if median > Duration::ZERO => {
            let eps = n as f64 / median.as_secs_f64();
            format!("  {eps:.0} elem/s")
        }
        _ => String::new(),
    };
    println!("bench {label:<44} median {median:>12?} ({iters} iters){rate}");
}

/// Declares a benchmark group function runnable via [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the `main` entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut count = 0u32;
        let mut criterion = Criterion { quick: true };
        criterion.bench_function("probe", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn group_with_input_and_throughput() {
        let mut criterion = Criterion { quick: true };
        let mut group = criterion.benchmark_group("g");
        group.throughput(Throughput::Bytes(1024));
        let data = vec![1u8; 16];
        let mut touched = false;
        group.bench_with_input(BenchmarkId::from_parameter(16), &data, |b, d| {
            b.iter(|| {
                touched = true;
                d.len()
            })
        });
        group.finish();
        assert!(touched);
    }

    #[test]
    fn iter_with_setup_separates_phases() {
        let mut bencher = Bencher {
            quick: true,
            samples: Vec::new(),
        };
        bencher.iter_with_setup(|| vec![0u8; 8], |v| v.len());
        assert_eq!(bencher.samples.len(), 1);
    }
}
