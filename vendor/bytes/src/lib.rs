//! Offline stand-in for the `bytes` crate.
//!
//! The container this workspace builds in has no crates.io access, so the
//! workspace vendors the small slice of the `bytes` API it actually uses:
//! [`Bytes`] as a cheaply clonable, immutable byte buffer. Cloning shares
//! the underlying allocation (`Arc<[u8]>`), which is the property the cache
//! relies on when many entries reference the same content, and
//! [`Bytes::slice`] produces refcounted sub-views of the same allocation,
//! which is what lets the streaming transform pipeline hand chunks between
//! stages without copying.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable immutable byte buffer, viewing a sub-range of a
/// shared allocation.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    offset: usize,
    len: usize,
}

impl Bytes {
    fn from_arc(data: Arc<[u8]>) -> Self {
        let len = data.len();
        Self {
            data,
            offset: 0,
            len,
        }
    }

    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a buffer from a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::from_arc(bytes.into())
    }

    /// Creates a buffer by copying `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from_arc(data.into())
    }

    /// Returns the number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns the contents as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.offset..self.offset + self.len]
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Returns a sub-view of the buffer sharing the same allocation — no
    /// bytes are copied, only the refcount is bumped.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted, matching slice
    /// indexing semantics.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice range {start}..{end} out of bounds for Bytes of length {}",
            self.len
        );
        Self {
            data: self.data.clone(),
            offset: self.offset + start,
            len: end - start,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self::from_arc(v.into())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self::from_arc(s.into_bytes().into())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Self::from_static(s.as_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Self::from_static(s)
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Self::from_arc(b.into())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Self::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl Eq for Bytes {}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

macro_rules! eq_via_bytes {
    ($($ty:ty),*) => {$(
        impl PartialEq<$ty> for Bytes {
            fn eq(&self, other: &$ty) -> bool {
                let other: &[u8] = other.as_ref();
                *self.as_slice() == *other
            }
        }
        impl PartialEq<Bytes> for $ty {
            fn eq(&self, other: &Bytes) -> bool {
                let this: &[u8] = self.as_ref();
                *this == *other.as_slice()
            }
        }
    )*};
}

eq_via_bytes!(str, &str, String, [u8], &[u8], Vec<u8>);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_allocation() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_slice().as_ptr(), b.as_slice().as_ptr()));
    }

    #[test]
    fn compares_against_strings_and_slices() {
        let b = Bytes::from_static(b"hello");
        assert_eq!(b, "hello");
        assert_eq!("hello", b);
        assert_eq!(b, b"hello"[..]);
        assert_eq!(b.len(), 5);
        assert!(b.starts_with(b"he"));
    }

    #[test]
    fn empty_and_debug() {
        assert!(Bytes::new().is_empty());
        assert_eq!(format!("{:?}", Bytes::from_static(b"a\n")), "b\"a\\n\"");
    }

    #[test]
    fn slice_shares_the_allocation() {
        let full = Bytes::from_static(b"hello world");
        let word = full.slice(6..);
        assert_eq!(word, "world");
        assert!(std::ptr::eq(
            word.as_slice().as_ptr(),
            full.as_slice()[6..].as_ptr()
        ));
        // Slices of slices compose.
        let tail = word.slice(1..3);
        assert_eq!(tail, "or");
        let empty = word.slice(5..5);
        assert!(empty.is_empty());
    }

    #[test]
    fn slice_range_forms() {
        let b = Bytes::from_static(b"abcdef");
        assert_eq!(b.slice(..), "abcdef");
        assert_eq!(b.slice(2..), "cdef");
        assert_eq!(b.slice(..4), "abcd");
        assert_eq!(b.slice(1..=2), "bc");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        Bytes::from_static(b"abc").slice(1..5);
    }

    #[test]
    fn sliced_views_compare_hash_and_debug_by_view() {
        use std::collections::hash_map::DefaultHasher;
        let a = Bytes::from_static(b"xxabcxx").slice(2..5);
        let b = Bytes::from_static(b"abc");
        assert_eq!(a, b);
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
        let hash = |v: &Bytes| {
            let mut h = DefaultHasher::new();
            v.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b), "hash must follow the visible view");
        assert_eq!(format!("{a:?}"), "b\"abc\"");
        assert_eq!(a.to_vec(), b"abc");
    }
}
