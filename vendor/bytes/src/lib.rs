//! Offline stand-in for the `bytes` crate.
//!
//! The container this workspace builds in has no crates.io access, so the
//! workspace vendors the small slice of the `bytes` API it actually uses:
//! [`Bytes`] as a cheaply clonable, immutable byte buffer. Cloning shares
//! the underlying allocation (`Arc<[u8]>`), which is the property the cache
//! relies on when many entries reference the same content.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a buffer from a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self { data: bytes.into() }
    }

    /// Creates a buffer by copying `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self { data: data.into() }
    }

    /// Returns the number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the contents as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: v.into() }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self {
            data: s.into_bytes().into(),
        }
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Self::from_static(s.as_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Self::from_static(s)
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Self { data: b.into() }
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Self::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl Eq for Bytes {}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.data[..].cmp(&other.data[..])
    }
}

macro_rules! eq_via_bytes {
    ($($ty:ty),*) => {$(
        impl PartialEq<$ty> for Bytes {
            fn eq(&self, other: &$ty) -> bool {
                let other: &[u8] = other.as_ref();
                self.data[..] == *other
            }
        }
        impl PartialEq<Bytes> for $ty {
            fn eq(&self, other: &Bytes) -> bool {
                let this: &[u8] = self.as_ref();
                *this == other.data[..]
            }
        }
    )*};
}

eq_via_bytes!(str, &str, String, [u8], &[u8], Vec<u8>);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_allocation() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_slice().as_ptr(), b.as_slice().as_ptr()));
    }

    #[test]
    fn compares_against_strings_and_slices() {
        let b = Bytes::from_static(b"hello");
        assert_eq!(b, "hello");
        assert_eq!("hello", b);
        assert_eq!(b, b"hello"[..]);
        assert_eq!(b.len(), 5);
        assert!(b.starts_with(b"he"));
    }

    #[test]
    fn empty_and_debug() {
        assert!(Bytes::new().is_empty());
        assert_eq!(format!("{:?}", Bytes::from_static(b"a\n")), "b\"a\\n\"");
    }
}
