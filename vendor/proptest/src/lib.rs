//! Offline stand-in for the `proptest` crate.
//!
//! The workspace's property tests use a modest slice of proptest: the
//! `proptest!` macro, `prop_assert*`, `prop_oneof!`, `Just`, `any`,
//! numeric-range strategies, tuple composition, `prop_map`,
//! `collection::vec`, `sample::select`, and regex-string strategies. This
//! crate implements exactly that slice over a deterministic xorshift RNG.
//!
//! Differences from real proptest, accepted for offline builds:
//! * no shrinking — a failing case panics with the generated inputs
//!   embedded in the assertion message only;
//! * deterministic per-test seeding (test name + case index) instead of
//!   OS entropy, so runs are reproducible by construction;
//! * the regex-string strategy supports the subset of syntax the tests
//!   use: literals, escapes, `[...]` classes with ranges, `\PC`
//!   (printable char), and the `*`/`+`/`?`/`{m}`/`{m,n}` quantifiers.

pub mod test_runner {
    /// Run-time configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Creates a config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Deterministic xorshift64* generator used for case generation.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the RNG for `(test name, case index)`. The same pair
        /// always produces the same stream.
        pub fn for_case(name: &str, case: u32) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let state = h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            Self { state }
        }

        /// Returns the next pseudo-random 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Returns a value uniform in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Returns a value uniform in `[lo, hi)`; the range must be
        /// non-empty.
        pub fn in_range(&mut self, lo: u64, hi: u64) -> u64 {
            lo + self.below(hi - lo)
        }

        /// Returns a float uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::Range;
    use std::rc::Rc;

    /// A value generator. The minimal analogue of proptest's `Strategy`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
        }
    }

    /// A type-erased strategy (not `Send`; tests are single-threaded).
    pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            Self(self.0.clone())
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (self.0)(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    #[derive(Clone)]
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Creates a union over `arms`; must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $ty
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + rng.unit_f64() as f32 * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }

    /// Types with a canonical `any::<T>()` strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value, with a bias toward edge values.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    // One case in eight is an edge value.
                    if rng.below(8) == 0 {
                        match rng.below(3) {
                            0 => 0 as $ty,
                            1 => <$ty>::MAX,
                            _ => <$ty>::MIN,
                        }
                    } else {
                        rng.next_u64() as $ty
                    }
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.below(2) == 0
        }
    }

    /// Strategy for [`Arbitrary`] types; build with [`any`].
    #[derive(Clone)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Returns the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }

    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            super::string::generate(self, rng)
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for vectors with a length drawn from `len`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.len.start < self.len.end {
                rng.in_range(self.len.start as u64, self.len.end as u64) as usize
            } else {
                self.len.start
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `Vec`s of `element` values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod sample {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy selecting uniformly from a fixed list.
    #[derive(Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }

    /// Picks uniformly from `options`; must be non-empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select over an empty list");
        Select { options }
    }
}

mod string {
    use super::test_runner::TestRng;

    /// Cap for unbounded quantifiers (`*`, `+`).
    const UNBOUNDED_CAP: u32 = 48;

    /// Occasional non-ASCII characters emitted for `\PC`, exercising
    /// UTF-8 handling in parsers under test.
    const EXOTIC: [char; 8] = ['é', 'ß', 'Ω', 'λ', 'ю', '中', '☃', '🦀'];

    #[derive(Debug, Clone)]
    enum Atom {
        /// A fixed character.
        Literal(char),
        /// A `[...]` class stored as inclusive ranges.
        Class(Vec<(char, char)>),
        /// `\PC`: any printable character.
        Printable,
    }

    fn parse_escape(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> char {
        match chars.next().expect("dangling escape in pattern") {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            c => c,
        }
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Atom {
        let mut ranges = Vec::new();
        let mut pending: Option<char> = None;
        loop {
            let c = chars.next().expect("unterminated [ class in pattern");
            match c {
                ']' => {
                    if let Some(p) = pending {
                        ranges.push((p, p));
                    }
                    break;
                }
                '-' if pending.is_some() && chars.peek() != Some(&']') => {
                    let lo = pending.take().expect("checked above");
                    let mut hi = chars.next().expect("dangling - in class");
                    if hi == '\\' {
                        hi = parse_escape(chars);
                    }
                    ranges.push((lo, hi));
                }
                '\\' => {
                    if let Some(p) = pending.replace(parse_escape(chars)) {
                        ranges.push((p, p));
                    }
                }
                other => {
                    if let Some(p) = pending.replace(other) {
                        ranges.push((p, p));
                    }
                }
            }
        }
        Atom::Class(ranges)
    }

    fn parse_quantifier(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    ) -> Option<(u32, u32)> {
        match chars.peek() {
            Some('*') => {
                chars.next();
                Some((0, UNBOUNDED_CAP))
            }
            Some('+') => {
                chars.next();
                Some((1, UNBOUNDED_CAP))
            }
            Some('?') => {
                chars.next();
                Some((0, 1))
            }
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                let (lo, hi) = match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad {m,n} quantifier"),
                        hi.trim().parse().expect("bad {m,n} quantifier"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad {n} quantifier");
                        (n, n)
                    }
                };
                Some((lo, hi))
            }
            _ => None,
        }
    }

    fn parse(pattern: &str) -> Vec<(Atom, u32, u32)> {
        let mut chars = pattern.chars().peekable();
        let mut atoms = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => parse_class(&mut chars),
                '\\' => match chars.peek() {
                    Some('P') => {
                        chars.next();
                        let cat = chars.next().expect("dangling \\P in pattern");
                        assert_eq!(cat, 'C', "only \\PC is supported");
                        Atom::Printable
                    }
                    _ => Atom::Literal(parse_escape(&mut chars)),
                },
                other => Atom::Literal(other),
            };
            let (lo, hi) = parse_quantifier(&mut chars).unwrap_or((1, 1));
            atoms.push((atom, lo, hi));
        }
        atoms
    }

    fn emit(atom: &Atom, rng: &mut TestRng, out: &mut String) {
        match atom {
            Atom::Literal(c) => out.push(*c),
            Atom::Class(ranges) => {
                let (lo, hi) = ranges[rng.below(ranges.len() as u64) as usize];
                let span = hi as u32 - lo as u32 + 1;
                let code = lo as u32 + rng.below(span as u64) as u32;
                out.push(char::from_u32(code).unwrap_or(lo));
            }
            Atom::Printable => {
                if rng.below(16) == 0 {
                    out.push(EXOTIC[rng.below(EXOTIC.len() as u64) as usize]);
                } else {
                    out.push((0x20 + rng.below(0x5F) as u8) as char);
                }
            }
        }
    }

    /// Generates one string matching `pattern`.
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for (atom, lo, hi) in parse(pattern) {
            let count = if lo == hi {
                lo
            } else {
                rng.in_range(lo as u64, hi as u64 + 1) as u32
            };
            for _ in 0..count {
                emit(&atom, rng, &mut out);
            }
        }
        out
    }
}

pub mod prelude {
    pub use super::collection;
    pub use super::sample;
    pub use super::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use super::test_runner::ProptestConfig;
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests: each `fn name(arg in strategy, ...)` body runs
/// once per generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..256 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn vec_and_select_compose() {
        let mut rng = TestRng::for_case("compose", 0);
        let strat = collection::vec(sample::select(vec!["a", "b"]), 2..5);
        for _ in 0..64 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|s| *s == "a" || *s == "b"));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = TestRng::for_case("oneof", 0);
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..128 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    #[test]
    fn regex_strings_match_shape() {
        let mut rng = TestRng::for_case("regex", 0);
        for _ in 0..128 {
            let s = "[a-z][a-z0-9-]{0,12}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 13);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
            let t = "[ -~]{0,24}".generate(&mut rng);
            assert!(t.len() <= 24 && t.chars().all(|c| (' '..='~').contains(&c)));
            let u = "x\\n?y{2}".generate(&mut rng);
            assert!(u == "xyy" || u == "x\nyy");
        }
    }

    #[test]
    fn determinism_per_test_name() {
        let gen = || {
            let mut rng = TestRng::for_case("pin", 7);
            collection::vec(any::<u8>(), 0..64).generate(&mut rng)
        };
        assert_eq!(gen(), gen());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: args bind, bodies run per case.
        #[test]
        fn macro_binds_arguments(x in 0u8..8, ys in collection::vec(any::<bool>(), 1..4)) {
            prop_assert!(x < 8);
            prop_assert!(!ys.is_empty(), "len {}", ys.len());
            prop_assert_eq!(ys.len(), ys.len());
            prop_assert_ne!(ys.len(), 0);
        }
    }
}
