//! Experiment **E-PLACE**: cache placement (§4).
//!
//! "We also experimented with caches co-located with the Placeless server
//! and on the machine where applications are run." An application-level
//! cache serves hits at function-call distance; a server-co-located cache
//! puts a LAN hop between the application and every served byte, but is
//! shared infrastructure. This experiment measures the same workload under
//! both placements (and no cache at all).

use placeless_cache::{CacheConfig, DocumentCache};
use placeless_core::prelude::*;
use placeless_simenv::{Link, LinkClass, VirtualClock};
use std::sync::Arc;

/// Where the cache sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// On the application's machine (the paper's Table 1 setup).
    Application,
    /// Co-located with the Placeless server, one LAN hop away.
    Server,
    /// No cache.
    None,
}

impl Placement {
    /// All placements, for sweeps.
    pub const ALL: [Placement; 3] = [Placement::Application, Placement::Server, Placement::None];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Placement::Application => "app-level",
            Placement::Server => "server-side",
            Placement::None => "no cache",
        }
    }
}

/// The outcome of one placement run.
#[derive(Debug, Clone)]
pub struct PlacementResult {
    /// The placement measured.
    pub placement: Placement,
    /// Mean read latency across the workload, in simulated microseconds.
    pub mean_read_micros: u64,
    /// Mean latency of hit-only reads (0 when no cache).
    pub mean_hit_micros: u64,
}

/// Runs `reads` repeated reads of one 8 KiB document whose origin is a
/// 30 ms repository, under the given placement.
pub fn run_one(placement: Placement, reads: u32) -> PlacementResult {
    let user = UserId(1);
    let clock = VirtualClock::new();
    let space = DocumentSpace::new(clock.clone());
    let provider = MemoryProvider::new("doc", vec![b'd'; 8_192], 30_000);
    let doc = space.create_document(user, provider);

    let cache: Option<Arc<DocumentCache>> = match placement {
        Placement::None => None,
        Placement::Application => Some(DocumentCache::new(space.clone(), CacheConfig::default())),
        Placement::Server => Some(DocumentCache::new(
            space.clone(),
            CacheConfig {
                access_link: Some(Link::of_class(LinkClass::Lan, 33)),
                ..CacheConfig::default()
            },
        )),
    };

    let mut total = 0u64;
    let mut hit_total = 0u64;
    let mut hit_count = 0u64;
    for i in 0..reads {
        let t0 = clock.now();
        match &cache {
            Some(cache) => {
                let _ = cache.read(user, doc).expect("read");
            }
            None => {
                let _ = space.read_document(user, doc).expect("read");
            }
        }
        let took = clock.now().since(t0);
        total += took;
        if cache.is_some() && i > 0 {
            hit_total += took;
            hit_count += 1;
        }
    }

    PlacementResult {
        placement,
        mean_read_micros: total / reads as u64,
        mean_hit_micros: hit_total.checked_div(hit_count).unwrap_or(0),
    }
}

/// Runs all placements.
pub fn sweep(reads: u32) -> Vec<PlacementResult> {
    Placement::ALL.iter().map(|&p| run_one(p, reads)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_level_hits_beat_server_side_hits() {
        let app = run_one(Placement::Application, 20);
        let server = run_one(Placement::Server, 20);
        assert!(
            app.mean_hit_micros * 5 < server.mean_hit_micros,
            "app {}µs vs server {}µs",
            app.mean_hit_micros,
            server.mean_hit_micros
        );
    }

    #[test]
    fn any_cache_beats_none() {
        let none = run_one(Placement::None, 20);
        for placement in [Placement::Application, Placement::Server] {
            let cached = run_one(placement, 20);
            assert!(cached.mean_read_micros < none.mean_read_micros);
        }
    }
}
