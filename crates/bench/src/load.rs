//! Experiment **E-LOAD**: million-user trace-driven load with single-flight
//! miss coalescing.
//!
//! The paper's prototype served one interactive user; E-SCALE already
//! shows shard scaling under a synthetic per-thread read mix. This
//! experiment instead models a *population*: a
//! [`placeless_simenv::trace::TraceSampler`] drives 10^5–10^6 simulated
//! users (Zipf user-activity skew, per-user working-set locality over a
//! global Zipf document popularity, a configurable write mix) through the
//! shared cache from many OS threads, and reports **wall-clock** sustained
//! reads/sec with p50/p99 per-read latency — sharded versus the
//! single-shard global-lock baseline.
//!
//! Every read goes through [`DocumentCache::read_with`] and is classified
//! by its [`HitClass`], so the engine observes coalescing directly from
//! the outcome rather than by diffing counters. A separate
//! [`coalesce_probe`] pins the single-flight guarantee: it parks the miss
//! leader inside the provider until every other thread has queued behind
//! the same `(doc, stage)` flight, then asserts the fetch ran exactly once
//! and that `coalesced_waits` accounts for all the waiters.
//!
//! The **write mix** is measured by [`write_mix`]: the same Zipf
//! population drives write-back writes, and periodic flushes are run once
//! with per-entry flushing and once with the batched per-origin scheduler,
//! counting middleware origin operations per flushed entry. The batched
//! run must amortize origin round-trips at least 2× — like the coalesce
//! probe, an acceptance check rather than a soft measurement.

use crate::support::TagProperty;
use bytes::Bytes;
pub use placeless_cache::HitClass;
use placeless_cache::{CacheConfig, CacheStats, DocumentCache, ReadOptions, WriteMode};
use placeless_core::prelude::*;
use placeless_simenv::trace::{lorem_bytes, TraceBuilder};
use placeless_simenv::{LatencyModel, VirtualClock};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Parameters for one load run.
#[derive(Debug, Clone, Copy)]
pub struct LoadParams {
    /// Simulated user population (the trace's user universe).
    pub users: usize,
    /// Documents in the corpus.
    pub documents: usize,
    /// Bytes per document body.
    pub doc_bytes: usize,
    /// Zipf exponent of global document popularity.
    pub doc_theta: f64,
    /// Zipf exponent of user activity skew.
    pub user_theta: f64,
    /// Fraction of accesses hitting the acting user's working set.
    pub locality: f64,
    /// Per-user working-set size, in documents.
    pub working_set: usize,
    /// Fraction of accesses that write.
    pub write_fraction: f64,
    /// Universal tagging transforms per document (stage-cacheable, so
    /// cross-user misses share staged work).
    pub base_chain: usize,
    /// OS threads driving the cache.
    pub threads: usize,
    /// Accesses issued by each thread.
    pub ops_per_thread: usize,
    /// RNG seed; thread `t` samples trace stream `t`.
    pub seed: u64,
}

impl Default for LoadParams {
    fn default() -> Self {
        Self {
            users: 100_000,
            documents: 2_048,
            doc_bytes: 256,
            doc_theta: 0.9,
            user_theta: 0.6,
            locality: 0.3,
            working_set: 8,
            write_fraction: 0.02,
            base_chain: 2,
            threads: 8,
            ops_per_thread: 25_000,
            seed: 42,
        }
    }
}

impl LoadParams {
    /// Applies `E_LOAD_USERS` / `E_LOAD_DOCS` / `E_LOAD_OPS` /
    /// `E_LOAD_THREADS` environment overrides, so CI can run a reduced
    /// smoke without a separate code path.
    pub fn from_env(mut self) -> Self {
        let get = |name: &str| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
        };
        if let Some(v) = get("E_LOAD_USERS") {
            self.users = v.max(1);
        }
        if let Some(v) = get("E_LOAD_DOCS") {
            self.documents = v.max(1);
        }
        if let Some(v) = get("E_LOAD_OPS") {
            self.ops_per_thread = v.max(1);
        }
        if let Some(v) = get("E_LOAD_THREADS") {
            self.threads = v.max(1);
        }
        self
    }

    /// Total accesses one run issues.
    pub fn total_ops(&self) -> usize {
        self.threads * self.ops_per_thread
    }
}

/// The outcome of one `(shards, params)` load run.
#[derive(Debug, Clone)]
pub struct LoadResult {
    /// Shard count (`1` = the global-lock baseline).
    pub shards: usize,
    /// Reader threads driven.
    pub threads: usize,
    /// Simulated user population.
    pub users: usize,
    /// Reads issued (writes excluded).
    pub reads: u64,
    /// Writes issued.
    pub writes: u64,
    /// Writes that failed (conflicts under contention).
    pub write_errors: u64,
    /// Wall-clock duration of the drive phase, microseconds.
    pub wall_micros: u64,
    /// Median per-read wall latency, nanoseconds.
    pub p50_nanos: u64,
    /// 99th-percentile per-read wall latency, nanoseconds.
    pub p99_nanos: u64,
    /// Reads per [`HitClass`], indexed by `class as usize`.
    pub classes: [u64; 5],
    /// Counter delta across the drive phase (exercises
    /// [`CacheStats::delta`] rather than hand-subtraction).
    pub stats: CacheStats,
}

impl LoadResult {
    /// Sustained wall-clock read throughput, reads per second.
    pub fn reads_per_sec(&self) -> f64 {
        self.reads as f64 / (self.wall_micros.max(1) as f64 / 1_000_000.0)
    }

    /// Fraction of reads served as whole-version hits.
    pub fn hit_frac(&self) -> f64 {
        self.classes[HitClass::Hit as usize] as f64 / self.reads.max(1) as f64
    }

    /// Reads of a given class.
    pub fn class(&self, class: HitClass) -> u64 {
        self.classes[class as usize]
    }
}

/// Runs one load cell: the trace of `params` against a cache with
/// `shards` shards.
///
/// The trace is pre-walked once to learn which `(user, document)` pairs
/// actually occur, and only those references are registered — a million
/// users referencing a few thousand documents each would otherwise mean
/// billions of reference rows for accesses that never happen.
pub fn run_one(shards: usize, params: LoadParams) -> LoadResult {
    let sampler = TraceBuilder::new(params.seed)
        .users(params.users)
        .documents(params.documents)
        .doc_theta(params.doc_theta)
        .user_theta(params.user_theta)
        .locality(params.locality)
        .working_set(params.working_set)
        .write_fraction(params.write_fraction)
        .build();

    // Pre-walk every thread's stream: materialize the events and collect
    // the unique (user, doc) pairs that need references.
    let traces: Vec<Vec<placeless_simenv::trace::AccessEvent>> = (0..params.threads)
        .map(|t| {
            let mut rng = sampler.stream(t as u64);
            (0..params.ops_per_thread)
                .map(|_| sampler.next_event(&mut rng))
                .collect()
        })
        .collect();
    let mut pairs: HashSet<(usize, usize)> = HashSet::new();
    for trace in &traces {
        for e in trace {
            pairs.insert((e.user, e.doc));
        }
    }

    let space = DocumentSpace::with_middleware_cost(VirtualClock::new(), LatencyModel::FREE);
    let mut docs = Vec::with_capacity(params.documents);
    for d in 0..params.documents {
        let provider = MemoryProvider::new(
            &format!("doc{d}"),
            lorem_bytes(params.seed + d as u64, params.doc_bytes),
            200,
        );
        let doc = space.create_document(UserId(0), provider);
        for i in 0..params.base_chain {
            space
                .attach_active(
                    Scope::Universal,
                    doc,
                    TagProperty::new(&format!("base-{i}"), 100),
                )
                .expect("attach base chain");
        }
        docs.push(doc);
    }
    for &(user, doc) in &pairs {
        space
            .add_reference(UserId(user as u64 + 1), docs[doc])
            .expect("reference");
    }

    let cache = DocumentCache::new(
        space,
        CacheConfig::builder()
            .capacity_bytes(1 << 30)
            .local_latency(LatencyModel::FREE)
            .shards(shards)
            .stage_cache(true)
            .build(),
    );

    let before = cache.stats();
    let classes = [
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
    ];
    let writes = AtomicU64::new(0);
    let write_errors = AtomicU64::new(0);
    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::with_capacity(params.total_ops()));

    let started = std::time::Instant::now();
    std::thread::scope(|scope| {
        for trace in &traces {
            let cache = &cache;
            let docs = &docs;
            let classes = &classes;
            let writes = &writes;
            let write_errors = &write_errors;
            let latencies = &latencies;
            scope.spawn(move || {
                let mut local = Vec::with_capacity(trace.len());
                for (i, e) in trace.iter().enumerate() {
                    let user = UserId(e.user as u64 + 1);
                    let doc = docs[e.doc];
                    if e.is_write {
                        writes.fetch_add(1, Ordering::Relaxed);
                        let body = format!("rev {i} by {}", e.user);
                        if cache.write(user, doc, body.as_bytes()).is_err() {
                            write_errors.fetch_add(1, Ordering::Relaxed);
                        }
                        continue;
                    }
                    let t0 = std::time::Instant::now();
                    let outcome = cache
                        .read_with(user, doc, ReadOptions::default())
                        .expect("read");
                    local.push(t0.elapsed().as_nanos() as u64);
                    std::hint::black_box(&outcome.bytes);
                    classes[outcome.class as usize].fetch_add(1, Ordering::Relaxed);
                }
                latencies.lock().unwrap().extend_from_slice(&local);
            });
        }
    });
    let wall_micros = started.elapsed().as_micros() as u64;

    let mut lats = latencies.into_inner().unwrap();
    lats.sort_unstable();
    let pct = |p: f64| {
        if lats.is_empty() {
            0
        } else {
            lats[((lats.len() - 1) as f64 * p) as usize]
        }
    };

    LoadResult {
        shards,
        threads: params.threads,
        users: params.users,
        reads: lats.len() as u64,
        writes: writes.into_inner(),
        write_errors: write_errors.into_inner(),
        wall_micros,
        p50_nanos: pct(0.50),
        p99_nanos: pct(0.99),
        classes: classes.map(AtomicU64::into_inner),
        stats: cache.stats().delta(&before),
    }
}

/// Runs the sharded configuration against the single-shard global-lock
/// baseline under one trace.
pub fn sweep(shards: usize, params: LoadParams) -> Vec<LoadResult> {
    vec![run_one(1, params), run_one(shards, params)]
}

/// Provider that parks the *first* fetch until the cache reports
/// `expected_waiters` queued readers (or a wall timeout), counting every
/// fetch that reaches the origin. The cache handle arrives after
/// construction through the [`OnceLock`].
struct GateProvider {
    body: Bytes,
    fetches: AtomicU64,
    cache: Arc<OnceLock<Arc<DocumentCache>>>,
    expected_waiters: u64,
}

impl GateProvider {
    fn new(body: Bytes, cache: Arc<OnceLock<Arc<DocumentCache>>>, expected_waiters: u64) -> Self {
        Self {
            body,
            fetches: AtomicU64::new(0),
            cache,
            expected_waiters,
        }
    }
}

impl BitProvider for GateProvider {
    fn describe(&self) -> String {
        "gate:probe".to_owned()
    }

    fn open_input(&self, _clock: &VirtualClock) -> Result<Box<dyn InputStream>> {
        if self.fetches.fetch_add(1, Ordering::SeqCst) == 0 {
            // Leader: hold the miss open until every other thread is
            // queued behind this flight, so the fetches stay concurrent
            // rather than serialized by timing luck.
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
            while std::time::Instant::now() < deadline {
                let waiting = self
                    .cache
                    .get()
                    .map(|cache| cache.waiting_reads())
                    .unwrap_or(0);
                if waiting >= self.expected_waiters {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        }
        Ok(Box::new(MemoryInput::new(self.body.clone())))
    }

    fn open_output(&self, _clock: &VirtualClock) -> Result<Box<dyn OutputStream>> {
        Err(PlacelessError::Repository(
            "gate probe provider is read-only".to_owned(),
        ))
    }

    fn make_verifier(&self, _clock: &VirtualClock) -> Option<Box<dyn Verifier>> {
        None
    }

    fn fetch_cost_micros(&self) -> u64 {
        200
    }
}

/// The coalescing guarantee, measured: `threads` concurrent cold misses
/// on one `(doc, stage)` signature.
#[derive(Debug, Clone, Copy)]
pub struct CoalesceReport {
    /// Threads that raced the cold read.
    pub threads: usize,
    /// Fetches that reached the origin provider (must be 1).
    pub provider_fetches: u64,
    /// Reads that joined the leader's flight (must be `threads - 1`).
    pub coalesced_waits: u64,
    /// Whether every thread got byte-identical content.
    pub identical: bool,
    /// High-water mark of concurrent origin fetches during the probe.
    pub inflight_peak: u64,
}

/// Races `threads` cold readers at one document and asserts the
/// single-flight contract: exactly one fetch reaches the origin, every
/// other reader coalesces onto it, and all readers observe identical
/// bytes.
///
/// # Panics
///
/// Panics if any part of the contract is violated — this is the E-LOAD
/// acceptance check, not a soft measurement.
pub fn coalesce_probe(threads: usize) -> CoalesceReport {
    assert!(threads >= 2, "coalescing needs at least one waiter");
    let handle: Arc<OnceLock<Arc<DocumentCache>>> = Arc::new(OnceLock::new());
    let provider = Arc::new(GateProvider::new(
        Bytes::from(lorem_bytes(99, 1_024)),
        handle.clone(),
        threads as u64 - 1,
    ));

    let space = DocumentSpace::with_middleware_cost(VirtualClock::new(), LatencyModel::FREE);
    let user = UserId(1);
    let doc = space.create_document(user, provider.clone());
    let cache = DocumentCache::new(
        space,
        CacheConfig::builder()
            .capacity_bytes(1 << 20)
            .local_latency(LatencyModel::FREE)
            .build(),
    );
    if handle.set(cache.clone()).is_err() {
        unreachable!("probe handle is set exactly once");
    }

    let before = cache.stats();
    let bodies: Vec<Bytes> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cache = &cache;
                scope.spawn(move || cache.read(user, doc).expect("probe read"))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let stats = cache.stats().delta(&before);

    let report = CoalesceReport {
        threads,
        provider_fetches: provider.fetches.load(Ordering::SeqCst),
        coalesced_waits: stats.coalesced_waits,
        identical: bodies.windows(2).all(|w| w[0] == w[1]),
        inflight_peak: stats.inflight_peak,
    };
    assert_eq!(
        report.provider_fetches, 1,
        "concurrent misses on one (doc, stage) must compute exactly once"
    );
    assert_eq!(
        report.coalesced_waits,
        threads as u64 - 1,
        "every non-leader read must coalesce onto the flight"
    );
    assert!(report.identical, "coalesced readers must share bytes");
    report
}

/// Parameters for the E-LOAD write-mix flush measurement.
#[derive(Debug, Clone, Copy)]
pub struct WriteMixParams {
    /// Simulated user population.
    pub users: usize,
    /// Documents in the corpus (each its own memory origin, so a flush
    /// group forms per popular document across its dirty users).
    pub documents: usize,
    /// Write-back writes issued.
    pub writes: usize,
    /// Flush after every this many writes (plus one final flush).
    pub flush_every: usize,
    /// Zipf exponent of global document popularity.
    pub doc_theta: f64,
    /// Zipf exponent of user activity skew.
    pub user_theta: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WriteMixParams {
    fn default() -> Self {
        Self {
            users: 20_000,
            documents: 64,
            writes: 4_000,
            flush_every: 1_000,
            doc_theta: 0.9,
            user_theta: 0.6,
            seed: 42,
        }
    }
}

impl WriteMixParams {
    /// Applies `E_LOAD_WMIX_WRITES` / `E_LOAD_WMIX_DOCS` /
    /// `E_LOAD_WMIX_FLUSH_EVERY` environment overrides, so CI can run a
    /// reduced flush smoke without a separate code path.
    pub fn from_env(mut self) -> Self {
        let get = |name: &str| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
        };
        if let Some(v) = get("E_LOAD_WMIX_WRITES") {
            self.writes = v.max(1);
        }
        if let Some(v) = get("E_LOAD_WMIX_DOCS") {
            self.documents = v.max(1);
        }
        if let Some(v) = get("E_LOAD_WMIX_FLUSH_EVERY") {
            self.flush_every = v.max(1);
        }
        self
    }
}

/// One write-mix run: the same trace flushed with or without the batched
/// per-origin scheduler.
#[derive(Debug, Clone, Copy)]
pub struct WriteMixResult {
    /// Whether [`placeless_cache::CacheConfig::batched_flush`] was on.
    pub batched: bool,
    /// Dirty entries pushed to the middleware across all flushes.
    pub entries_flushed: u64,
    /// `flush()` calls issued.
    pub flush_calls: u64,
    /// Grouped origin operations issued (stats delta; zero per-entry).
    pub flush_batches: u64,
    /// Entries written through a grouped batch (stats delta).
    pub batched_writes: u64,
    /// Middleware origin operations charged during the flushes.
    pub origin_ops: u64,
    /// Virtual microseconds the flushes consumed.
    pub flush_micros: u64,
}

impl WriteMixResult {
    /// Origin operations per flushed entry — the round-trip amortization
    /// metric the batched scheduler is gated on.
    pub fn ops_per_entry(&self) -> f64 {
        self.origin_ops as f64 / self.entries_flushed.max(1) as f64
    }
}

/// Runs the write mix twice over one trace — per-entry flushing, then the
/// batched per-origin scheduler — and asserts the batched run amortizes
/// origin round-trips at least 2×.
///
/// # Panics
///
/// Panics if any flush is not clean, if `FlushReport` accounting is not
/// exact (`attempted == flushed + parked + requeued`), if the two modes
/// disagree on what was flushed, or if the amortization falls below 2× —
/// this is the E-LOAD write-mix acceptance check.
pub fn write_mix(params: WriteMixParams) -> [WriteMixResult; 2] {
    let per_entry = write_mix_one(params, false);
    let batched = write_mix_one(params, true);
    assert_eq!(
        per_entry.entries_flushed, batched.entries_flushed,
        "same trace, same flush points, same dirty entries"
    );
    assert_eq!(per_entry.flush_batches, 0, "per-entry mode must not batch");
    assert!(batched.flush_batches > 0, "batched mode never grouped");
    assert_eq!(
        batched.batched_writes, batched.entries_flushed,
        "every healthy-origin entry flushes through its group"
    );
    let amortization = per_entry.ops_per_entry() / batched.ops_per_entry();
    assert!(
        amortization >= 2.0,
        "grouped flushes must amortize origin round-trips >= 2x, got {amortization:.2}"
    );
    [per_entry, batched]
}

fn write_mix_one(params: WriteMixParams, batched: bool) -> WriteMixResult {
    let sampler = TraceBuilder::new(params.seed)
        .users(params.users)
        .documents(params.documents)
        .doc_theta(params.doc_theta)
        .user_theta(params.user_theta)
        .write_fraction(1.0)
        .build();
    let mut rng = sampler.stream(0);
    let events: Vec<placeless_simenv::trace::AccessEvent> = (0..params.writes)
        .map(|_| sampler.next_event(&mut rng))
        .collect();
    let mut pairs: HashSet<(usize, usize)> = HashSet::new();
    for e in &events {
        pairs.insert((e.user, e.doc));
    }

    let space = DocumentSpace::with_middleware_cost(VirtualClock::new(), LatencyModel::FREE);
    let mut docs = Vec::with_capacity(params.documents);
    for d in 0..params.documents {
        let provider = MemoryProvider::new(
            &format!("doc{d}"),
            lorem_bytes(params.seed + d as u64, 128),
            200,
        );
        docs.push(space.create_document(UserId(0), provider));
    }
    for &(user, doc) in &pairs {
        space
            .add_reference(UserId(user as u64 + 1), docs[doc])
            .expect("reference");
    }

    let cache = DocumentCache::new(
        space.clone(),
        CacheConfig::builder()
            .capacity_bytes(1 << 30)
            .local_latency(LatencyModel::FREE)
            .write_mode(WriteMode::Back)
            .batched_flush(batched)
            .build(),
    );
    let clock = space.clock().clone();
    let before = cache.stats();
    let mut result = WriteMixResult {
        batched,
        entries_flushed: 0,
        flush_calls: 0,
        flush_batches: 0,
        batched_writes: 0,
        origin_ops: 0,
        flush_micros: 0,
    };
    let flush_now = |result: &mut WriteMixResult| {
        let ops0 = space.ops_count();
        let t0 = clock.now();
        let report = cache.flush().expect("flush");
        assert!(report.is_clean(), "healthy origins must flush clean");
        assert_eq!(
            report.attempted,
            report.flushed + (report.parked.len() + report.requeued.len()) as u64,
            "flush accounting must be exact"
        );
        result.entries_flushed += report.flushed;
        result.flush_calls += 1;
        result.origin_ops += space.ops_count() - ops0;
        result.flush_micros += clock.now().since(t0);
    };
    for (i, e) in events.iter().enumerate() {
        let user = UserId(e.user as u64 + 1);
        let body = format!("rev {i} by {}", e.user);
        cache
            .write(user, docs[e.doc], body.as_bytes())
            .expect("buffered write");
        if (i + 1) % params.flush_every == 0 {
            flush_now(&mut result);
        }
    }
    flush_now(&mut result);
    let stats = cache.stats().delta(&before);
    result.flush_batches = stats.flush_batches;
    result.batched_writes = stats.batched_writes;
    assert_eq!(cache.dirty_count(), 0, "nothing may stay dirty");
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> LoadParams {
        LoadParams {
            users: 2_000,
            documents: 128,
            doc_bytes: 128,
            threads: 4,
            ops_per_thread: 1_500,
            ..LoadParams::default()
        }
    }

    #[test]
    fn every_access_is_accounted() {
        let r = run_one(8, small());
        assert_eq!(r.reads + r.writes, small().total_ops() as u64);
        assert_eq!(r.classes.iter().sum::<u64>(), r.reads);
        assert_eq!(r.write_errors, 0, "writes must succeed under load");
        assert!(r.reads_per_sec() > 0.0);
        assert!(r.p50_nanos <= r.p99_nanos);
    }

    #[test]
    fn outcome_classes_match_counter_delta() {
        let r = run_one(4, small());
        // Whole-version hits + coalesced waits both count as `hits` in the
        // counters; the outcome classes split them apart.
        assert_eq!(
            r.class(HitClass::Hit)
                + r.class(HitClass::CoalescedWait)
                + r.class(HitClass::StaleServed),
            r.stats.hits + r.stats.stale_served,
        );
        assert_eq!(
            r.class(HitClass::Miss) + r.class(HitClass::PartialHit),
            r.stats.misses
        );
        // `coalesced_waits` also counts *stage*-flight waiters, which are
        // classified Miss/PartialHit (their version fetch ran; only a
        // stage inside it coalesced) — so the counter dominates the class.
        assert!(r.stats.coalesced_waits >= r.class(HitClass::CoalescedWait));
    }

    #[test]
    fn workload_shares_work_across_the_population() {
        // A population trace is cold per (user, document) most of the
        // time — whole-version hits come only from repeat visits by the
        // Zipf-head users. The cache's value under this mix is that cold
        // reads share staged work: almost every read should be a hit, a
        // partial hit over the shared stage prefix, or a coalesced wait.
        let r = run_one(8, small());
        let shared = r.class(HitClass::Hit)
            + r.class(HitClass::PartialHit)
            + r.class(HitClass::CoalescedWait);
        let frac = shared as f64 / r.reads.max(1) as f64;
        assert!(frac > 0.8, "shared-work fraction {frac} too low");
        assert!(r.stats.stage_hits > 0, "staged prefix never shared");
        assert!(r.class(HitClass::Hit) > 0, "Zipf head never repeated");
    }

    #[test]
    fn baseline_and_sharded_read_identical_traces() {
        let a = run_one(1, small());
        let b = run_one(8, small());
        assert_eq!(a.reads, b.reads);
        assert_eq!(a.writes, b.writes);
    }

    #[test]
    fn probe_coalesces_concurrent_misses() {
        let r = coalesce_probe(6);
        assert_eq!(r.provider_fetches, 1);
        assert_eq!(r.coalesced_waits, 5);
        assert!(r.inflight_peak >= 1);
    }

    #[test]
    fn write_mix_amortizes_origin_round_trips() {
        let params = WriteMixParams {
            users: 2_000,
            documents: 32,
            writes: 600,
            flush_every: 300,
            ..WriteMixParams::default()
        };
        // write_mix() itself asserts the >= 2x amortization contract.
        let [per_entry, batched] = write_mix(params);
        assert_eq!(per_entry.flush_calls, batched.flush_calls);
        assert!(batched.origin_ops < per_entry.origin_ops);
        assert!(
            batched.flush_micros <= per_entry.flush_micros,
            "grouped commits must not cost more virtual time"
        );
        assert!(batched.flush_batches >= batched.flush_calls);
    }

    #[test]
    fn write_mix_is_deterministic_per_seed() {
        let params = WriteMixParams {
            users: 1_000,
            documents: 16,
            writes: 200,
            flush_every: 100,
            ..WriteMixParams::default()
        };
        let [_, a] = write_mix(params);
        let [_, b] = write_mix(params);
        assert_eq!(a.entries_flushed, b.entries_flushed);
        assert_eq!(a.flush_batches, b.flush_batches);
        assert_eq!(a.origin_ops, b.origin_ops);
        assert_eq!(a.flush_micros, b.flush_micros);
    }
}
