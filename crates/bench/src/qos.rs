//! Experiment **E-QoS**: QoS properties inflating replacement costs (§5).
//!
//! "One possibility for QoS properties to influence cache replacement is
//! to inflate replacement costs." A tagged subset of the corpus carries a
//! QoS cost-inflation property; under the cost-aware GDS policy those
//! documents should enjoy a markedly higher hit rate than untagged
//! documents of equal popularity — and under a cost-blind policy they
//! should not.

use placeless_cache::{CacheConfig, DocumentCache, PolicyFactory};
use placeless_core::prelude::*;
use placeless_simenv::trace::{lorem_bytes, WorkloadBuilder};
use placeless_simenv::VirtualClock;

/// The outcome of one QoS run.
#[derive(Debug, Clone)]
pub struct QosResult {
    /// Policy name.
    pub policy: String,
    /// Hit rate of QoS-tagged documents.
    pub qos_hit_rate: f64,
    /// Hit rate of untagged documents.
    pub plain_hit_rate: f64,
}

impl QosResult {
    /// How much better tagged documents fare.
    pub fn advantage(&self) -> f64 {
        self.qos_hit_rate - self.plain_hit_rate
    }
}

/// Runs the QoS experiment under `policy_name`.
///
/// Every 10th document carries `qos:always-available`-style inflation.
/// Popularity is uniform (theta 0) so any hit-rate gap is attributable to
/// the policy honoring costs, not to popularity skew.
pub fn run_one(policy_name: &str, documents: usize, reads: usize, seed: u64) -> QosResult {
    let user = UserId(1);
    let clock = VirtualClock::new();
    let space = DocumentSpace::new(clock.clone());

    let mut docs = Vec::new();
    let mut corpus_bytes = 0u64;
    for i in 0..documents {
        let size = 2_048;
        corpus_bytes += size as u64;
        let provider =
            MemoryProvider::new(&format!("doc{i}"), lorem_bytes(i as u64 + 7, size), 1_000);
        let doc = space.create_document(user, provider);
        if i % 10 == 0 {
            space
                .attach_active(
                    Scope::Personal(user),
                    doc,
                    QosProperty::with_factor("qos:pin", 100.0),
                )
                .expect("attach");
        }
        docs.push(doc);
    }

    let cache = DocumentCache::new(
        space.clone(),
        CacheConfig {
            capacity_bytes: corpus_bytes / 8,
            policy: PolicyFactory::by_name(policy_name).expect("known policy"),
            ..CacheConfig::default()
        },
    );

    let workload = WorkloadBuilder::new(seed)
        .documents(documents)
        .zipf_theta(0.0)
        .write_fraction(0.0)
        .events(reads)
        .mean_think_micros(0)
        .build();

    let mut qos_hits = 0u32;
    let mut qos_total = 0u32;
    let mut plain_hits = 0u32;
    let mut plain_total = 0u32;
    for event in &workload {
        let doc = docs[event.doc];
        let resident = cache.contains(user, doc);
        let _ = cache.read(user, doc).expect("read");
        if event.doc % 10 == 0 {
            qos_total += 1;
            qos_hits += resident as u32;
        } else {
            plain_total += 1;
            plain_hits += resident as u32;
        }
    }

    QosResult {
        policy: policy_name.to_owned(),
        qos_hit_rate: qos_hits as f64 / qos_total.max(1) as f64,
        plain_hit_rate: plain_hits as f64 / plain_total.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gds_privileges_qos_documents() {
        let result = run_one("gds", 200, 4_000, 3);
        assert!(
            result.advantage() > 0.3,
            "QoS advantage too small: {result:?}"
        );
    }

    #[test]
    fn cost_blind_policies_do_not() {
        let result = run_one("gd1", 200, 4_000, 3);
        assert!(
            result.advantage().abs() < 0.15,
            "GD(1) should be cost-blind: {result:?}"
        );
    }
}
