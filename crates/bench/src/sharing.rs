//! Experiment **E-SH**: content-signature sharing (§3, entry
//! identification).
//!
//! Entries are tagged `(document, user)`, so a naive cache stores one copy
//! per user even when their property chains produce identical bytes. The
//! signature map shares those. This experiment populates a cache from `n`
//! users, a fraction of whom apply the *same* transform (shareable) while
//! the rest apply a per-user watermark (unshareable), and reports
//! physical-vs-logical bytes.

use placeless_cache::{CacheConfig, DocumentCache};
use placeless_core::prelude::*;
use placeless_properties::{Translate, Watermark};
use placeless_simenv::trace::lorem_bytes;
use placeless_simenv::VirtualClock;

/// The outcome of one sharing run.
#[derive(Debug, Clone)]
pub struct SharingResult {
    /// Number of users.
    pub users: usize,
    /// Fraction whose chains produce identical content.
    pub identical_frac: f64,
    /// Deduplicated bytes resident.
    pub physical_bytes: u64,
    /// Bytes a share-nothing cache would hold.
    pub logical_bytes: u64,
    /// Fills that found the bytes already resident.
    pub shared_fills: u64,
}

impl SharingResult {
    /// Returns `logical / physical` — the storage multiplier sharing saves.
    pub fn savings_ratio(&self) -> f64 {
        self.logical_bytes as f64 / self.physical_bytes.max(1) as f64
    }
}

/// Runs the sharing experiment: `users` users read `documents` documents;
/// `identical_frac` of the users attach the same translation property, the
/// rest attach per-user watermarks.
pub fn run_one(users: usize, documents: usize, identical_frac: f64) -> SharingResult {
    let clock = VirtualClock::new();
    let space = DocumentSpace::new(clock.clone());
    let owner = UserId(0);

    let mut docs = Vec::new();
    for d in 0..documents {
        let provider = MemoryProvider::new(
            &format!("doc{d}"),
            lorem_bytes(d as u64 + 100, 4_096),
            1_000,
        );
        docs.push(space.create_document(owner, provider));
    }

    let identical_users = (users as f64 * identical_frac).round() as usize;
    for u in 1..=users {
        let user = UserId(u as u64);
        for &doc in &docs {
            space.add_reference(user, doc).expect("reference");
            if u <= identical_users {
                space
                    .attach_active(Scope::Personal(user), doc, Translate::to("fr"))
                    .expect("attach");
            } else {
                space
                    .attach_active(Scope::Personal(user), doc, Watermark::new())
                    .expect("attach");
            }
        }
    }

    let cache = DocumentCache::new(
        space.clone(),
        CacheConfig {
            capacity_bytes: u64::MAX,
            ..CacheConfig::default()
        },
    );
    for u in 1..=users {
        for &doc in &docs {
            let _ = cache.read(UserId(u as u64), doc).expect("read");
        }
    }

    let (physical_bytes, logical_bytes) = cache.resident_bytes();
    SharingResult {
        users,
        identical_frac,
        physical_bytes,
        logical_bytes,
        shared_fills: cache.stats().shared_fills,
    }
}

/// Sweeps identical fractions.
pub fn sweep(users: usize, documents: usize, fracs: &[f64]) -> Vec<SharingResult> {
    fracs
        .iter()
        .map(|&f| run_one(users, documents, f))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_identical_chains_share_fully() {
        let result = run_one(8, 3, 1.0);
        // Eight users, one copy of each document's translated bytes.
        assert!(
            result.savings_ratio() > 7.0,
            "ratio {}",
            result.savings_ratio()
        );
        assert_eq!(result.shared_fills, 7 * 3);
    }

    #[test]
    fn watermarks_defeat_sharing() {
        let result = run_one(8, 3, 0.0);
        assert!(
            result.savings_ratio() < 1.1,
            "every view distinct: {}",
            result.savings_ratio()
        );
        assert_eq!(result.shared_fills, 0);
    }

    #[test]
    fn savings_grow_with_identical_fraction() {
        let results = sweep(8, 2, &[0.0, 0.5, 1.0]);
        assert!(results[0].savings_ratio() <= results[1].savings_ratio());
        assert!(results[1].savings_ratio() <= results[2].savings_ratio());
    }
}
