//! Experiment **E-SCALE**: read-throughput scaling of the sharded cache.
//!
//! The paper's prototype served one interactive user; a shared
//! application-level cache (or the server-co-located variant of §4) takes
//! concurrent readers. This experiment drives the *same* hit-dominated
//! Zipf read mix through the cache from 1–16 threads, once with a single
//! shard (equivalent to the original global-lock design) and once sharded,
//! and reports **wall-clock** operations per second — the only experiment
//! in the harness that measures real time rather than the virtual clock.
//!
//! Sharding must buy throughput without changing behaviour: the hit rate
//! under every shard count should agree within a couple of percentage
//! points (placement changes victim choice slightly, nothing else).

use placeless_cache::{CacheConfig, DocumentCache};
use placeless_core::prelude::*;
use placeless_simenv::trace::{lorem_bytes, ZipfSampler};
use placeless_simenv::{LatencyModel, SimRng, VirtualClock};
use std::sync::Arc;

/// The outcome of one `(threads, shards)` cell.
#[derive(Debug, Clone)]
pub struct ScaleResult {
    /// Reader threads driven concurrently.
    pub threads: usize,
    /// Shard count the cache was built with (`1` = global-lock baseline).
    pub shards: usize,
    /// Total reads issued across all threads.
    pub ops: u64,
    /// Wall-clock duration of the read phase, in microseconds.
    pub wall_micros: u64,
    /// Hit rate over cacheable reads.
    pub hit_rate: f64,
}

impl ScaleResult {
    /// Returns wall-clock read throughput in operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / (self.wall_micros.max(1) as f64 / 1_000_000.0)
    }
}

/// Parameters for one scaling run.
#[derive(Debug, Clone, Copy)]
pub struct ScaleParams {
    /// Distinct documents in the universe.
    pub documents: usize,
    /// Bytes per document body.
    pub doc_bytes: usize,
    /// Zipf skew of the access stream (higher = more hit-dominated).
    pub zipf_theta: f64,
    /// Reads issued by each thread.
    pub reads_per_thread: usize,
    /// RNG seed; thread `t` derives its stream from `seed + t`.
    pub seed: u64,
}

impl Default for ScaleParams {
    fn default() -> Self {
        Self {
            documents: 256,
            doc_bytes: 512,
            zipf_theta: 0.9,
            reads_per_thread: 20_000,
            seed: 42,
        }
    }
}

/// Runs one cell: `threads` readers against a cache with `shards` shards.
///
/// Every thread is its own user (entries are per-`(document, user)`), all
/// users reference all documents, and the byte budget holds roughly half
/// the per-user working set, so the Zipf head stays resident — a
/// hit-dominated mix where the global lock, not the miss path, is the
/// bottleneck being measured.
pub fn run_one(threads: usize, shards: usize, params: ScaleParams) -> ScaleResult {
    let space = DocumentSpace::with_middleware_cost(VirtualClock::new(), LatencyModel::FREE);
    let mut docs = Vec::new();
    for d in 0..params.documents {
        let provider = MemoryProvider::new(
            &format!("doc{d}"),
            lorem_bytes(params.seed + d as u64, params.doc_bytes),
            200,
        );
        let doc = space.create_document(UserId(1), provider);
        for t in 2..=threads as u64 {
            space.add_reference(UserId(t), doc).expect("reference");
        }
        docs.push(doc);
    }
    let capacity = (params.documents * params.doc_bytes * threads) as u64 / 2;
    let cache = DocumentCache::new(
        space,
        CacheConfig::builder()
            .capacity_bytes(capacity.max(params.doc_bytes as u64 * 4))
            .local_latency(LatencyModel::FREE)
            .shards(shards)
            .build(),
    );

    let zipf = Arc::new(ZipfSampler::new(params.documents, params.zipf_theta));
    let started = std::time::Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads as u64 {
            let cache = &cache;
            let docs = &docs;
            let zipf = Arc::clone(&zipf);
            scope.spawn(move || {
                let user = UserId(t + 1);
                let mut rng = SimRng::seeded(params.seed + t);
                for _ in 0..params.reads_per_thread {
                    let doc = docs[zipf.sample(&mut rng)];
                    std::hint::black_box(cache.read(user, doc).expect("read"));
                }
            });
        }
    });
    let wall_micros = started.elapsed().as_micros() as u64;

    let stats = cache.stats();
    ScaleResult {
        threads,
        shards,
        ops: stats.hits + stats.misses + stats.uncacheable_reads,
        wall_micros,
        hit_rate: stats.hit_rate().unwrap_or(0.0),
    }
}

/// Sweeps thread counts, pairing every cell with its single-shard
/// baseline.
pub fn sweep(thread_counts: &[usize], shards: usize, params: ScaleParams) -> Vec<ScaleResult> {
    let mut results = Vec::new();
    for &threads in thread_counts {
        results.push(run_one(threads, 1, params));
        results.push(run_one(threads, shards, params));
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ScaleParams {
        ScaleParams {
            documents: 64,
            doc_bytes: 128,
            reads_per_thread: 1_500,
            ..ScaleParams::default()
        }
    }

    #[test]
    fn every_read_is_accounted() {
        let r = run_one(4, 8, small());
        assert_eq!(r.ops, 4 * 1_500);
        assert!(r.ops_per_sec() > 0.0);
    }

    #[test]
    fn workload_is_hit_dominated() {
        let r = run_one(2, 4, small());
        assert!(r.hit_rate > 0.5, "hit rate {}", r.hit_rate);
    }

    #[test]
    fn hit_rate_parity_across_shard_counts() {
        // Sharding changes victim placement, not behaviour: the hit rate
        // must agree with the global-lock baseline within 2 points.
        let single = run_one(4, 1, small());
        let sharded = run_one(4, 8, small());
        assert!(
            (single.hit_rate - sharded.hit_rate).abs() < 0.02,
            "hit-rate divergence: {} vs {}",
            single.hit_rate,
            sharded.hit_rate
        );
    }
}
