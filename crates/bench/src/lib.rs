//! # Experiment harness
//!
//! Scenario code shared by the `experiments` binary (which prints
//! paper-style tables in *simulated* milliseconds) and the criterion
//! benches (which measure *wall-clock* overheads of the implementation).
//!
//! | Module | Experiment | Paper anchor |
//! |---|---|---|
//! | [`table1`] | access times: no cache / miss / hit × 3 origins | Table 1 |
//! | [`nv`] | notifier vs verifier trade-off | §5 future work |
//! | [`replacement`] | GDS vs LRU/LFU/SIZE/FIFO/GD(1) | §3 cache management |
//! | [`sharing`] | content-signature sharing | §3 entry identification |
//! | [`consistency`] | the four invalidation causes | §3 cache consistency |
//! | [`qos`] | QoS cost inflation | §5 future work |
//! | [`collections`] | collection-aware prefetch | §5 future work |
//! | [`chain`] | property-chain length vs latency | §3 motivation |
//! | [`placement`] | app-level vs server-side cache placement | §4 |
//! | [`revalidation`] | TTL vs conditional-GET verifiers for web docs | §3 WWW discussion |
//! | [`scale`] | sharded-cache read-throughput scaling (wall-clock) | §4 implementation |
//! | [`fault`] | read availability under origin outages | §3 robustness ablation |
//! | [`stage`] | staged transform plans: partial hits over a shared base prefix | §3 per-user versions |
//! | [`crash`] | write-journal durability across a scripted crash | §3 write-back robustness |
//! | [`load`] | trace-driven population load with single-flight coalescing | §4 implementation |
//! | [`merge`] | op-based multi-writer merge vs binary conflict resolution | §3 write-back robustness |
//! | [`overload`] | deadline-aware admission and brownout under a 10× burst | §3 robustness ablation |

pub mod chain;
pub mod collections;
pub mod consistency;
pub mod crash;
pub mod fault;
pub mod load;
pub mod merge;
pub mod nv;
pub mod overload;
pub mod placement;
pub mod qos;
pub mod replacement;
pub mod revalidation;
pub mod scale;
pub mod sharing;
pub mod stage;
pub mod support;
pub mod table1;
