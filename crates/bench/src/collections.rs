//! Experiment **E-COLL**: collection-aware prefetching (§5 related
//! documents).
//!
//! A user browses every member of a collection (e.g. the chapters of a
//! report) hosted behind a slow link. Without prefetch, every chapter pays
//! a full miss; with prefetch, the first miss drags the siblings in and
//! the rest of the browse is served locally.

use placeless_cache::{CacheConfig, DocumentCache, PrefetchConfig};
use placeless_core::prelude::*;
use placeless_simenv::trace::lorem_bytes;
use placeless_simenv::VirtualClock;

/// The outcome of one browse run.
#[derive(Debug, Clone)]
pub struct CollResult {
    /// Prefetch budget used (0 = off).
    pub prefetch_budget: usize,
    /// Simulated latency of the first access, in microseconds.
    pub first_access_micros: u64,
    /// Mean simulated latency of the remaining accesses.
    pub rest_mean_micros: u64,
    /// Total browse time.
    pub total_micros: u64,
    /// Demand misses during the browse.
    pub misses: u64,
}

/// Browses a `members`-document collection with the given prefetch budget.
pub fn run_one(members: usize, prefetch_budget: usize) -> CollResult {
    let user = UserId(1);
    let clock = VirtualClock::new();
    let space = DocumentSpace::new(clock.clone());
    let mut docs = Vec::new();
    for i in 0..members {
        let provider = MemoryProvider::new(
            &format!("chapter{i}"),
            lorem_bytes(i as u64 + 1, 8_192),
            // A slow repository: 40 ms per fetch.
            40_000,
        );
        let doc = space.create_document(user, provider);
        space.add_to_collection("report", doc).unwrap();
        docs.push(doc);
    }

    let cache = DocumentCache::new(
        space.clone(),
        CacheConfig {
            prefetch: PrefetchConfig::up_to(prefetch_budget),
            ..CacheConfig::default()
        },
    );

    let browse_start = clock.now();
    let mut latencies = Vec::with_capacity(members);
    for &doc in &docs {
        let t0 = clock.now();
        let _ = cache.read(user, doc).expect("read");
        latencies.push(clock.now().since(t0));
    }
    let total_micros = clock.now().since(browse_start);

    CollResult {
        prefetch_budget,
        first_access_micros: latencies[0],
        rest_mean_micros: latencies[1..].iter().sum::<u64>() / (members as u64 - 1).max(1),
        total_micros,
        misses: cache.stats().misses,
    }
}

/// Sweeps prefetch budgets for a fixed collection size.
pub fn sweep(members: usize, budgets: &[usize]) -> Vec<CollResult> {
    budgets.iter().map(|&b| run_one(members, b)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_makes_the_rest_of_the_browse_local() {
        let off = run_one(8, 0);
        let on = run_one(8, 16);
        assert_eq!(off.misses, 8);
        assert_eq!(on.misses, 1, "only the first access misses");
        // The first access absorbs the sibling fetches...
        assert!(on.first_access_micros > off.first_access_micros);
        // ...and the rest become local hits, far cheaper.
        assert!(on.rest_mean_micros * 10 < off.rest_mean_micros);
    }

    #[test]
    fn partial_budget_prefetches_partially() {
        // Each miss drags in 3 siblings, so a sequential browse of 8
        // members pays ceil(8 / (1 + 3)) = 2 misses.
        let partial = run_one(8, 3);
        assert_eq!(partial.misses, 2);
    }
}
