//! Experiment **E-RP**: cost-aware replacement (§3 Cache Management).
//!
//! "A cache may wish to tailor its replacement policy to favor documents
//! with numerous or complicated active properties to increase the benefit
//! that caching provides." The prototype used Greedy-Dual-Size keyed on the
//! replacement costs properties supply; this experiment reruns the same
//! Zipf workload under GDS and the classic baselines and reports both hit
//! rate and the metric that actually matters here: mean access latency,
//! which only a cost-aware policy optimizes.

use crate::support::DelayProperty;
use placeless_cache::{CacheConfig, DocumentCache, PolicyFactory};
use placeless_core::prelude::*;
use placeless_simenv::trace::{lorem_bytes, WorkloadBuilder};
use placeless_simenv::VirtualClock;

/// The outcome of one `(policy, capacity)` cell.
#[derive(Debug, Clone)]
pub struct ReplacementResult {
    /// Policy name.
    pub policy: String,
    /// Cache capacity as a fraction of the corpus bytes.
    pub capacity_frac: f64,
    /// Cache hit rate.
    pub hit_rate: f64,
    /// Mean access latency in simulated microseconds.
    pub mean_access_micros: u64,
    /// Evictions performed.
    pub evictions: u64,
}

/// Experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct ReplacementParams {
    /// Number of documents in the corpus.
    pub documents: usize,
    /// Number of reads.
    pub reads: usize,
    /// Zipf exponent for popularity.
    pub zipf_theta: f64,
    /// Workload seed.
    pub seed: u64,
}

impl Default for ReplacementParams {
    fn default() -> Self {
        Self {
            documents: 300,
            reads: 5_000,
            zipf_theta: 0.8,
            seed: 1999,
        }
    }
}

/// Runs one policy at one capacity fraction.
///
/// Corpus construction: document sizes vary 256 B – 16 KiB and property
/// cost varies 0 – 5 delay properties of 2 ms each, both deterministic in
/// the document index, so every policy sees the identical universe and
/// workload.
pub fn run_one(
    policy_name: &str,
    capacity_frac: f64,
    params: ReplacementParams,
) -> ReplacementResult {
    let user = UserId(1);
    let clock = VirtualClock::new();
    let space = DocumentSpace::new(clock.clone());

    let mut docs = Vec::with_capacity(params.documents);
    let mut corpus_bytes = 0u64;
    for i in 0..params.documents {
        // Sizes cycle through 256 B .. 16 KiB; popular (low-index) docs are
        // not systematically small or big.
        let size = 256usize << (i % 7);
        corpus_bytes += size as u64;
        let provider =
            MemoryProvider::new(&format!("doc{i}"), lorem_bytes(i as u64 + 1, size), 1_000);
        let doc = space.create_document(user, provider);
        // Property cost: 0–5 transforms of 2 ms each, cycling with a
        // stride coprime to the size cycle.
        for _ in 0..(i % 6) {
            space
                .attach_active(Scope::Personal(user), doc, DelayProperty::new(2_000))
                .expect("attach");
        }
        docs.push(doc);
    }

    let cache = DocumentCache::new(
        space.clone(),
        CacheConfig {
            capacity_bytes: ((corpus_bytes as f64) * capacity_frac) as u64,
            policy: PolicyFactory::by_name(policy_name).expect("known policy"),
            ..CacheConfig::default()
        },
    );

    let workload = WorkloadBuilder::new(params.seed)
        .users(1)
        .documents(params.documents)
        .zipf_theta(params.zipf_theta)
        .write_fraction(0.0)
        .events(params.reads)
        .mean_think_micros(0)
        .build();

    let mut access_micros = 0u64;
    for event in &workload {
        let t0 = clock.now();
        let _ = cache.read(user, docs[event.doc]).expect("read");
        access_micros += clock.now().since(t0);
    }

    let stats = cache.stats();
    ReplacementResult {
        policy: policy_name.to_owned(),
        capacity_frac,
        hit_rate: stats.hit_rate().unwrap_or(0.0),
        mean_access_micros: access_micros / params.reads as u64,
        evictions: stats.evictions,
    }
}

/// Sweeps all policies over the capacity fractions.
pub fn sweep(
    policies: &[&str],
    fracs: &[f64],
    params: ReplacementParams,
) -> Vec<ReplacementResult> {
    let mut results = Vec::new();
    for &frac in fracs {
        for &policy in policies {
            results.push(run_one(policy, frac, params));
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ReplacementParams {
        ReplacementParams {
            documents: 80,
            reads: 1_200,
            zipf_theta: 0.8,
            seed: 7,
        }
    }

    #[test]
    fn tight_capacity_forces_evictions_and_hurts_hit_rate() {
        let tight = run_one("lru", 0.05, small());
        let roomy = run_one("lru", 0.9, small());
        assert!(tight.evictions > 0);
        assert!(roomy.hit_rate > tight.hit_rate);
    }

    #[test]
    fn gds_beats_cost_blind_policies_on_latency() {
        let params = small();
        let gds = run_one("gds", 0.10, params);
        // The best cost-blind baseline still pays more time per access.
        for baseline in ["lru", "fifo", "gd1"] {
            let other = run_one(baseline, 0.10, params);
            assert!(
                gds.mean_access_micros <= other.mean_access_micros,
                "gds {}µs vs {} {}µs",
                gds.mean_access_micros,
                baseline,
                other.mean_access_micros
            );
        }
    }

    #[test]
    fn identical_setup_is_deterministic() {
        let a = run_one("gds", 0.2, small());
        let b = run_one("gds", 0.2, small());
        assert_eq!(a.hit_rate, b.hit_rate);
        assert_eq!(a.mean_access_micros, b.mean_access_micros);
    }

    #[test]
    fn full_capacity_approaches_compulsory_miss_rate() {
        let result = run_one("gds", 2.0, small());
        assert_eq!(result.evictions, 0);
        // Only first-touch misses: hit rate = 1 - unique/reads, roughly.
        assert!(result.hit_rate > 0.9, "hit rate {}", result.hit_rate);
    }
}
