//! Shared helpers for the experiment scenarios.

use bytes::Bytes;
use placeless_core::error::Result;
use placeless_core::event::{EventKind, Interests};
use placeless_core::property::{ActiveProperty, PathCtx, PathReport};
use placeless_core::streams::{InputStream, TransformingInput};
use std::sync::Arc;

/// A property that models an expensive transform: it charges a fixed
/// execution cost (clock + replacement cost) but passes content through.
///
/// The replacement experiments need documents whose *costs* differ by
/// orders of magnitude while their bytes stay comparable; this property is
/// that knob.
pub struct DelayProperty {
    name: String,
    cost_micros: u64,
}

impl DelayProperty {
    /// Creates a delay property charging `cost_micros` per read.
    pub fn new(cost_micros: u64) -> Arc<Self> {
        Arc::new(Self {
            name: format!("delay-{cost_micros}us"),
            cost_micros,
        })
    }
}

impl ActiveProperty for DelayProperty {
    fn name(&self) -> &str {
        &self.name
    }

    fn interests(&self) -> Interests {
        Interests::of(&[EventKind::GetInputStream])
    }

    fn execution_cost_micros(&self) -> u64 {
        self.cost_micros
    }

    fn wrap_input(
        &self,
        _ctx: &PathCtx<'_>,
        _report: &mut PathReport,
        inner: Box<dyn InputStream>,
    ) -> Result<Box<dyn InputStream>> {
        Ok(inner)
    }

    fn transform_token(&self, _ctx: &PathCtx<'_>) -> Option<Vec<u8>> {
        // Identity transform parameterized only by its cost (already part
        // of the name), so the name is the whole token.
        Some(self.name.clone().into_bytes())
    }
}

/// A property that appends a fixed `[label]` marker to the content and
/// charges a fixed execution cost.
///
/// The staged-caching experiment needs transforms whose outputs are
/// *distinct at every stage* (so intermediate entries don't trivially
/// dedupe) and content-addressable (so they can be staged): the marker
/// makes each stage's output unique and the token declares it.
pub struct TagProperty {
    name: String,
    marker: Vec<u8>,
    cost_micros: u64,
}

impl TagProperty {
    /// Creates a tagger appending `[label]`, charging `cost_micros` per
    /// read.
    pub fn new(label: &str, cost_micros: u64) -> Arc<Self> {
        Arc::new(Self {
            name: format!("tag-{label}"),
            marker: format!("[{label}]").into_bytes(),
            cost_micros,
        })
    }

    /// Returns the number of bytes the marker adds to the content.
    pub fn marker_len(label: &str) -> usize {
        label.len() + 2
    }
}

impl ActiveProperty for TagProperty {
    fn name(&self) -> &str {
        &self.name
    }

    fn interests(&self) -> Interests {
        Interests::of(&[EventKind::GetInputStream])
    }

    fn execution_cost_micros(&self) -> u64 {
        self.cost_micros
    }

    fn wrap_input(
        &self,
        _ctx: &PathCtx<'_>,
        _report: &mut PathReport,
        inner: Box<dyn InputStream>,
    ) -> Result<Box<dyn InputStream>> {
        let marker = self.marker.clone();
        Ok(Box::new(TransformingInput::new(
            inner,
            Box::new(move |bytes| {
                let mut out = bytes.to_vec();
                out.extend_from_slice(&marker);
                Ok(Bytes::from(out))
            }),
        )))
    }

    fn transform_token(&self, _ctx: &PathCtx<'_>) -> Option<Vec<u8>> {
        Some(self.marker.clone())
    }
}

/// Formats a milliseconds value for table output.
pub fn fmt_ms(micros: u64) -> String {
    format!("{:.2}", micros as f64 / 1_000.0)
}

/// Prints a table row with fixed-width columns.
pub fn row(cells: &[&str], widths: &[usize]) -> String {
    let mut out = String::new();
    for (cell, width) in cells.iter().zip(widths) {
        out.push_str(&format!("{cell:>width$}  "));
    }
    out.trim_end().to_owned()
}
