//! Shared helpers for the experiment scenarios.

use placeless_core::error::Result;
use placeless_core::event::{EventKind, Interests};
use placeless_core::property::{ActiveProperty, PathCtx, PathReport};
use placeless_core::streams::InputStream;
use std::sync::Arc;

/// A property that models an expensive transform: it charges a fixed
/// execution cost (clock + replacement cost) but passes content through.
///
/// The replacement experiments need documents whose *costs* differ by
/// orders of magnitude while their bytes stay comparable; this property is
/// that knob.
pub struct DelayProperty {
    name: String,
    cost_micros: u64,
}

impl DelayProperty {
    /// Creates a delay property charging `cost_micros` per read.
    pub fn new(cost_micros: u64) -> Arc<Self> {
        Arc::new(Self {
            name: format!("delay-{cost_micros}us"),
            cost_micros,
        })
    }
}

impl ActiveProperty for DelayProperty {
    fn name(&self) -> &str {
        &self.name
    }

    fn interests(&self) -> Interests {
        Interests::of(&[EventKind::GetInputStream])
    }

    fn execution_cost_micros(&self) -> u64 {
        self.cost_micros
    }

    fn wrap_input(
        &self,
        _ctx: &PathCtx<'_>,
        _report: &mut PathReport,
        inner: Box<dyn InputStream>,
    ) -> Result<Box<dyn InputStream>> {
        Ok(inner)
    }
}

/// Formats a milliseconds value for table output.
pub fn fmt_ms(micros: u64) -> String {
    format!("{:.2}", micros as f64 / 1_000.0)
}

/// Prints a table row with fixed-width columns.
pub fn row(cells: &[&str], widths: &[usize]) -> String {
    let mut out = String::new();
    for (cell, width) in cells.iter().zip(widths) {
        out.push_str(&format!("{cell:>width$}  "));
    }
    out.trim_end().to_owned()
}
