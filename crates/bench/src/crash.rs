//! Experiment **E-CRASH**: acknowledged-write durability across a process
//! crash.
//!
//! A write-back cache buffers edits and acknowledges them to the
//! application immediately; a scripted crash
//! ([`placeless_simenv::CrashEvent`]) then kills the process mid-workload,
//! tearing the journal append that was in flight. Two configurations face
//! the same schedule:
//!
//! * **journal off** — the seed cache: every acknowledged-but-unflushed
//!   write dies with the process;
//! * **journal on** — every write-back write is appended to a
//!   [`StableStore`]-backed [`WriteJournal`] *before* the dirty map is
//!   updated; after the crash, [`DocumentCache::recover`] truncates the
//!   torn tail, replays the intact prefix into the dirty queue, and the
//!   next flush pushes the recovered writes to the origin.
//!
//! The headline metric is **acknowledged writes lost**: documents whose
//! origin content, after restart and a final flush, no longer matches the
//! last write the application saw acknowledged. With the journal on it
//! must be zero — the write the crash tore was *in flight*, never
//! acknowledged, so losing it is correct; losing anything else is not.
//!
//! Fully deterministic over the virtual clock: identical parameters give
//! identical statistics, which the embedded tests assert.

use placeless_cache::{CacheConfig, CacheStats, DocumentCache, WriteJournal, WriteMode};
use placeless_core::id::{DocumentId, UserId};
use placeless_core::space::DocumentSpace;
use placeless_repository::{FsProvider, MemFs};
use placeless_simenv::{FaultPlan, Instant, LatencyModel, Link, StableStore, VirtualClock};
use std::collections::HashMap;

/// Scenario parameters.
#[derive(Debug, Clone, Copy)]
pub struct CrashParams {
    /// Documents in the working set.
    pub docs: u64,
    /// Write-back writes the application issues, round-robin over the
    /// working set.
    pub writes: u64,
    /// Virtual time between consecutive writes, in µs.
    pub write_gap_micros: u64,
    /// Issue a flush after every N writes (so part of the workload is
    /// already durable at the origin when the crash strikes).
    pub flush_every: u64,
    /// When the scripted crash fires (virtual µs).
    pub crash_at_micros: u64,
    /// How many bytes of the in-flight journal append the crash tears
    /// (clamped below the record length — a torn write never reaches
    /// back into records that were already on stable storage).
    pub torn_tail_bytes: u64,
    /// Seed for links and the fault plan.
    pub seed: u64,
}

impl Default for CrashParams {
    fn default() -> Self {
        Self {
            docs: 4,
            writes: 120,
            write_gap_micros: 5_000,
            flush_every: 16,
            // Roughly three quarters through the 600 ms write timeline.
            crash_at_micros: 450_000,
            torn_tail_bytes: 25,
            seed: 7,
        }
    }
}

/// One configuration's outcome under the shared crash schedule.
#[derive(Debug, Clone)]
pub struct CrashResult {
    /// Whether the write journal was configured.
    pub journaled: bool,
    /// Writes the application saw acknowledged before the crash (the
    /// in-flight write at the crash tick is *not* acknowledged).
    pub acknowledged: u64,
    /// Of those, how many were already flushed to the origin pre-crash.
    pub flushed_before_crash: u64,
    /// Documents whose origin content after restart + final flush no
    /// longer matches the last acknowledged write. The durability claim:
    /// zero with the journal on.
    pub lost_docs: u64,
    /// Journal records replayed by recovery (0 with the journal off).
    pub replayed: u64,
    /// Bytes of torn tail the recovery truncated away.
    pub torn_bytes: u64,
    /// Counter snapshot of the *recovered* cache (journal replays, the
    /// recovery flush, parked writes…).
    pub stats: CacheStats,
}

impl CrashResult {
    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        if self.journaled {
            "journal on"
        } else {
            "journal off"
        }
    }
}

/// Runs one configuration against the scripted crash and returns its
/// outcome.
pub fn run_one(journaled: bool, params: CrashParams) -> CrashResult {
    let user = UserId(1);
    let clock = VirtualClock::new();
    let space = DocumentSpace::with_middleware_cost(clock.clone(), LatencyModel::FREE);
    let fs = MemFs::new(clock.clone());
    let link = Link::new(1_000, 10_000_000, 0.0, params.seed);
    let plan = FaultPlan::builder(params.seed)
        .crash(params.crash_at_micros, params.torn_tail_bytes)
        .build();
    let mut docs: Vec<DocumentId> = Vec::new();
    for i in 0..params.docs {
        let path = format!("/srv/doc-{i}");
        fs.create(&path, format!("document {i} seed"));
        docs.push(space.create_document(user, FsProvider::new(fs.clone(), &path, link.clone())));
    }

    let medium = StableStore::new();
    let config = |journal: Option<WriteJournal>| {
        let builder = CacheConfig::builder()
            .local_latency(LatencyModel::FREE)
            .write_mode(WriteMode::Back)
            .shards(1);
        match journal {
            Some(journal) => builder.journal(journal),
            None => builder,
        }
        .build()
    };
    let cache = DocumentCache::new(
        space.clone(),
        config(journaled.then(|| WriteJournal::new(medium.clone()))),
    );

    // The application's ledger: the last write it saw acknowledged per
    // document, and how many acknowledgments it collected.
    let mut last_acked: HashMap<DocumentId, String> = HashMap::new();
    let mut acknowledged = 0u64;
    let mut flushed_before_crash = 0u64;
    for i in 0..params.writes {
        let slot = Instant(i * params.write_gap_micros);
        if clock.now() < slot {
            clock.advance_to(slot);
        }
        let doc = docs[(i % params.docs) as usize];
        let body = format!("write {i}");
        if let Some(crash) = plan.take_crash(&clock) {
            // The crash strikes *during* this write: the journal append
            // may reach the medium, but the acknowledgment never reaches
            // the application — so losing this one write is correct.
            let before = medium.len();
            let _ = cache.write(user, doc, body.as_bytes());
            let in_flight = medium.len() - before;
            if in_flight > 0 {
                medium.tear_tail(crash.torn_tail_bytes.clamp(1, in_flight.saturating_sub(1)));
            }
            break;
        }
        cache
            .write(user, doc, body.as_bytes())
            .expect("write-back buffers");
        last_acked.insert(doc, body);
        acknowledged += 1;
        if (i + 1) % params.flush_every == 0 {
            let report = cache.flush().expect("healthy origin");
            flushed_before_crash += report.flushed;
        }
    }
    drop(cache); // the crash: every in-memory structure dies

    // Warm restart: reopen the journal over the surviving medium (the
    // torn tail is truncated here) and replay it into a fresh cache.
    let (journal, outcome) = WriteJournal::open(medium);
    let torn_bytes = outcome.torn_bytes;
    let (recovered, report) =
        DocumentCache::recover(space, config(journaled.then_some(journal)), None);
    let flush = recovered.flush().expect("healthy origin");
    assert!(flush.is_clean(), "nothing is dark after the restart");

    let lost_docs = last_acked
        .iter()
        .filter(|(doc, expected)| {
            let i = docs.iter().position(|d| d == *doc).expect("known doc");
            fs.read(&format!("/srv/doc-{i}")).expect("file exists") != expected.as_bytes()
        })
        .count() as u64;

    CrashResult {
        journaled,
        acknowledged,
        flushed_before_crash,
        lost_docs,
        replayed: report.replayed,
        torn_bytes,
        stats: recovered.stats(),
    }
}

/// Runs both configurations against the same schedule: journal off, then
/// journal on.
pub fn sweep(params: CrashParams) -> Vec<CrashResult> {
    vec![run_one(false, params), run_one(true, params)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_without_journal_loses_acknowledged_writes() {
        let result = run_one(false, CrashParams::default());
        assert!(result.acknowledged > 0);
        assert!(
            result.lost_docs > 0,
            "the crash must be visible without a journal"
        );
        assert_eq!(result.replayed, 0);
    }

    #[test]
    fn crash_with_journal_loses_nothing_acknowledged() {
        let result = run_one(true, CrashParams::default());
        assert_eq!(
            result.lost_docs, 0,
            "every acknowledged write survived the crash"
        );
        assert!(result.replayed > 0, "recovery replayed the journal");
        assert!(result.torn_bytes > 0, "the in-flight append was torn");
        assert!(result.stats.journal_replays > 0);
    }

    #[test]
    fn identical_params_identical_stats() {
        let params = CrashParams::default();
        for journaled in [false, true] {
            let a = run_one(journaled, params);
            let b = run_one(journaled, params);
            assert_eq!(a.stats, b.stats, "journaled={journaled} must replay");
            assert_eq!(
                (a.acknowledged, a.lost_docs, a.replayed, a.torn_bytes),
                (b.acknowledged, b.lost_docs, b.replayed, b.torn_bytes)
            );
        }
    }
}
