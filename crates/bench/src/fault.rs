//! Experiment **E-FAULT**: read availability under origin outages.
//!
//! A file origin goes dark for a scripted window
//! ([`placeless_simenv::FaultPlan`]) while an application keeps reading a
//! working set it had already cached. Three cache configurations face the
//! same fault schedule:
//!
//! * **off** — the seed cache: every fetch failure surfaces to the
//!   application;
//! * **breaker** — bounded retries plus a per-origin circuit breaker:
//!   fewer doomed origin attempts, but reads still fail;
//! * **breaker+stale** — the full pipeline: when the origin is
//!   unreachable and the freshness probe is [`Validity::Unverifiable`],
//!   resident entries within the staleness bound are served anyway.
//!
//! The headline metric is [`CacheStats::read_availability`]. The scenario
//! is fully deterministic over the virtual clock: identical parameters
//! produce identical statistics, which `tests/fault_matrix.rs` asserts.
//!
//! [`Validity::Unverifiable`]: placeless_core::verifier::Validity::Unverifiable
//! [`CacheStats::read_availability`]: placeless_cache::CacheStats::read_availability

use placeless_cache::{
    BreakerConfig, CacheConfig, CacheStats, DocumentCache, ResilienceConfig, StalenessBound,
};
use placeless_core::id::{DocumentId, UserId};
use placeless_core::space::DocumentSpace;
use placeless_repository::{FsProvider, MemFs};
use placeless_simenv::{FaultPlan, LatencyModel, Link, VirtualClock};

/// Which resilience mechanisms the cache under test enables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResilienceMode {
    /// Seed behaviour: fail fast, no degradation.
    Off,
    /// Retries + per-origin circuit breaker; no stale service.
    Breaker,
    /// Retries + breaker + serve-stale within a generous bound.
    BreakerAndStale,
}

impl ResilienceMode {
    /// All modes, in presentation order.
    pub const ALL: [ResilienceMode; 3] = [
        ResilienceMode::Off,
        ResilienceMode::Breaker,
        ResilienceMode::BreakerAndStale,
    ];

    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            ResilienceMode::Off => "off",
            ResilienceMode::Breaker => "breaker",
            ResilienceMode::BreakerAndStale => "breaker+stale",
        }
    }
}

/// Scenario parameters.
#[derive(Debug, Clone, Copy)]
pub struct FaultParams {
    /// Documents in the working set (all on the one faulted origin).
    pub docs: u64,
    /// Reads issued after the warm-up pass, spread over the timeline.
    pub reads: u64,
    /// Virtual time between consecutive reads, in µs.
    pub read_gap_micros: u64,
    /// Outage window start (virtual µs).
    pub outage_from: u64,
    /// Outage window end (exclusive, virtual µs).
    pub outage_until: u64,
    /// Seed for the fault plan and retry jitter.
    pub seed: u64,
}

impl Default for FaultParams {
    fn default() -> Self {
        Self {
            docs: 8,
            reads: 400,
            read_gap_micros: 5_000,
            // The middle half of the 2-second timeline is dark.
            outage_from: 500_000,
            outage_until: 1_500_000,
            seed: 7,
        }
    }
}

/// One mode's outcome under the shared fault schedule.
#[derive(Debug, Clone)]
pub struct FaultResult {
    /// The configuration measured.
    pub mode: ResilienceMode,
    /// Reads that returned bytes.
    pub served: u64,
    /// Reads that surfaced an error to the application.
    pub failed: u64,
    /// Full counter snapshot (retries, breaker trips, stale serves…).
    pub stats: CacheStats,
}

impl FaultResult {
    /// Fraction of reads that returned bytes.
    pub fn availability(&self) -> f64 {
        if self.served + self.failed == 0 {
            return 1.0;
        }
        self.served as f64 / (self.served + self.failed) as f64
    }
}

fn config_for(mode: ResilienceMode, params: &FaultParams) -> ResilienceConfig {
    let retries = ResilienceConfig::builder()
        .max_retries(2)
        .backoff_base_micros(500)
        .backoff_jitter_frac(64)
        .retry_seed(params.seed)
        .breaker(BreakerConfig {
            failure_threshold: 3,
            open_micros: 50_000,
            half_open_probes: 1,
        });
    match mode {
        ResilienceMode::Off => ResilienceConfig::default(),
        ResilienceMode::Breaker => retries.build(),
        ResilienceMode::BreakerAndStale => retries
            // Entries are warmed just before t=0 and the outage ends well
            // inside the timeline, so this bound always covers the window.
            .serve_stale(StalenessBound::micros(
                params.outage_until + params.read_gap_micros,
            ))
            .build(),
    }
}

/// Runs one mode against the scripted outage and returns its outcome.
pub fn run_one(mode: ResilienceMode, params: FaultParams) -> FaultResult {
    let user = UserId(1);
    let clock = VirtualClock::new();
    let space = DocumentSpace::with_middleware_cost(clock.clone(), LatencyModel::FREE);
    let fs = MemFs::new(clock.clone());
    let link = Link::new(1_000, 10_000_000, 0.0, params.seed);
    link.set_fault_plan(
        FaultPlan::builder(params.seed)
            .outage(params.outage_from, params.outage_until)
            .build(),
    );
    let mut docs: Vec<DocumentId> = Vec::new();
    for i in 0..params.docs {
        let path = format!("/srv/doc-{i}");
        fs.create(&path, format!("document {i} body"));
        docs.push(space.create_document(user, FsProvider::new(fs.clone(), &path, link.clone())));
    }

    let cache = DocumentCache::new(
        space,
        CacheConfig::builder()
            .local_latency(LatencyModel::FREE)
            .shards(1)
            .resilience(config_for(mode, &params))
            .build(),
    );

    // Warm pass: every document is resident before the clock reaches the
    // outage (provider fetches advance the clock by link RTT only).
    for &doc in &docs {
        let _ = cache.read(user, doc);
    }

    let mut served = 0;
    let mut failed = 0;
    for i in 0..params.reads {
        // Pin each read to its slot on the timeline; retries/backoff may
        // have advanced the clock past the slot, in which case the read
        // happens "late", exactly as a real client's would.
        let slot = placeless_simenv::Instant(i * params.read_gap_micros);
        if clock.now() < slot {
            clock.advance_to(slot);
        }
        let doc = docs[(i % params.docs) as usize];
        match cache.read(user, doc) {
            Ok(_) => served += 1,
            Err(_) => failed += 1,
        }
    }

    FaultResult {
        mode,
        served,
        failed,
        stats: cache.stats(),
    }
}

/// Runs every mode against the same schedule.
pub fn sweep(params: FaultParams) -> Vec<FaultResult> {
    ResilienceMode::ALL
        .iter()
        .map(|&mode| run_one(mode, params))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outage_degrades_the_unprotected_cache() {
        let result = run_one(ResilienceMode::Off, FaultParams::default());
        assert!(result.failed > 0, "the outage must be visible");
        assert!(result.availability() < 1.0);
        assert_eq!(result.stats.stale_served, 0);
        assert_eq!(result.stats.retries, 0);
    }

    #[test]
    fn serve_stale_masks_the_outage() {
        let result = run_one(ResilienceMode::BreakerAndStale, FaultParams::default());
        assert_eq!(result.failed, 0, "every read inside the bound is served");
        assert!(result.stats.stale_served > 0);
        assert!(result.stats.breaker_trips >= 1);
    }

    #[test]
    fn modes_rank_by_availability() {
        let results = sweep(FaultParams::default());
        let avail: Vec<f64> = results.iter().map(FaultResult::availability).collect();
        assert!(
            avail[2] > avail[0],
            "breaker+stale {} must beat off {}",
            avail[2],
            avail[0]
        );
        assert!(avail[2] >= avail[1]);
    }

    #[test]
    fn breaker_cuts_origin_attempts() {
        let breaker = run_one(ResilienceMode::Breaker, FaultParams::default());
        assert!(breaker.stats.breaker_trips >= 1);
        // Once open, fetches fast-fail without consuming retries.
        let unprotected_failures = run_one(ResilienceMode::Off, FaultParams::default()).failed;
        assert!(breaker.failed <= unprotected_failures + breaker.stats.retries);
    }

    #[test]
    fn identical_params_identical_stats() {
        let params = FaultParams::default();
        for mode in ResilienceMode::ALL {
            let a = run_one(mode, params);
            let b = run_one(mode, params);
            assert_eq!(a.stats, b.stats, "{mode:?} must replay exactly");
            assert_eq!((a.served, a.failed), (b.served, b.failed));
        }
    }
}
