//! Experiment **E-REVAL**: TTL vs conditional-GET revalidation for web
//! documents.
//!
//! §3 observes that 1999 web servers "manage consistency only based on a
//! time-to-live (TTL) invalidation scheme" — which leaves a staleness
//! window whenever the origin changes inside the TTL. The verifier
//! mechanism can do better: a revalidating verifier issues a conditional
//! GET per hit (HTTP/1.1 semantics), trading an RTT per hit for zero
//! staleness. This experiment sweeps the origin-edit rate under both.

use placeless_cache::{CacheConfig, DocumentCache};
use placeless_core::prelude::*;
use placeless_repository::{WebProvider, WebServer};
use placeless_simenv::{Link, SimRng, VirtualClock};

/// The verifier flavour measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WebMode {
    /// Classic TTL freshness.
    Ttl,
    /// Conditional GET per hit.
    Revalidate,
}

impl WebMode {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            WebMode::Ttl => "ttl",
            WebMode::Revalidate => "revalidate",
        }
    }
}

/// One sweep cell.
#[derive(Debug, Clone)]
pub struct RevalResult {
    /// Verifier flavour.
    pub mode: WebMode,
    /// Probability of an origin edit before each read.
    pub edit_rate: f64,
    /// Mean read latency, simulated microseconds.
    pub mean_read_micros: u64,
    /// Fraction of reads that served content older than the origin's.
    pub stale_frac: f64,
}

/// Runs one configuration: `reads` reads of a page with `ttl_micros`
/// freshness; before each read the origin is edited with probability
/// `edit_rate`. Think time between reads is `gap_micros`.
pub fn run_one(
    mode: WebMode,
    reads: u32,
    edit_rate: f64,
    ttl_micros: u64,
    gap_micros: u64,
    seed: u64,
) -> RevalResult {
    let user = UserId(1);
    let clock = VirtualClock::new();
    let space = DocumentSpace::new(clock.clone());
    let server = WebServer::new("news.example.com");
    server.publish("/front", "rev 0", ttl_micros);
    let link = Link::new(2_000, 1_000_000, 0.0, seed);
    let provider = match mode {
        WebMode::Ttl => WebProvider::new(server.clone(), "/front", link),
        WebMode::Revalidate => WebProvider::with_revalidation(server.clone(), "/front", link),
    };
    let doc = space.create_document(user, provider);
    let cache = DocumentCache::new(space, CacheConfig::default());

    let mut rng = SimRng::seeded(seed);
    let mut revision = 0u64;
    let mut stale = 0u32;
    let mut read_micros = 0u64;
    for _ in 0..reads {
        clock.advance(gap_micros);
        if rng.chance(edit_rate) {
            revision += 1;
            server
                .edit_origin("/front", format!("rev {revision}"))
                .expect("edit");
        }
        let t0 = clock.now();
        let bytes = cache.read(user, doc).expect("read");
        read_micros += clock.now().since(t0);
        if !bytes.ends_with(revision.to_string().as_bytes()) {
            stale += 1;
        }
    }

    RevalResult {
        mode,
        edit_rate,
        mean_read_micros: read_micros / reads as u64,
        stale_frac: stale as f64 / reads as f64,
    }
}

/// Sweeps both modes over edit rates.
pub fn sweep(reads: u32, edit_rates: &[f64], seed: u64) -> Vec<RevalResult> {
    let mut results = Vec::new();
    for &rate in edit_rates {
        for mode in [WebMode::Ttl, WebMode::Revalidate] {
            // A 60 s TTL with 1 s think time: plenty of room to be stale.
            results.push(run_one(mode, reads, rate, 60_000_000, 1_000_000, seed));
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn revalidation_is_never_stale() {
        let result = run_one(WebMode::Revalidate, 200, 0.2, 60_000_000, 1_000_000, 5);
        assert_eq!(result.stale_frac, 0.0);
    }

    #[test]
    fn ttl_is_stale_within_the_window_but_cheaper() {
        let ttl = run_one(WebMode::Ttl, 200, 0.2, 60_000_000, 1_000_000, 5);
        let reval = run_one(WebMode::Revalidate, 200, 0.2, 60_000_000, 1_000_000, 5);
        assert!(
            ttl.stale_frac > 0.5,
            "long TTL hides edits: {}",
            ttl.stale_frac
        );
        assert!(
            ttl.mean_read_micros < reval.mean_read_micros,
            "ttl {} vs reval {}",
            ttl.mean_read_micros,
            reval.mean_read_micros
        );
    }

    #[test]
    fn short_ttl_bounds_the_staleness() {
        let long = run_one(WebMode::Ttl, 200, 0.2, 60_000_000, 1_000_000, 5);
        let short = run_one(WebMode::Ttl, 200, 0.2, 2_000_000, 1_000_000, 5);
        assert!(short.stale_frac < long.stale_frac);
    }

    #[test]
    fn quiet_origins_are_never_stale() {
        for mode in [WebMode::Ttl, WebMode::Revalidate] {
            let result = run_one(mode, 100, 0.0, 60_000_000, 1_000_000, 5);
            assert_eq!(result.stale_frac, 0.0, "{mode:?}");
        }
    }
}
