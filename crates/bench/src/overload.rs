//! Experiment **E-OVERLOAD**: deadline-aware admission and brownout under
//! a 10× offered-load burst.
//!
//! E-LOAD measures sustained throughput when the cache absorbs the
//! workload; this experiment measures what happens when it *cannot* — a
//! burst several times over origin capacity. A
//! [`placeless_simenv::trace::BurstSchedule`] shapes three phases —
//! calibrated saturation at 1×, a burst at `burst_intensity`×, and a
//! recovery tail back at 1× — and each phase drives `base_threads ×
//! intensity` OS threads of cold-miss reads at a deliberately slow shared
//! origin, so queues physically form on the per-origin inflight window.
//!
//! The same schedule runs twice:
//!
//! * **unprotected** — the inflight window alone
//!   ([`CacheConfig::max_inflight_per_origin`]). Nothing is ever refused,
//!   so the queue grows with the burst and every read eventually
//!   completes — *late*. Classic congestion collapse: the origin stays
//!   busy but almost nothing finishes inside its latency objective.
//! * **protected** — the same window plus [`CacheConfig::overload`] and a
//!   per-read deadline. Arrivals whose remaining budget cannot cover the
//!   expected queue delay are shed at admission with
//!   [`PlacelessError::Overloaded`]; AIMD adapts the window width to the
//!   observed service time; the brownout ladder sheds background-priority
//!   reads outright. The reads that are admitted complete on time.
//!
//! **Goodput** is on-time completions per *virtual* second, where on-time
//! means the read's virtual latency stayed within the same
//! `slo_micros` objective for both configurations. [`run_overload`]
//! asserts the acceptance gates: the protected burst sustains at least
//! 80 % of saturation goodput with its completed-read p99 inside the SLO,
//! the unprotected burst collapses below half, and per phase
//! `admitted + shed == offered` (pinned by `debug_assert!`).

use bytes::Bytes;
use placeless_cache::{
    CacheConfig, CacheStats, DocumentCache, OverloadConfig, Priority, ReadOptions,
};
use placeless_core::prelude::*;
use placeless_simenv::trace::{lorem_bytes, BurstSchedule};
use placeless_simenv::{LatencyModel, VirtualClock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Parameters for one E-OVERLOAD run.
#[derive(Debug, Clone, Copy)]
pub struct OverloadParams {
    /// Driving threads at intensity 1 (the calibrated steady state).
    pub base_threads: usize,
    /// Reads offered during the saturation phase.
    pub sat_events: usize,
    /// Reads offered during the burst phase.
    pub burst_events: usize,
    /// Reads offered during the recovery tail.
    pub recover_events: usize,
    /// Offered-load multiplier of the burst phase.
    pub burst_intensity: u32,
    /// Virtual microseconds one origin fetch charges the clock.
    pub service_virtual_micros: u64,
    /// Wall microseconds one origin fetch holds its window slot, so
    /// queues physically form across threads.
    pub service_wall_micros: u64,
    /// Per-read deadline the protected configuration passes in
    /// [`ReadOptions::deadline_micros`] (virtual µs).
    pub deadline_micros: u64,
    /// Latency objective a completed read must meet to count toward
    /// goodput (virtual µs; judged identically for both configurations).
    pub slo_micros: u64,
    /// Bytes per document body.
    pub doc_bytes: usize,
    /// RNG seed for document bodies.
    pub seed: u64,
}

impl Default for OverloadParams {
    fn default() -> Self {
        Self {
            base_threads: 4,
            sat_events: 400,
            burst_events: 1_200,
            recover_events: 400,
            burst_intensity: 10,
            service_virtual_micros: 1_000,
            service_wall_micros: 250,
            deadline_micros: 8_000,
            slo_micros: 15_000,
            doc_bytes: 96,
            seed: 42,
        }
    }
}

impl OverloadParams {
    /// Applies `E_OVERLOAD_THREADS` / `E_OVERLOAD_EVENTS` /
    /// `E_OVERLOAD_INTENSITY` / `E_OVERLOAD_WALL_MICROS` environment
    /// overrides, so CI can run a reduced smoke without a separate code
    /// path. `E_OVERLOAD_EVENTS` scales the burst phase; the saturation
    /// and recovery phases keep a third of it each.
    pub fn from_env(mut self) -> Self {
        let get = |name: &str| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
        };
        if let Some(v) = get("E_OVERLOAD_THREADS") {
            self.base_threads = v.max(1);
        }
        if let Some(v) = get("E_OVERLOAD_EVENTS") {
            self.burst_events = v.max(3);
            self.sat_events = (v / 3).max(1);
            self.recover_events = (v / 3).max(1);
        }
        if let Some(v) = get("E_OVERLOAD_INTENSITY") {
            self.burst_intensity = (v as u32).max(2);
        }
        if let Some(v) = get("E_OVERLOAD_WALL_MICROS") {
            self.service_wall_micros = v as u64;
        }
        self
    }

    /// The three-phase offered-load schedule this run drives.
    pub fn schedule(&self) -> BurstSchedule {
        BurstSchedule::steady(self.sat_events)
            .phase(self.burst_events, self.burst_intensity)
            .phase(self.recover_events, 1)
    }

    /// Total reads one run offers.
    pub fn total_events(&self) -> usize {
        self.sat_events + self.burst_events + self.recover_events
    }
}

/// Measured outcome of one schedule phase.
#[derive(Debug, Clone, Copy)]
pub struct PhaseResult {
    /// Phase label ("saturation", "burst", "recovery").
    pub name: &'static str,
    /// Offered-load multiplier the phase ran at.
    pub intensity: u32,
    /// Reads offered.
    pub offered: u64,
    /// Reads that completed (`Ok`).
    pub admitted: u64,
    /// Reads refused with [`PlacelessError::Overloaded`].
    pub shed: u64,
    /// Completions whose virtual latency met the SLO.
    pub on_time: u64,
    /// Virtual microseconds the phase consumed.
    pub virtual_micros: u64,
    /// Wall microseconds the phase consumed.
    pub wall_micros: u64,
    /// 99th-percentile virtual latency of completed reads, µs.
    pub p99_virtual_micros: u64,
    /// 99th-percentile wall latency of completed reads, ns.
    pub p99_wall_nanos: u64,
}

impl PhaseResult {
    /// On-time completions per virtual second — the goodput metric the
    /// experiment is gated on.
    pub fn goodput(&self) -> f64 {
        self.on_time as f64 / (self.virtual_micros.max(1) as f64 / 1_000_000.0)
    }

    /// Fraction of offered reads that were shed.
    pub fn shed_frac(&self) -> f64 {
        self.shed as f64 / self.offered.max(1) as f64
    }
}

/// One configuration's run over the full schedule.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Whether [`CacheConfig::overload`] (and per-read deadlines) were on.
    pub protected: bool,
    /// Per-phase measurements, in schedule order.
    pub phases: Vec<PhaseResult>,
    /// Counter delta across the whole run.
    pub stats: CacheStats,
}

impl CellResult {
    /// The phase named `name`.
    ///
    /// # Panics
    ///
    /// Panics if the schedule had no such phase.
    pub fn phase(&self, name: &str) -> &PhaseResult {
        self.phases
            .iter()
            .find(|p| p.name == name)
            .expect("phase present")
    }

    /// Burst goodput as a fraction of this cell's saturation goodput.
    pub fn retained(&self) -> f64 {
        self.phase("burst").goodput() / self.phase("saturation").goodput().max(f64::MIN_POSITIVE)
    }
}

/// Origin provider that is deliberately slow both ways: each fetch
/// charges `virtual_micros` to the clock (the deadline currency) and
/// sleeps `wall_micros` of real time while holding its window slot (so
/// concurrent arrivals physically queue). All instances share one origin
/// key, so every document lands on the same inflight window.
struct SlowOrigin {
    body: Bytes,
    virtual_micros: u64,
    wall_micros: u64,
}

impl BitProvider for SlowOrigin {
    fn describe(&self) -> String {
        "slow:origin".to_owned()
    }

    fn open_input(&self, clock: &VirtualClock) -> Result<Box<dyn InputStream>> {
        clock.advance(self.virtual_micros);
        if self.wall_micros > 0 {
            std::thread::sleep(std::time::Duration::from_micros(self.wall_micros));
        }
        Ok(Box::new(MemoryInput::new(self.body.clone())))
    }

    fn open_output(&self, _clock: &VirtualClock) -> Result<Box<dyn OutputStream>> {
        Err(PlacelessError::Repository(
            "slow origin is read-only".to_owned(),
        ))
    }

    fn make_verifier(&self, _clock: &VirtualClock) -> Option<Box<dyn Verifier>> {
        None
    }

    fn fetch_cost_micros(&self) -> u64 {
        self.virtual_micros
    }
}

/// Deterministic priority mix: during overload phases one read in five is
/// a background prefetch and one in five a refresh, so the priority
/// ladder has something to shed before foreground work.
fn priority_for(index: usize) -> Priority {
    match index % 5 {
        0 => Priority::Prefetch,
        1 => Priority::Refresh,
        _ => Priority::Foreground,
    }
}

/// Runs one configuration over the full schedule.
pub fn run_cell(protected: bool, params: OverloadParams) -> CellResult {
    let space = DocumentSpace::with_middleware_cost(VirtualClock::new(), LatencyModel::FREE);
    let user = UserId(1);
    let total = params.total_events();
    let docs: Vec<DocumentId> = (0..total)
        .map(|d| {
            space.create_document(
                user,
                std::sync::Arc::new(SlowOrigin {
                    body: Bytes::from(lorem_bytes(params.seed + d as u64, params.doc_bytes)),
                    virtual_micros: params.service_virtual_micros,
                    wall_micros: params.service_wall_micros,
                }),
            )
        })
        .collect();

    let mut config = CacheConfig::builder()
        .capacity_bytes(1 << 30)
        .local_latency(LatencyModel::FREE)
        .max_inflight_per_origin(4);
    if protected {
        config = config.overload(
            OverloadConfig::default()
                .target_fetch_micros(5 * params.service_virtual_micros)
                .inflight_bounds(1, 4)
                .expected_service_micros(params.service_virtual_micros)
                .brownout_waiters(8, 2)
                .brownout_dwell_micros(10 * params.service_virtual_micros)
                .retry_after_micros(params.deadline_micros),
        );
    }
    let cache = DocumentCache::new(space.clone(), config.build());
    let clock = space.clock().clone();
    let before = cache.stats();

    let schedule = params.schedule();
    let phase_names = ["saturation", "burst", "recovery"];
    let mut phases = Vec::with_capacity(schedule.phases().len());
    let mut next_doc = 0usize;
    for (phase_index, phase) in schedule.phases().iter().enumerate() {
        let threads = params.base_threads * phase.intensity as usize;
        let phase_docs = &docs[next_doc..next_doc + phase.events];
        next_doc += phase.events;

        let admitted = AtomicU64::new(0);
        let shed = AtomicU64::new(0);
        // (virtual latency µs, wall latency ns) per completed read.
        let latencies: Mutex<Vec<(u64, u64)>> = Mutex::new(Vec::with_capacity(phase.events));
        let v0 = clock.now();
        let wall0 = std::time::Instant::now();
        std::thread::scope(|scope| {
            for (t, chunk) in phase_docs
                .chunks(phase.events.div_ceil(threads))
                .enumerate()
            {
                let cache = &cache;
                let clock = &clock;
                let admitted = &admitted;
                let shed = &shed;
                let latencies = &latencies;
                scope.spawn(move || {
                    let mut local = Vec::with_capacity(chunk.len());
                    for (i, &doc) in chunk.iter().enumerate() {
                        let mut opts = ReadOptions::default().priority(priority_for(t + i));
                        if protected {
                            opts = opts.deadline_micros(params.deadline_micros);
                        }
                        let t0v = clock.now();
                        let t0w = std::time::Instant::now();
                        match cache.read_with(user, doc, opts) {
                            Ok(outcome) => {
                                std::hint::black_box(&outcome.bytes);
                                admitted.fetch_add(1, Ordering::Relaxed);
                                local.push((
                                    clock.now().since(t0v),
                                    t0w.elapsed().as_nanos() as u64,
                                ));
                            }
                            Err(PlacelessError::Overloaded { .. }) => {
                                shed.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(other) => panic!("unexpected read failure: {other}"),
                        }
                    }
                    latencies.lock().unwrap().extend_from_slice(&local);
                });
            }
        });
        let virtual_micros = clock.now().since(v0);
        let wall_micros = wall0.elapsed().as_micros() as u64;

        let mut lats = latencies.into_inner().unwrap();
        lats.sort_unstable();
        let p99 = |pick: fn(&(u64, u64)) -> u64| -> u64 {
            let mut v: Vec<u64> = lats.iter().map(pick).collect();
            v.sort_unstable();
            v.get((v.len().saturating_sub(1)) * 99 / 100)
                .copied()
                .unwrap_or(0)
        };
        let on_time = lats
            .iter()
            .filter(|(virt, _)| *virt <= params.slo_micros)
            .count() as u64;
        let result = PhaseResult {
            name: phase_names[phase_index.min(phase_names.len() - 1)],
            intensity: phase.intensity,
            offered: phase.events as u64,
            admitted: admitted.into_inner(),
            shed: shed.into_inner(),
            on_time,
            virtual_micros,
            wall_micros,
            p99_virtual_micros: p99(|l| l.0),
            p99_wall_nanos: p99(|l| l.1),
        };
        // The overload contract: every offered read is either served or
        // refused with `Overloaded` — nothing vanishes.
        debug_assert!(
            result.admitted + result.shed == result.offered,
            "{}: admitted {} + shed {} != offered {}",
            result.name,
            result.admitted,
            result.shed,
            result.offered
        );
        phases.push(result);
    }

    CellResult {
        protected,
        phases,
        stats: cache.stats().delta(&before),
    }
}

/// Runs the burst schedule unprotected and protected and asserts the
/// acceptance gates.
///
/// # Panics
///
/// Panics if the protected configuration fails to sustain ≥ 80 % of its
/// saturation goodput through the burst with completed-read p99 inside
/// the SLO, if it never sheds or never shifts the brownout ladder, or if
/// the unprotected configuration fails to *collapse* (which would mean
/// the burst is not actually overloading the origin).
pub fn run_overload(params: OverloadParams) -> [CellResult; 2] {
    let unprotected = run_cell(false, params);
    let protected = run_cell(true, params);

    for cell in [&unprotected, &protected] {
        let offered: u64 = cell.phases.iter().map(|p| p.offered).sum();
        let served: u64 = cell.phases.iter().map(|p| p.admitted + p.shed).sum();
        assert_eq!(offered, served, "every offered read must be accounted");
    }
    assert_eq!(
        unprotected.stats.sheds_total(),
        0,
        "the unprotected cell must never shed"
    );

    let retained = protected.retained();
    assert!(
        retained >= 0.8,
        "protected burst goodput retained only {:.0}% of saturation",
        retained * 100.0
    );
    assert!(
        protected.stats.sheds_total() > 0,
        "the burst never triggered shedding"
    );
    assert!(
        protected.stats.brownout_shifts > 0,
        "the burst never moved the brownout ladder"
    );

    let collapsed = unprotected.retained();
    assert!(
        collapsed < 0.5,
        "unprotected burst retained {:.0}% — the burst is not overloading",
        collapsed * 100.0
    );
    // "Bounded p99 vs collapse" is judged comparatively — an absolute
    // virtual-latency ceiling would be hostage to host scheduling noise
    // (a descheduled reader accrues other threads' clock advances), but
    // the unbounded queue must dominate any such noise by a wide margin.
    assert!(
        protected.phase("burst").p99_virtual_micros * 2
            <= unprotected.phase("burst").p99_virtual_micros,
        "protected burst p99 {}us is not clearly bounded vs unprotected {}us",
        protected.phase("burst").p99_virtual_micros,
        unprotected.phase("burst").p99_virtual_micros
    );
    assert!(
        unprotected.phase("burst").p99_virtual_micros > params.slo_micros,
        "unprotected burst p99 stayed inside the SLO"
    );

    [unprotected, protected]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "debug instrumentation"]
    fn dbg_phases() {
        let params = small();
        for protected in [false, true] {
            let cell = run_cell(protected, params);
            println!("protected={protected}");
            for p in &cell.phases {
                println!(
                    "  {} i={} offered={} admitted={} shed={} on_time={} p99v={} p99w={}ns vmicros={} wall={} goodput={:.1}",
                    p.name, p.intensity, p.offered, p.admitted, p.shed, p.on_time,
                    p.p99_virtual_micros, p.p99_wall_nanos, p.virtual_micros, p.wall_micros,
                    p.goodput()
                );
            }
            println!(
                "  stats: sheds fg/rf/pf = {}/{}/{} shifts={} queue_wait={} retained={:.2}",
                cell.stats.sheds_foreground,
                cell.stats.sheds_refresh,
                cell.stats.sheds_prefetch,
                cell.stats.brownout_shifts,
                cell.stats.queue_wait_micros,
                cell.retained()
            );
        }
    }

    fn small() -> OverloadParams {
        OverloadParams {
            base_threads: 4,
            sat_events: 150,
            burst_events: 600,
            recover_events: 150,
            service_wall_micros: 150,
            ..OverloadParams::default()
        }
    }

    #[test]
    fn protected_survives_the_burst_and_unprotected_collapses() {
        // run_overload() itself asserts the acceptance gates.
        let [unprotected, protected] = run_overload(small());
        assert!(protected.phase("burst").shed > 0);
        assert_eq!(unprotected.phase("burst").shed, 0);
        assert!(
            protected.phase("burst").goodput() > unprotected.phase("burst").goodput(),
            "shedding must beat queueing on goodput"
        );
    }

    #[test]
    fn saturation_phase_is_clean_in_both_cells() {
        let params = small();
        for protected in [false, true] {
            let cell = run_cell(protected, params);
            let sat = cell.phase("saturation");
            // Tolerances absorb host scheduling noise (a descheduled
            // reader accrues other threads' virtual advances), which can
            // nudge a couple of 1x reads past the SLO or the admission
            // estimate when the test host is oversubscribed.
            assert!(
                sat.shed <= sat.offered / 20,
                "1x shed {} of {} (protected={protected})",
                sat.shed,
                sat.offered
            );
            assert!(
                sat.on_time as f64 >= sat.admitted as f64 * 0.95,
                "1x must be on time, got {}/{} (protected={protected})",
                sat.on_time,
                sat.admitted
            );
        }
    }

    #[test]
    fn recovery_returns_to_on_time_service() {
        let cell = run_cell(true, small());
        let recover = cell.phase("recovery");
        assert!(
            recover.on_time as f64 >= recover.offered as f64 * 0.9,
            "recovery must return to on-time service, got {}/{}",
            recover.on_time,
            recover.offered
        );
    }

    #[test]
    fn priority_classes_shed_background_first() {
        let cell = run_cell(true, small());
        let background = cell.stats.sheds_prefetch + cell.stats.sheds_refresh;
        assert!(background > 0, "brownout never shed background reads");
        // 3 of 5 reads are foreground, yet shedding must not fall on them
        // disproportionately: admission sheds late arrivals of any class,
        // but the ladder rejects background outright.
        assert!(cell.stats.sheds_total() >= background);
    }
}
