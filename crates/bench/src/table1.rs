//! Experiment **Table 1**: document content access times for an
//! application-level cache.
//!
//! The paper measures three web origins — `parcweb` (1,915 bytes, on the
//! PARC LAN) and two remote WWW sites (10,883 and 1,104 bytes) — under
//! three configurations: no cache, cache miss (fill overhead: a minimum
//! set of notifiers plus one TTL verifier), and cache hit. No active
//! properties are attached. We reproduce the setup on simulated 1999 links
//! and report simulated milliseconds; the paper's *shape* to match is
//! `hit ≪ no-cache`, `miss ≈ no-cache + small overhead`, and remote
//! origins an order of magnitude slower than the local one.

use placeless_cache::{CacheConfig, DocumentCache};
use placeless_core::prelude::*;
use placeless_properties::{ContentWriteNotifier, PropertyChangeNotifier};
use placeless_repository::{table1_origins, WebProvider};
use placeless_simenv::{Link, LinkClass, VirtualClock};
use std::sync::Arc;

/// One row of the reproduced Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Origin label.
    pub origin: String,
    /// Page size in bytes.
    pub size: u64,
    /// Mean access time without any cache, in microseconds.
    pub no_cache_micros: u64,
    /// Mean access time on a cache miss (fill included), in microseconds.
    pub miss_micros: u64,
    /// Mean access time on a cache hit (verifiers included), in
    /// microseconds.
    pub hit_micros: u64,
}

/// Runs the Table 1 experiment with `iters` repetitions per cell.
pub fn run(iters: u32) -> Vec<Table1Row> {
    let user = UserId(1);
    let clock = VirtualClock::new();
    let origins = table1_origins(&clock);
    let links = [
        Link::of_class(LinkClass::Lan, 11),
        Link::of_class(LinkClass::Wan, 12),
        Link::of_class(LinkClass::Wan, 13),
    ];

    let space = DocumentSpace::new(clock.clone());
    let mut rows = Vec::new();
    for (origin, link) in origins.into_iter().zip(links) {
        let size = origin.body_len("/index.html").expect("published");
        let provider = WebProvider::new(origin.clone(), "/index.html", link);
        let doc = space.create_document(user, provider);
        // The paper's miss overhead: creating the minimum set of notifiers
        // (tracking property additions/deletions) and one TTL verifier.
        space
            .attach_active(Scope::Universal, doc, PropertyChangeNotifier::any())
            .expect("attach");
        space
            .attach_active(Scope::Universal, doc, ContentWriteNotifier::any())
            .expect("attach");

        // No cache: straight through the middleware every time.
        let no_cache_micros = mean_micros(iters, || {
            let t0 = clock.now();
            let _ = space.read_document(user, doc).expect("read");
            clock.now().since(t0)
        });

        // Cache miss: fill a cold cache each iteration.
        let cache = DocumentCache::new(space.clone(), CacheConfig::default());
        let miss_micros = mean_micros(iters, || {
            // Cold: drop the entry via the bus, then time the fill.
            space.bus().post(Invalidation::Document(doc));
            let t0 = clock.now();
            let _ = cache.read(user, doc).expect("read");
            clock.now().since(t0)
        });

        // Cache hit: the entry stays warm (TTL is 60 s of virtual time).
        let _ = cache.read(user, doc).expect("warm");
        let hit_micros = mean_micros(iters, || {
            let t0 = clock.now();
            let _ = cache.read(user, doc).expect("read");
            clock.now().since(t0)
        });

        rows.push(Table1Row {
            origin: origin.host().to_owned(),
            size,
            no_cache_micros,
            miss_micros,
            hit_micros,
        });
    }
    rows
}

fn mean_micros(iters: u32, mut once: impl FnMut() -> u64) -> u64 {
    let total: u64 = (0..iters).map(|_| once()).sum();
    total / iters as u64
}

/// Checks the paper's qualitative claims against a run.
pub fn shape_holds(rows: &[Table1Row]) -> bool {
    rows.iter().all(|r| {
        // Hits are at least an order of magnitude faster than no-cache.
        r.hit_micros * 10 <= r.no_cache_micros
            // Miss overhead over no-cache is small (< 25 %).
            && r.miss_micros as f64 <= r.no_cache_micros as f64 * 1.25
    }) && {
        // The local origin is much faster than the remote ones (no cache).
        let local = rows[0].no_cache_micros;
        rows[1..].iter().all(|r| r.no_cache_micros > local * 5)
    }
}

/// Builds `(space, cache, doc)` for the criterion wall-clock variant.
pub fn bench_setup() -> (Arc<DocumentSpace>, Arc<DocumentCache>, DocumentId, UserId) {
    let user = UserId(1);
    let clock = VirtualClock::new();
    let [parcweb, _, _] = table1_origins(&clock);
    let space = DocumentSpace::new(clock);
    let provider = WebProvider::new(parcweb, "/index.html", Link::of_class(LinkClass::Lan, 7));
    let doc = space.create_document(user, provider);
    let cache = DocumentCache::new(space.clone(), CacheConfig::default());
    (space, cache, doc, user)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_matches_the_paper() {
        let rows = run(5);
        assert_eq!(rows.len(), 3);
        assert!(shape_holds(&rows), "shape violated: {rows:#?}");
    }

    #[test]
    fn sizes_match_the_paper() {
        let rows = run(1);
        assert_eq!(rows[0].size, 1_915);
        assert_eq!(rows[1].size, 10_883);
        assert_eq!(rows[2].size, 1_104);
    }
}
