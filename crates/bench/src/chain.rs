//! Experiment **E-CHAIN**: property-chain length versus access latency.
//!
//! §3's motivation: "Document access latencies are affected by the
//! interposition of active property execution... The latency of reading a
//! document's content can vary drastically depending on the number and
//! execution times of the active properties attached to a document." This
//! experiment measures read latency as the chain grows, with and without a
//! cache — showing that caching hides property execution entirely on hits.

use crate::support::DelayProperty;
use placeless_cache::{CacheConfig, DocumentCache};
use placeless_core::prelude::*;
use placeless_simenv::VirtualClock;

/// The outcome of one chain-length cell.
#[derive(Debug, Clone)]
pub struct ChainResult {
    /// Number of attached transform properties.
    pub chain: usize,
    /// No-cache read latency, in simulated microseconds.
    pub no_cache_micros: u64,
    /// Cache-hit latency.
    pub hit_micros: u64,
    /// Replacement cost the path reported (what GDS would use).
    pub reported_cost_micros: f64,
}

/// Measures one chain length; each property costs `per_prop_micros`.
pub fn run_one(chain: usize, per_prop_micros: u64) -> ChainResult {
    let user = UserId(1);
    let clock = VirtualClock::new();
    let space = DocumentSpace::new(clock.clone());
    let provider = MemoryProvider::new("doc", vec![b'x'; 4_096], 2_000);
    let doc = space.create_document(user, provider);
    for _ in 0..chain {
        space
            .attach_active(
                Scope::Personal(user),
                doc,
                DelayProperty::new(per_prop_micros),
            )
            .expect("attach");
    }

    let t0 = clock.now();
    let (_, report) = space.read_document(user, doc).expect("read");
    let no_cache_micros = clock.now().since(t0);

    let cache = DocumentCache::new(space, CacheConfig::default());
    let _ = cache.read(user, doc).expect("warm");
    let t1 = clock.now();
    let _ = cache.read(user, doc).expect("hit");
    let hit_micros = clock.now().since(t1);

    ChainResult {
        chain,
        no_cache_micros,
        hit_micros,
        reported_cost_micros: report.cost.effective_micros(),
    }
}

/// Sweeps chain lengths.
pub fn sweep(chains: &[usize], per_prop_micros: u64) -> Vec<ChainResult> {
    chains
        .iter()
        .map(|&c| run_one(c, per_prop_micros))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_grows_linearly_with_chain_length() {
        let results = sweep(&[0, 4, 16], 2_000);
        assert!(results[1].no_cache_micros >= results[0].no_cache_micros + 4 * 2_000);
        assert!(results[2].no_cache_micros >= results[0].no_cache_micros + 16 * 2_000);
    }

    #[test]
    fn hits_are_flat_regardless_of_chain() {
        let results = sweep(&[0, 16], 2_000);
        // Hit latency does not include property execution at all.
        let delta = results[1].hit_micros.abs_diff(results[0].hit_micros);
        assert!(delta < 1_000, "hit latency drifted by {delta}µs");
        assert!(results[1].hit_micros < results[1].no_cache_micros / 10);
    }

    #[test]
    fn reported_cost_tracks_the_chain() {
        let results = sweep(&[2, 8], 2_000);
        assert!(results[1].reported_cost_micros > results[0].reported_cost_micros);
    }
}
