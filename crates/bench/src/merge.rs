//! Experiment **E-MERGE**: acknowledged-edit survival under concurrent
//! writers, a crash, and a network partition.
//!
//! Two write-back caches over the *same* document — Alice's and Bob's,
//! each with its own journal medium — interleave edits through two
//! phases of trouble:
//!
//! 1. **Crash.** Both writers append edits; Bob flushes, Alice crashes
//!    with her edits still buffered (her in-flight journal append is
//!    torn). Recovery replays her journal and finds the origin moved
//!    under her — a genuine multi-writer conflict.
//! 2. **Partition.** Both writers keep editing; Bob's flush lands inside
//!    a scheduled partition window and parks; Alice flushes after the
//!    heal; Bob's retry then faces an origin that moved again.
//!
//! Three resolution modes face the identical schedule:
//!
//! * **op-merge** — edits are issued as typed [`DocOp::Append`]
//!   operations and both caches carry a [`MergePolicy`]: conflicts are
//!   resolved by rebasing the ops onto the origin's current content,
//!   server-side at flush and cache-side at recovery.
//! * **keep-mine** — edits are full-body writes (the buffered view wins):
//!   the concurrent writer's acknowledged edits are overwritten.
//! * **keep-theirs** — full-body writes, conflicted journal records are
//!   dropped at recovery: the crashed writer's acknowledged edits die.
//!
//! The headline metric is **acknowledged edits lost**: unique edit
//! tokens the application saw acknowledged that are absent from the
//! origin's final content. Op-merge must lose zero; both binary modes
//! must lose at least one — that asymmetry is the point of the
//! experiment, and the embedded tests pin it.
//!
//! Fully deterministic over the virtual clock: identical parameters give
//! identical statistics, which the embedded tests also assert.

use bytes::Bytes;
use placeless_cache::{
    CacheConfig, ConflictHook, ConflictResolution, DocumentCache, MergePolicy, WriteJournal,
    WriteMode,
};
use placeless_core::id::{DocumentId, UserId};
use placeless_core::op::DocOp;
use placeless_core::space::DocumentSpace;
use placeless_repository::{FsProvider, MemFs};
use placeless_simenv::{FaultPlan, Instant, LatencyModel, Link, StableStore, VirtualClock};
use std::sync::Arc;

/// How concurrent edits to one document are reconciled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeMode {
    /// Typed ops + [`MergePolicy`]: conflicts rebase, nobody loses.
    OpMerge,
    /// Full-body writes, conflicts overwritten (the PR-4 default).
    KeepMine,
    /// Full-body writes, conflicted recovery records dropped.
    KeepTheirs,
}

impl MergeMode {
    /// Short label for tables and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            MergeMode::OpMerge => "op-merge",
            MergeMode::KeepMine => "keep-mine",
            MergeMode::KeepTheirs => "keep-theirs",
        }
    }

    /// All modes, in report order.
    pub const ALL: [MergeMode; 3] = [
        MergeMode::OpMerge,
        MergeMode::KeepMine,
        MergeMode::KeepTheirs,
    ];
}

/// Scenario parameters.
#[derive(Debug, Clone, Copy)]
pub struct MergeParams {
    /// Edits each writer issues before the crash.
    pub edits_phase1: u64,
    /// Edits each writer issues between recovery and the partition.
    pub edits_phase2: u64,
    /// Virtual time between consecutive edits, in µs.
    pub edit_gap_micros: u64,
    /// Scheduled partition window start (virtual µs).
    pub partition_from: u64,
    /// Scheduled partition window end (heal time, virtual µs).
    pub partition_until: u64,
    /// Bytes the crash tears off Alice's in-flight journal append.
    pub torn_tail_bytes: u64,
    /// Seed for the link and the fault plan.
    pub seed: u64,
}

impl Default for MergeParams {
    fn default() -> Self {
        Self {
            edits_phase1: 6,
            edits_phase2: 4,
            edit_gap_micros: 1_000,
            partition_from: 150_000,
            partition_until: 250_000,
            torn_tail_bytes: 9,
            seed: 11,
        }
    }
}

/// One mode's outcome under the shared crash + partition schedule.
#[derive(Debug, Clone)]
pub struct MergeResult {
    /// The resolution mode this row ran under.
    pub mode: MergeMode,
    /// Edits the application saw acknowledged across both writers (the
    /// edit in flight at the crash tick is *not* acknowledged).
    pub acknowledged: u64,
    /// Acknowledged edits absent from the origin's final content.
    pub lost: u64,
    /// Conflicts resolved by op rebase, summed over both caches.
    pub conflicts_merged: u64,
    /// Individual ops re-applied onto a newer base, both caches.
    pub merge_rebases: u64,
    /// Journal records Alice's recovery replayed.
    pub replayed: u64,
    /// The origin's final content (for the determinism assertions).
    pub final_content: String,
}

/// One writer's half of the workload: a user, a cache with its own
/// journal, the local buffer (used by the full-body modes), and the
/// ledger of acknowledged edit tokens.
struct Writer {
    user: UserId,
    cache: Arc<DocumentCache>,
    buffer: String,
    acked: Vec<String>,
}

impl Writer {
    /// Re-reads the document through the cache into the local buffer —
    /// what an editor does on open (and re-open, after a crash).
    fn reload(&mut self, doc: DocumentId) {
        let bytes = self.cache.read(self.user, doc).expect("read succeeds");
        self.buffer = String::from_utf8(bytes.to_vec()).expect("utf-8 content");
    }

    /// Issues one edit and records its acknowledgment. Op-merge appends
    /// a typed op; the binary modes write the whole buffer back.
    fn edit(&mut self, doc: DocumentId, mode: MergeMode, token: &str) {
        self.buffer.push_str(token);
        match mode {
            MergeMode::OpMerge => self
                .cache
                .write_op(self.user, doc, DocOp::Append(Bytes::from(token.to_owned())))
                .expect("op write buffers"),
            MergeMode::KeepMine | MergeMode::KeepTheirs => self
                .cache
                .write(self.user, doc, self.buffer.as_bytes())
                .expect("write-back buffers"),
        }
        self.acked.push(token.to_owned());
    }
}

/// Runs one mode against the scripted crash + partition schedule.
pub fn run_one(mode: MergeMode, params: MergeParams) -> MergeResult {
    let alice = UserId(1);
    let bob = UserId(2);
    let clock = VirtualClock::new();
    let space = DocumentSpace::with_middleware_cost(clock.clone(), LatencyModel::FREE);
    let fs = MemFs::new(clock.clone());
    let link = Link::new(1_000, 10_000_000, 0.0, params.seed);
    link.set_fault_plan(
        FaultPlan::builder(params.seed)
            .partition(params.partition_from, params.partition_until)
            .build(),
    );
    fs.create("/srv/shared", "seed;");
    let doc = space.create_document(alice, FsProvider::new(fs.clone(), "/srv/shared", link));
    space.add_reference(bob, doc).expect("doc exists");

    let config = |journal: WriteJournal| {
        let builder = CacheConfig::builder()
            .local_latency(LatencyModel::FREE)
            .write_mode(WriteMode::Back)
            .shards(1)
            .journal(journal);
        match mode {
            MergeMode::OpMerge => builder.merge(MergePolicy::new()),
            MergeMode::KeepMine | MergeMode::KeepTheirs => builder,
        }
        .build()
    };
    let hook: Option<ConflictHook> = match mode {
        MergeMode::OpMerge | MergeMode::KeepMine => None,
        MergeMode::KeepTheirs => Some(Arc::new(|_| ConflictResolution::KeepTheirs)),
    };

    let medium_a = StableStore::new();
    let medium_b = StableStore::new();
    let mut a = Writer {
        user: alice,
        cache: DocumentCache::new(space.clone(), config(WriteJournal::new(medium_a.clone()))),
        buffer: String::new(),
        acked: Vec::new(),
    };
    let mut b = Writer {
        user: bob,
        cache: DocumentCache::new(space.clone(), config(WriteJournal::new(medium_b.clone()))),
        buffer: String::new(),
        acked: Vec::new(),
    };

    // Phase 1: both writers open the document and edit concurrently.
    a.reload(doc);
    b.reload(doc);
    for i in 0..params.edits_phase1 {
        clock.advance(params.edit_gap_micros);
        a.edit(doc, mode, &format!("A{i};"));
        b.edit(doc, mode, &format!("B{i};"));
    }
    // Bob saves; Alice crashes mid-edit. Her in-flight journal append is
    // torn, so that one edit was never acknowledged — losing it is
    // correct in every mode.
    let _ = b.cache.flush().expect("healthy origin");
    let before = medium_a.len();
    a.buffer.push_str("A-torn;");
    match mode {
        MergeMode::OpMerge => a
            .cache
            .write_op(alice, doc, DocOp::Append(Bytes::from("A-torn;")))
            .expect("op write buffers"),
        _ => a
            .cache
            .write(alice, doc, a.buffer.as_bytes())
            .expect("write-back buffers"),
    }
    let in_flight = medium_a.len() - before;
    if in_flight > 1 {
        medium_a.tear_tail(params.torn_tail_bytes.clamp(1, in_flight - 1));
    }
    drop(a.cache); // the crash: Alice's in-memory state dies

    // Restart: reopen Alice's journal over the surviving medium and
    // replay it. The origin has Bob's edits now, so every replayed
    // record conflicts; the mode decides who survives.
    let (journal_a, _) = WriteJournal::open(medium_a);
    let (recovered, recovery) =
        DocumentCache::recover(space.clone(), config(journal_a), hook.clone());
    a.cache = recovered;
    let _ = a.cache.flush().expect("healthy origin");

    // Phase 2: both writers reload and keep editing; a partition then
    // isolates the origin. Bob tries to save inside the window (his
    // entries park), Alice saves after the heal, Bob's retry lands last.
    clock.advance_to(Instant(params.partition_from - 20_000));
    a.reload(doc);
    b.reload(doc);
    for i in 0..params.edits_phase2 {
        clock.advance(params.edit_gap_micros);
        a.edit(doc, mode, &format!("a{i};"));
        b.edit(doc, mode, &format!("b{i};"));
    }
    clock.advance_to(Instant(params.partition_from + 1_000));
    let _ = b.cache.flush().expect("flush itself runs; entries park");
    clock.advance_to(Instant(params.partition_until + 1_000));
    let _ = a.cache.flush().expect("healed origin");
    let _ = b.cache.flush().expect("healed origin");

    let final_bytes = fs.read("/srv/shared").expect("file exists");
    let final_content = String::from_utf8(final_bytes.to_vec()).expect("utf-8 content");
    let lost = a
        .acked
        .iter()
        .chain(b.acked.iter())
        .filter(|token| !final_content.contains(token.as_str()))
        .count() as u64;
    let stats_a = a.cache.stats();
    let stats_b = b.cache.stats();
    MergeResult {
        mode,
        acknowledged: (a.acked.len() + b.acked.len()) as u64,
        lost,
        conflicts_merged: stats_a.conflicts_merged + stats_b.conflicts_merged,
        merge_rebases: stats_a.merge_rebases + stats_b.merge_rebases,
        replayed: recovery.replayed,
        final_content,
    }
}

/// Runs every mode against the same schedule, in [`MergeMode::ALL`]
/// order.
pub fn sweep(params: MergeParams) -> Vec<MergeResult> {
    MergeMode::ALL
        .iter()
        .map(|&mode| run_one(mode, params))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_merge_loses_no_acknowledged_edit() {
        let r = run_one(MergeMode::OpMerge, MergeParams::default());
        assert!(r.acknowledged > 0);
        assert_eq!(r.lost, 0, "op merge must keep every acknowledged edit");
        assert!(r.replayed > 0, "recovery replayed Alice's journal");
        assert!(
            r.conflicts_merged > 0,
            "conflicts were rebased, not dropped"
        );
        assert!(r.merge_rebases > 0);
        assert!(
            !r.final_content.contains("A-torn;"),
            "the torn in-flight edit was never acknowledged"
        );
    }

    #[test]
    fn binary_modes_lose_acknowledged_edits() {
        for mode in [MergeMode::KeepMine, MergeMode::KeepTheirs] {
            let r = run_one(mode, MergeParams::default());
            assert!(
                r.lost >= 1,
                "{} must lose at least one acknowledged edit, lost {}",
                mode.label(),
                r.lost
            );
            assert_eq!(r.conflicts_merged, 0, "no op rebase without the policy");
        }
    }

    #[test]
    fn identical_params_identical_results() {
        let params = MergeParams::default();
        for mode in MergeMode::ALL {
            let x = run_one(mode, params);
            let y = run_one(mode, params);
            assert_eq!(
                (
                    x.acknowledged,
                    x.lost,
                    x.conflicts_merged,
                    x.merge_rebases,
                    x.replayed
                ),
                (
                    y.acknowledged,
                    y.lost,
                    y.conflicts_merged,
                    y.merge_rebases,
                    y.replayed
                ),
                "{} must be deterministic",
                mode.label()
            );
            assert_eq!(x.final_content, y.final_content);
        }
    }
}
