//! Prints the paper's evaluation tables (and the future-work ablations)
//! from the simulated substrate.
//!
//! ```text
//! cargo run -p placeless-bench --bin experiments            # everything
//! cargo run -p placeless-bench --bin experiments -- table1  # one experiment
//! ```
//!
//! Experiments: `table1`, `notifier-verifier`, `replacement`, `sharing`,
//! `consistency`, `qos`, `collections`, `chain`, `placement`,
//! `revalidation`, `scale`, `fault`, `stage`, `crash`, `load`, `merge`,
//! `overload`.
//!
//! The `stage`, `crash`, `load`, `merge`, and `overload` experiments
//! additionally write `BENCH_stage.json` / `BENCH_crash.json` /
//! `BENCH_load.json` / `BENCH_merge.json` / `BENCH_overload.json` next to
//! the working directory so their numbers are machine-readable run over
//! run. The `load` experiment honours `E_LOAD_USERS` / `E_LOAD_DOCS` /
//! `E_LOAD_OPS` / `E_LOAD_THREADS` overrides (and `E_LOAD_WMIX_WRITES` /
//! `E_LOAD_WMIX_DOCS` / `E_LOAD_WMIX_FLUSH_EVERY` for the write-mix flush
//! smoke); the `overload` experiment honours `E_OVERLOAD_THREADS` /
//! `E_OVERLOAD_EVENTS` / `E_OVERLOAD_INTENSITY` /
//! `E_OVERLOAD_WALL_MICROS` for reduced CI smokes.

use placeless_bench::{
    chain, collections, consistency, crash, fault, load, merge, nv, overload, placement, qos,
    replacement, revalidation, scale, sharing, stage, table1,
};
use placeless_cache::ALL_POLICIES;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty();
    let want = |name: &str| all || args.iter().any(|a| a == name);

    if want("table1") {
        run_table1();
    }
    if want("notifier-verifier") {
        run_nv();
    }
    if want("replacement") {
        run_replacement();
    }
    if want("sharing") {
        run_sharing();
    }
    if want("consistency") {
        run_consistency();
    }
    if want("qos") {
        run_qos();
    }
    if want("collections") {
        run_collections();
    }
    if want("chain") {
        run_chain();
    }
    if want("placement") {
        run_placement();
    }
    if want("revalidation") {
        run_revalidation();
    }
    if want("scale") {
        run_scale();
    }
    if want("fault") {
        run_fault();
    }
    if want("stage") {
        run_stage();
    }
    if want("crash") {
        run_crash();
    }
    if want("load") {
        run_load();
    }
    if want("merge") {
        run_merge();
    }
    if want("overload") {
        run_overload();
    }
}

fn run_merge() {
    let params = merge::MergeParams::default();
    println!("== E-MERGE: op-based multi-writer merge across crash + partition ==\n");
    println!(
        "two writers, {}+{} edits each, crash after phase 1, partition [{:.0}ms, {:.0}ms)\n",
        params.edits_phase1,
        params.edits_phase2,
        params.partition_from as f64 / 1_000.0,
        params.partition_until as f64 / 1_000.0
    );
    println!(
        "{:<12} {:>8} {:>8} {:>10} {:>10} {:>10}",
        "mode", "acked", "lost", "merged", "rebases", "replayed"
    );
    let results = merge::sweep(params);
    for r in &results {
        println!(
            "{:<12} {:>8} {:>8} {:>10} {:>10} {:>10}",
            r.mode.label(),
            r.acknowledged,
            r.lost,
            r.conflicts_merged,
            r.merge_rebases,
            r.replayed
        );
    }
    println!("\n(op-merge rebases every conflicted edit onto the origin's current content —");
    println!(" zero acknowledged edits lost; the binary modes pick a side and lose the other)\n");

    let json = merge_json(params, &results);
    match std::fs::write("BENCH_merge.json", &json) {
        Ok(()) => println!("wrote BENCH_merge.json\n"),
        Err(e) => eprintln!("could not write BENCH_merge.json: {e}\n"),
    }
}

/// Hand-formats the E-MERGE results as JSON (no serde in the tree).
fn merge_json(params: merge::MergeParams, results: &[merge::MergeResult]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"merge\",\n");
    out.push_str(&format!(
        "  \"params\": {{\"edits_phase1\": {}, \"edits_phase2\": {}, \
         \"edit_gap_micros\": {}, \"partition_from\": {}, \"partition_until\": {}, \
         \"torn_tail_bytes\": {}, \"seed\": {}}},\n",
        params.edits_phase1,
        params.edits_phase2,
        params.edit_gap_micros,
        params.partition_from,
        params.partition_until,
        params.torn_tail_bytes,
        params.seed
    ));
    out.push_str("  \"runs\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"acknowledged\": {}, \"lost\": {}, \
             \"conflicts_merged\": {}, \"merge_rebases\": {}, \"replayed\": {}}}{}\n",
            r.mode.label(),
            r.acknowledged,
            r.lost,
            r.conflicts_merged,
            r.merge_rebases,
            r.replayed,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn run_overload() {
    let params = overload::OverloadParams::default().from_env();
    println!(
        "== E-OVERLOAD: {}x burst over saturation ({} + {} + {} reads, {} base threads) ==\n",
        params.burst_intensity,
        params.sat_events,
        params.burst_events,
        params.recover_events,
        params.base_threads
    );
    println!(
        "service {} us virtual / {} us wall per fetch, deadline {} us, SLO {} us\n",
        params.service_virtual_micros,
        params.service_wall_micros,
        params.deadline_micros,
        params.slo_micros
    );
    let cells = overload::run_overload(params);
    for cell in &cells {
        println!(
            "{}:",
            if cell.protected {
                "protected (deadlines + overload control)"
            } else {
                "unprotected (overload: None)"
            }
        );
        println!(
            "  {:<12} {:>5} {:>8} {:>9} {:>6} {:>8} {:>10} {:>12}",
            "phase", "x", "offered", "admitted", "shed", "on-time", "p99v us", "goodput/s"
        );
        for p in &cell.phases {
            println!(
                "  {:<12} {:>5} {:>8} {:>9} {:>6} {:>8} {:>10} {:>12.0}",
                p.name,
                p.intensity,
                p.offered,
                p.admitted,
                p.shed,
                p.on_time,
                p.p99_virtual_micros,
                p.goodput()
            );
        }
        println!(
            "  retained {:.0}% of saturation goodput; sheds fg/refresh/prefetch \
             {}/{}/{}; brownout shifts {}\n",
            cell.retained() * 100.0,
            cell.stats.sheds_foreground,
            cell.stats.sheds_refresh,
            cell.stats.sheds_prefetch,
            cell.stats.brownout_shifts
        );
    }
    println!("(the protected cell trades explicit sheds for bounded latency; the");
    println!(" unprotected cell admits everything and lets queueing blow the SLO)\n");

    let json = overload_json(params, &cells);
    match std::fs::write("BENCH_overload.json", &json) {
        Ok(()) => println!("wrote BENCH_overload.json\n"),
        Err(e) => eprintln!("could not write BENCH_overload.json: {e}\n"),
    }
}

/// Hand-formats the E-OVERLOAD results as JSON (no serde in the tree).
fn overload_json(params: overload::OverloadParams, cells: &[overload::CellResult]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"overload\",\n");
    out.push_str(&format!(
        "  \"params\": {{\"base_threads\": {}, \"sat_events\": {}, \"burst_events\": {}, \
         \"recover_events\": {}, \"burst_intensity\": {}, \"service_virtual_micros\": {}, \
         \"service_wall_micros\": {}, \"deadline_micros\": {}, \"slo_micros\": {}, \
         \"seed\": {}}},\n",
        params.base_threads,
        params.sat_events,
        params.burst_events,
        params.recover_events,
        params.burst_intensity,
        params.service_virtual_micros,
        params.service_wall_micros,
        params.deadline_micros,
        params.slo_micros,
        params.seed
    ));
    out.push_str("  \"cells\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"protected\": {}, \"retained\": {:.4},\n",
            cell.protected,
            cell.retained()
        ));
        out.push_str(&format!(
            "     \"sheds_foreground\": {}, \"sheds_refresh\": {}, \"sheds_prefetch\": {}, \
             \"brownout_shifts\": {},\n",
            cell.stats.sheds_foreground,
            cell.stats.sheds_refresh,
            cell.stats.sheds_prefetch,
            cell.stats.brownout_shifts
        ));
        out.push_str("     \"phases\": [\n");
        for (j, p) in cell.phases.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"name\": \"{}\", \"intensity\": {}, \"offered\": {}, \
                 \"admitted\": {}, \"shed\": {}, \"on_time\": {}, \
                 \"p99_virtual_micros\": {}, \"goodput_per_virtual_sec\": {:.2}}}{}\n",
                p.name,
                p.intensity,
                p.offered,
                p.admitted,
                p.shed,
                p.on_time,
                p.p99_virtual_micros,
                p.goodput(),
                if j + 1 == cell.phases.len() { "" } else { "," }
            ));
        }
        out.push_str(&format!(
            "     ]}}{}\n",
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn run_load() {
    let params = load::LoadParams::default().from_env();
    println!(
        "== E-LOAD: trace-driven load ({} users, {} docs, {} threads x {} ops, {:.0}% writes) ==\n",
        params.users,
        params.documents,
        params.threads,
        params.ops_per_thread,
        params.write_fraction * 100.0
    );
    println!(
        "{:<8} {:>12} {:>10} {:>10} {:>8} {:>9} {:>10} {:>9} {:>9}",
        "shards", "reads/sec", "p50 us", "p99 us", "hit %", "partial", "coalesced", "stale", "peak"
    );
    let results = load::sweep(16, params);
    for r in &results {
        println!(
            "{:<8} {:>12.0} {:>10.2} {:>10.2} {:>8.1} {:>9} {:>10} {:>9} {:>9}",
            r.shards,
            r.reads_per_sec(),
            r.p50_nanos as f64 / 1_000.0,
            r.p99_nanos as f64 / 1_000.0,
            r.hit_frac() * 100.0,
            r.class(load::HitClass::PartialHit),
            r.class(load::HitClass::CoalescedWait),
            r.class(load::HitClass::StaleServed),
            r.stats.inflight_peak
        );
    }
    println!("\n(the single-shard row is the global-lock design; the sharded cache must");
    println!(" sustain more reads/sec under the same trace — on a single-CPU host the");
    println!(" rows show parity instead)\n");

    let probe = load::coalesce_probe(params.threads.max(2));
    println!(
        "coalesce probe: {} racing cold readers -> {} origin fetch, {} coalesced waits, identical bytes: {}\n",
        probe.threads, probe.provider_fetches, probe.coalesced_waits, probe.identical
    );

    let wmix_params = load::WriteMixParams::default().from_env();
    println!(
        "write mix: {} write-back writes over {} docs, flush every {} (x{} users)",
        wmix_params.writes, wmix_params.documents, wmix_params.flush_every, wmix_params.users
    );
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>11} {:>13} {:>13}",
        "flush mode", "entries", "flushes", "batches", "origin ops", "ops/entry", "flush us"
    );
    let wmix = load::write_mix(wmix_params);
    for r in &wmix {
        println!(
            "{:<12} {:>9} {:>9} {:>9} {:>11} {:>13.2} {:>13}",
            if r.batched { "batched" } else { "per-entry" },
            r.entries_flushed,
            r.flush_calls,
            r.flush_batches,
            r.origin_ops,
            r.ops_per_entry(),
            r.flush_micros
        );
    }
    let amortization = wmix[0].ops_per_entry() / wmix[1].ops_per_entry();
    println!(
        "\n(grouped flushes amortize origin round-trips {amortization:.2}x; write_mix() \
         asserts >= 2x)\n"
    );

    let json = load_json(params, &results, probe, wmix_params, &wmix);
    match std::fs::write("BENCH_load.json", &json) {
        Ok(()) => println!("wrote BENCH_load.json\n"),
        Err(e) => eprintln!("could not write BENCH_load.json: {e}\n"),
    }
}

/// Hand-formats the E-LOAD results as JSON (no serde in the tree).
fn load_json(
    params: load::LoadParams,
    results: &[load::LoadResult],
    probe: load::CoalesceReport,
    wmix_params: load::WriteMixParams,
    wmix: &[load::WriteMixResult],
) -> String {
    let mut out = String::from("{\n  \"experiment\": \"load\",\n");
    out.push_str(&format!(
        "  \"params\": {{\"users\": {}, \"documents\": {}, \"doc_bytes\": {}, \
         \"doc_theta\": {}, \"user_theta\": {}, \"locality\": {}, \"working_set\": {}, \
         \"write_fraction\": {}, \"base_chain\": {}, \"threads\": {}, \
         \"ops_per_thread\": {}, \"seed\": {}}},\n",
        params.users,
        params.documents,
        params.doc_bytes,
        params.doc_theta,
        params.user_theta,
        params.locality,
        params.working_set,
        params.write_fraction,
        params.base_chain,
        params.threads,
        params.ops_per_thread,
        params.seed
    ));
    out.push_str("  \"runs\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"shards\": {}, \"threads\": {}, \"reads\": {}, \"writes\": {}, \
             \"write_errors\": {}, \"wall_micros\": {}, \"reads_per_sec\": {:.0}, \
             \"p50_nanos\": {}, \"p99_nanos\": {}, \"hits\": {}, \"partial_hits\": {}, \
             \"misses\": {}, \"coalesced_waits\": {}, \"stale_served\": {}, \
             \"stage_hits\": {}, \"inflight_peak\": {}}}{}\n",
            r.shards,
            r.threads,
            r.reads,
            r.writes,
            r.write_errors,
            r.wall_micros,
            r.reads_per_sec(),
            r.p50_nanos,
            r.p99_nanos,
            r.class(load::HitClass::Hit),
            r.class(load::HitClass::PartialHit),
            r.class(load::HitClass::Miss),
            r.class(load::HitClass::CoalescedWait),
            r.class(load::HitClass::StaleServed),
            r.stats.stage_hits,
            r.stats.inflight_peak,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"probe\": {{\"threads\": {}, \"provider_fetches\": {}, \
         \"coalesced_waits\": {}, \"identical\": {}, \"inflight_peak\": {}}},\n",
        probe.threads,
        probe.provider_fetches,
        probe.coalesced_waits,
        probe.identical,
        probe.inflight_peak
    ));
    out.push_str("  \"write_mix\": {\n");
    out.push_str(&format!(
        "    \"params\": {{\"users\": {}, \"documents\": {}, \"writes\": {}, \
         \"flush_every\": {}, \"doc_theta\": {}, \"user_theta\": {}, \"seed\": {}}},\n",
        wmix_params.users,
        wmix_params.documents,
        wmix_params.writes,
        wmix_params.flush_every,
        wmix_params.doc_theta,
        wmix_params.user_theta,
        wmix_params.seed
    ));
    out.push_str("    \"runs\": [\n");
    for (i, r) in wmix.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"mode\": \"{}\", \"entries_flushed\": {}, \"flush_calls\": {}, \
             \"flush_batches\": {}, \"batched_writes\": {}, \"origin_ops\": {}, \
             \"ops_per_entry\": {:.4}, \"flush_micros\": {}}}{}\n",
            if r.batched { "batched" } else { "per_entry" },
            r.entries_flushed,
            r.flush_calls,
            r.flush_batches,
            r.batched_writes,
            r.origin_ops,
            r.ops_per_entry(),
            r.flush_micros,
            if i + 1 == wmix.len() { "" } else { "," }
        ));
    }
    out.push_str("    ],\n");
    let amortization = if wmix.len() == 2 {
        wmix[0].ops_per_entry() / wmix[1].ops_per_entry()
    } else {
        0.0
    };
    out.push_str(&format!(
        "    \"round_trip_amortization\": {amortization:.4}\n  }}\n"
    ));
    out.push_str("}\n");
    out
}

fn run_crash() {
    let params = crash::CrashParams::default();
    println!("== E-CRASH: acknowledged-write durability across a scripted crash ==\n");
    println!(
        "crash at {:.1}s of a {:.1}s write timeline, {} docs, {} writes, flush every {}\n",
        params.crash_at_micros as f64 / 1e6,
        (params.writes * params.write_gap_micros) as f64 / 1e6,
        params.docs,
        params.writes,
        params.flush_every
    );
    println!(
        "{:<12} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "mode", "acked", "pre-flush", "lost docs", "replayed", "torn B", "flushes"
    );
    let results = crash::sweep(params);
    for r in &results {
        println!(
            "{:<12} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
            r.label(),
            r.acknowledged,
            r.flushed_before_crash,
            r.lost_docs,
            r.replayed,
            r.torn_bytes,
            r.stats.flushes
        );
    }
    println!("\n(the journal replays every acknowledged-but-unflushed write across the");
    println!(" crash — zero loss; the torn in-flight append was never acknowledged)\n");

    let json = crash_json(params, &results);
    match std::fs::write("BENCH_crash.json", &json) {
        Ok(()) => println!("wrote BENCH_crash.json\n"),
        Err(e) => eprintln!("could not write BENCH_crash.json: {e}\n"),
    }
}

/// Hand-formats the E-CRASH results as JSON (no serde in the tree).
fn crash_json(params: crash::CrashParams, results: &[crash::CrashResult]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"crash\",\n");
    out.push_str(&format!(
        "  \"params\": {{\"docs\": {}, \"writes\": {}, \"write_gap_micros\": {}, \
         \"flush_every\": {}, \"crash_at_micros\": {}, \"torn_tail_bytes\": {}, \
         \"seed\": {}}},\n",
        params.docs,
        params.writes,
        params.write_gap_micros,
        params.flush_every,
        params.crash_at_micros,
        params.torn_tail_bytes,
        params.seed
    ));
    out.push_str("  \"runs\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"journaled\": {}, \"acknowledged\": {}, \"flushed_before_crash\": {}, \
             \"lost_docs\": {}, \"replayed\": {}, \"torn_bytes\": {}, \
             \"journal_appends\": {}, \"journal_replays\": {}, \"writes_parked\": {}, \
             \"flush_retries\": {}, \"write_conflicts\": {}, \"flushes\": {}}}{}\n",
            r.journaled,
            r.acknowledged,
            r.flushed_before_crash,
            r.lost_docs,
            r.replayed,
            r.torn_bytes,
            r.stats.journal_appends,
            r.stats.journal_replays,
            r.stats.writes_parked,
            r.stats.flush_retries,
            r.stats.write_conflicts,
            r.stats.flushes,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn run_stage() {
    let params = stage::StageParams::default();
    println!(
        "== E-STAGE: staged transform plans ({} users, {}-stage base chain, {} ms/stage) ==\n",
        params.users,
        params.base_chain,
        params.per_stage_micros as f64 / 1_000.0
    );
    println!(
        "{:<12} {:>10} {:>14} {:>10} {:>10} {:>10} {:>12}",
        "stage cache", "first ms", "later user ms", "hit ms", "st.hits", "entries", "physical KB"
    );
    let results = stage::sweep(params);
    for r in &results {
        println!(
            "{:<12} {:>10.2} {:>14.2} {:>10.3} {:>10} {:>10} {:>12.1}",
            if r.stage_cache { "on" } else { "off" },
            r.first_user_micros as f64 / 1_000.0,
            r.later_user_mean_micros as f64 / 1_000.0,
            r.repeat_hit_micros as f64 / 1_000.0,
            r.stats.stage_hits,
            r.stage_entries,
            r.physical_bytes as f64 / 1_024.0
        );
    }
    println!("\n(with staging, later users replay only the per-user suffix over the");
    println!(" shared base prefix; the base intermediates are resident exactly once)\n");

    // Acceptance gate: the lease-anchored streaming walk must serve a
    // later user's staged miss at no more than half the pre-lease cost
    // (two middleware hops + provider fetch + the per-user tag stage).
    let pre_lease_micros = 600 + params.fetch_micros + params.tag_micros;
    let on = results
        .iter()
        .find(|r| r.stage_cache)
        .expect("staged run present");
    assert!(
        on.later_user_mean_micros * 2 <= pre_lease_micros,
        "later-user staged read {} us regressed past half the pre-lease path {} us",
        on.later_user_mean_micros,
        pre_lease_micros
    );
    println!(
        "later-user gate: {} us <= {} us / 2 (plan lease + verified root, ok)",
        on.later_user_mean_micros, pre_lease_micros
    );

    // Zero-copy probe: a pass-through chain over a 4 MiB body must hand
    // the same refcounted slice through every stage — no materialization.
    let probe = stage::streaming_passthrough_probe(4 << 20, 3);
    assert!(
        probe.zero_copy,
        "pass-through chain materialized a copy of the body"
    );
    println!(
        "zero-copy probe: {} MiB through {} identity stages, {:.3} ns/byte, output is the input slice",
        probe.body_bytes >> 20,
        probe.chain,
        probe.ns_per_byte
    );

    // Big-document smoke: a 4 MiB live-feed frame through a three-stage
    // chain (uncacheable, nothing retained; asserts internally).
    let smoke = stage::big_doc_smoke(4 << 20);
    println!(
        "big-doc smoke: {} MiB live frame + 3 stages, {} uncacheable reads, {} bytes resident, {:.3} ns/byte\n",
        smoke.frame_bytes >> 20,
        smoke.uncacheable_reads,
        smoke.resident_bytes,
        smoke.ns_per_byte
    );

    let json = stage_json(params, &results);
    match std::fs::write("BENCH_stage.json", &json) {
        Ok(()) => println!("wrote BENCH_stage.json\n"),
        Err(e) => eprintln!("could not write BENCH_stage.json: {e}\n"),
    }
}

/// Hand-formats the E-STAGE results as JSON (no serde in the tree).
fn stage_json(params: stage::StageParams, results: &[stage::StageResult]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"stage\",\n");
    out.push_str(&format!(
        "  \"params\": {{\"users\": {}, \"base_chain\": {}, \"body_bytes\": {}, \
         \"per_stage_micros\": {}, \"tag_micros\": {}, \"fetch_micros\": {}}},\n",
        params.users,
        params.base_chain,
        params.body_bytes,
        params.per_stage_micros,
        params.tag_micros,
        params.fetch_micros
    ));
    out.push_str("  \"runs\": [\n");
    for (i, r) in results.iter().enumerate() {
        let reads = r.stats.hits + r.stats.misses;
        out.push_str(&format!(
            "    {{\"stage_cache\": {}, \"first_user_micros\": {}, \
             \"later_user_mean_micros\": {}, \"repeat_hit_micros\": {}, \
             \"mean_read_micros\": {:.1}, \"stage_hits\": {}, \
             \"stage_partial_hits\": {}, \"stage_hit_rate\": {:.4}, \
             \"stage_entries\": {}, \"stage_bytes\": {}, \
             \"physical_bytes\": {}, \"logical_bytes\": {}}}{}\n",
            r.stage_cache,
            r.first_user_micros,
            r.later_user_mean_micros,
            r.repeat_hit_micros,
            (r.stats.hit_micros + r.stats.miss_micros) as f64 / reads.max(1) as f64,
            r.stats.stage_hits,
            r.stats.stage_partial_hits,
            if r.stats.misses == 0 {
                0.0
            } else {
                r.stats.stage_partial_hits as f64 / r.stats.misses as f64
            },
            r.stage_entries,
            r.stats.stage_bytes,
            r.physical_bytes,
            r.logical_bytes,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn run_fault() {
    println!("== E-FAULT: read availability across a scripted origin outage ==\n");
    let params = fault::FaultParams::default();
    println!(
        "outage: [{:.1}s, {:.1}s) of a {:.1}s timeline, {} docs, {} reads\n",
        params.outage_from as f64 / 1e6,
        params.outage_until as f64 / 1e6,
        (params.reads * params.read_gap_micros) as f64 / 1e6,
        params.docs,
        params.reads
    );
    println!(
        "{:<15} {:>12} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "mode", "availability", "failed", "retries", "trips", "stale", "misses"
    );
    for r in fault::sweep(params) {
        println!(
            "{:<15} {:>11.1}% {:>8} {:>8} {:>8} {:>8} {:>8}",
            r.mode.label(),
            r.availability() * 100.0,
            r.failed,
            r.stats.retries,
            r.stats.breaker_trips,
            r.stats.stale_served,
            r.stats.misses
        );
    }
    println!();
}

fn run_scale() {
    println!("== E-SCALE: sharded-cache read throughput (wall clock, Zipf(0.9) reads) ==\n");
    println!(
        "{:<8} {:<8} {:>14} {:>10} {:>10}",
        "threads", "shards", "reads/sec", "hit %", "speedup"
    );
    let params = scale::ScaleParams::default();
    let shards = 16;
    for &threads in &[1usize, 2, 4, 8, 16] {
        let single = scale::run_one(threads, 1, params);
        let sharded = scale::run_one(threads, shards, params);
        for r in [&single, &sharded] {
            println!(
                "{:<8} {:<8} {:>14.0} {:>10.1} {:>10}",
                r.threads,
                r.shards,
                r.ops_per_sec(),
                r.hit_rate * 100.0,
                if r.shards == 1 {
                    "1.00x".to_string()
                } else {
                    format!("{:.2}x", r.ops_per_sec() / single.ops_per_sec())
                }
            );
        }
        println!();
    }
    println!("(the single-shard rows are the old global-lock design; shards should");
    println!(" scale read throughput with threads while the hit rate stays put —");
    println!(" a single-CPU host will show parity instead of speedup)\n");
}

fn run_revalidation() {
    println!("== E-REVAL: web consistency — TTL vs conditional GET (200 reads, 60 s TTL) ==\n");
    println!(
        "{:<10} {:>12} {:>12} {:>10}",
        "edit rate", "mode", "read ms", "stale %"
    );
    for r in revalidation::sweep(200, &[0.0, 0.05, 0.2, 0.5], 77) {
        println!(
            "{:<10} {:>12} {:>12.3} {:>10.1}",
            r.edit_rate,
            r.mode.label(),
            r.mean_read_micros as f64 / 1_000.0,
            r.stale_frac * 100.0
        );
    }
    println!("\n(the TTL scheme serves stale pages for the whole window after an origin");
    println!(" edit; the revalidating verifier never does, at one RTT per hit)\n");
}

fn run_placement() {
    println!("== E-PLACE: cache placement (8 KiB doc, 30 ms origin, 50 reads) ==\n");
    println!(
        "{:<14} {:>14} {:>14}",
        "placement", "mean read ms", "mean hit ms"
    );
    for r in placement::sweep(50) {
        println!(
            "{:<14} {:>14.3} {:>14.3}",
            r.placement.label(),
            r.mean_read_micros as f64 / 1_000.0,
            r.mean_hit_micros as f64 / 1_000.0
        );
    }
    println!("\n(an application-level cache serves hits at function-call distance; a");
    println!(" server-co-located cache pays a LAN hop per hit but is shared)\n");
}

fn run_collections() {
    println!("== E-COLL: collection prefetch (8 chapters behind a 40 ms store) ==\n");
    println!(
        "{:<10} {:>12} {:>14} {:>12} {:>8}",
        "prefetch", "first ms", "rest mean ms", "total ms", "misses"
    );
    for r in collections::sweep(8, &[0, 3, 16]) {
        println!(
            "{:<10} {:>12.2} {:>14.3} {:>12.2} {:>8}",
            r.prefetch_budget,
            r.first_access_micros as f64 / 1_000.0,
            r.rest_mean_micros as f64 / 1_000.0,
            r.total_micros as f64 / 1_000.0,
            r.misses
        );
    }
    println!("\n(the first miss absorbs the sibling fetches; the rest of the browse is local)\n");
}

fn run_chain() {
    println!("== E-CHAIN: property-chain length vs read latency (2 ms/property) ==\n");
    println!(
        "{:<8} {:>12} {:>10} {:>16}",
        "chain", "no cache ms", "hit ms", "reported cost ms"
    );
    for r in chain::sweep(&[0, 1, 2, 4, 8, 16, 32], 2_000) {
        println!(
            "{:<8} {:>12.2} {:>10.3} {:>16.2}",
            r.chain,
            r.no_cache_micros as f64 / 1_000.0,
            r.hit_micros as f64 / 1_000.0,
            r.reported_cost_micros / 1_000.0
        );
    }
    println!("\n(no-cache latency grows with the chain; hits stay flat — caching hides");
    println!(" active-property execution, the paper's core motivation)\n");
}

fn run_table1() {
    println!("== Table 1: document content access times (simulated ms) ==");
    println!("   (paper: parcweb 1,915 B local; two remote sites 10,883 B / 1,104 B;");
    println!("    shape to match: hit << no-cache, miss ~ no-cache + small overhead)\n");
    let rows = table1::run(25);
    println!(
        "{:<24} {:>8} {:>10} {:>12} {:>10}",
        "original source", "size", "no cache", "cache miss", "cache hit"
    );
    for r in &rows {
        println!(
            "{:<24} {:>8} {:>10.2} {:>12.2} {:>10.3}",
            r.origin,
            r.size,
            r.no_cache_micros as f64 / 1_000.0,
            r.miss_micros as f64 / 1_000.0,
            r.hit_micros as f64 / 1_000.0
        );
    }
    println!(
        "\nshape holds (hit<<no-cache, miss overhead small, remote>>local): {}\n",
        table1::shape_holds(&rows)
    );
}

fn run_nv() {
    println!("== E-NV: notifier vs verifier trade-off (500 reads, tick every 10) ==\n");
    println!(
        "{:<8} {:>10} {:>12} {:>10} {:>12} {:>10}",
        "change", "mechanism", "read ms", "stale %", "consist.ops", "hit %"
    );
    for r in nv::sweep(500, &[0.0, 0.01, 0.05, 0.2, 0.5], 10, 1999) {
        println!(
            "{:<8} {:>10} {:>12.3} {:>10.1} {:>12} {:>10.1}",
            r.change_rate,
            r.mechanism.label(),
            r.mean_read_micros as f64 / 1_000.0,
            r.stale_frac * 100.0,
            r.consistency_ops,
            r.hit_rate * 100.0
        );
    }
    println!("\n(verifier: zero staleness, pays probes on every hit; notifier: stale");
    println!(" between change and tick, pays timer + delivery load middleware-side)\n");
}

fn run_replacement() {
    println!("== E-RP: replacement policies (300 docs, 5000 Zipf(0.8) reads) ==\n");
    let params = replacement::ReplacementParams::default();
    println!(
        "{:<10} {:>8} {:>8} {:>12} {:>10}",
        "capacity", "policy", "hit %", "mean ms", "evictions"
    );
    for frac in [0.02, 0.08, 0.32] {
        for r in replacement::sweep(&ALL_POLICIES, &[frac], params) {
            println!(
                "{:<10} {:>8} {:>8.1} {:>12.2} {:>10}",
                format!("{:.0}%", frac * 100.0),
                r.policy,
                r.hit_rate * 100.0,
                r.mean_access_micros as f64 / 1_000.0,
                r.evictions
            );
        }
        println!();
    }
    println!("(gds should win mean latency by keeping expensive property chains resident)\n");
}

fn run_sharing() {
    println!("== E-SH: content-signature sharing (16 users x 20 docs) ==\n");
    println!(
        "{:<16} {:>14} {:>14} {:>10} {:>12}",
        "identical users", "physical KB", "logical KB", "ratio", "shared fills"
    );
    for r in sharing::sweep(16, 20, &[0.0, 0.25, 0.5, 0.75, 1.0]) {
        println!(
            "{:<16} {:>14.1} {:>14.1} {:>10.2} {:>12}",
            format!("{:.0}%", r.identical_frac * 100.0),
            r.physical_bytes as f64 / 1_024.0,
            r.logical_bytes as f64 / 1_024.0,
            r.savings_ratio(),
            r.shared_fills
        );
    }
    println!("\n(identical property chains store bytes once; per-user transforms cannot)\n");
}

fn run_consistency() {
    println!("== E-CH: the four invalidation causes ==\n");
    for r in consistency::run() {
        println!(
            "  [{}] {:<44} caught by {}",
            if r.consistent { "PASS" } else { "FAIL" },
            r.cause,
            r.mechanism
        );
    }
    println!();
}

fn run_qos() {
    println!("== E-QoS: QoS cost inflation (200 docs, 10% tagged, uniform reads) ==\n");
    println!(
        "{:<8} {:>14} {:>14} {:>12}",
        "policy", "QoS hit %", "plain hit %", "advantage"
    );
    for policy in ["gdsf", "gds", "gd1", "lru"] {
        let r = qos::run_one(policy, 200, 4_000, 3);
        println!(
            "{:<8} {:>14.1} {:>14.1} {:>12.1}",
            r.policy,
            r.qos_hit_rate * 100.0,
            r.plain_hit_rate * 100.0,
            r.advantage() * 100.0
        );
    }
    println!("\n(only the cost-aware policy honors the QoS inflation)\n");
}
