//! Experiment **E-STAGE**: staged transform plans with intermediate-result
//! caching — the partial hit.
//!
//! The paper's central cost is that active properties force per-user
//! versions: every miss re-executes the full transform chain even when two
//! users share an identical base-property prefix. With stage caching on,
//! the compiled [`placeless_core::plan::TransformPlan`] content-addresses
//! each stage's output, so the first reader pays for the base chain once
//! and every later user's miss replays only its per-user reference suffix.
//!
//! The scenario: one document behind a `fetch_micros` provider, a
//! universal base chain of `base_chain` tagging transforms (each charging
//! `per_stage_micros`), and one per-user tagging transform. Every user's
//! rendition is distinct (the per-user tag defeats whole-version sharing),
//! so any saving must come from the staged prefix.

use crate::support::TagProperty;
use bytes::Bytes;
use placeless_cache::{CacheConfig, CacheStats, DocumentCache};
use placeless_core::prelude::*;
use placeless_simenv::trace::lorem_bytes;
use placeless_simenv::VirtualClock;

/// Scenario parameters.
#[derive(Debug, Clone, Copy)]
pub struct StageParams {
    /// Number of users reading the document.
    pub users: usize,
    /// Number of universal (user-independent) base transforms.
    pub base_chain: usize,
    /// Provider body size in bytes.
    pub body_bytes: usize,
    /// Execution cost of each base transform.
    pub per_stage_micros: u64,
    /// Execution cost of the per-user transform.
    pub tag_micros: u64,
    /// Provider fetch latency.
    pub fetch_micros: u64,
}

impl Default for StageParams {
    fn default() -> Self {
        Self {
            users: 4,
            base_chain: 3,
            body_bytes: 4_096,
            per_stage_micros: 2_000,
            tag_micros: 500,
            fetch_micros: 1_000,
        }
    }
}

impl StageParams {
    /// Bytes each `[base-i]` / `[user-u]` marker appends (single-digit
    /// indices).
    pub const MARKER_BYTES: usize = 8;

    /// Size of the `i`-th base stage's output (1-based).
    pub fn base_output_bytes(&self, i: usize) -> usize {
        self.body_bytes + i * Self::MARKER_BYTES
    }

    /// Size of one user's final rendition.
    pub fn final_bytes(&self) -> usize {
        self.base_output_bytes(self.base_chain) + Self::MARKER_BYTES
    }
}

/// The outcome of one run (stage caching on or off).
#[derive(Debug, Clone)]
pub struct StageResult {
    /// Whether intermediate stage outputs were retained.
    pub stage_cache: bool,
    /// The parameters the run used.
    pub params: StageParams,
    /// Cost of the very first read (cold everything).
    pub first_user_micros: u64,
    /// Mean cost of each *later* user's first read — the partial-hit
    /// measurement.
    pub later_user_mean_micros: u64,
    /// Cost of a repeat read by the first user (a whole-version hit).
    pub repeat_hit_micros: u64,
    /// Intermediate stage entries resident at the end.
    pub stage_entries: usize,
    /// Deduplicated content bytes resident.
    pub physical_bytes: u64,
    /// Bytes a share-nothing cache would hold.
    pub logical_bytes: u64,
    /// Full counter snapshot.
    pub stats: CacheStats,
}

/// Runs the scenario once with stage caching `on` or off.
pub fn run_one(stage_cache: bool, params: StageParams) -> StageResult {
    assert!(params.users >= 2, "need a second user for the partial hit");
    assert!(params.users < 10 && params.base_chain < 10, "single digits");
    let clock = VirtualClock::new();
    let space = DocumentSpace::new(clock.clone());
    let provider = MemoryProvider::new(
        "doc",
        lorem_bytes(7, params.body_bytes),
        params.fetch_micros,
    );
    let doc = space.create_document(UserId(0), provider);
    for i in 0..params.base_chain {
        space
            .attach_active(
                Scope::Universal,
                doc,
                TagProperty::new(&format!("base-{i}"), params.per_stage_micros),
            )
            .expect("attach base");
    }
    let users: Vec<UserId> = (1..=params.users as u64).map(UserId).collect();
    for &user in &users {
        space.add_reference(user, doc).expect("reference");
        space
            .attach_active(
                Scope::Personal(user),
                doc,
                TagProperty::new(&format!("user-{}", user.0), params.tag_micros),
            )
            .expect("attach tag");
    }

    let cache = DocumentCache::new(
        space,
        CacheConfig::builder()
            .capacity_bytes(u64::MAX)
            .stage_cache(stage_cache)
            .build(),
    );

    let t0 = clock.now();
    let _ = cache.read(users[0], doc).expect("first read");
    let first_user_micros = clock.now().since(t0);

    let t1 = clock.now();
    for &user in &users[1..] {
        let _ = cache.read(user, doc).expect("later read");
    }
    let later_user_mean_micros = clock.now().since(t1) / (params.users as u64 - 1);

    let t2 = clock.now();
    let _ = cache.read(users[0], doc).expect("repeat read");
    let repeat_hit_micros = clock.now().since(t2);

    let (physical_bytes, logical_bytes) = cache.resident_bytes();
    StageResult {
        stage_cache,
        params,
        first_user_micros,
        later_user_mean_micros,
        repeat_hit_micros,
        stage_entries: cache.stage_entry_count(),
        physical_bytes,
        logical_bytes,
        stats: cache.stats(),
    }
}

/// Runs the off/on pair.
pub fn sweep(params: StageParams) -> Vec<StageResult> {
    vec![run_one(false, params), run_one(true, params)]
}

/// Result of the zero-copy pass-through probe.
#[derive(Debug, Clone, Copy)]
pub struct PassthroughProbe {
    /// Body size driven through the chain.
    pub body_bytes: usize,
    /// Chain depth (all identity stages).
    pub chain: usize,
    /// The final output shares the input allocation: no stage copied.
    pub zero_copy: bool,
    /// Wall-clock nanoseconds per body byte for the full chain walk.
    pub ns_per_byte: f64,
}

/// Drives one body through a pass-through (identity) chain with the
/// streaming executor and checks the walk never materializes a copy: the
/// final output *is* the input allocation (same pointer, same length), so
/// peak residency is one body regardless of chain depth — strictly below
/// the chunk-size × depth bound a chunk-buffering executor would need.
pub fn streaming_passthrough_probe(body_bytes: usize, chain: usize) -> PassthroughProbe {
    use placeless_core::plan::StagePipeline;

    let clock = VirtualClock::new();
    let space = DocumentSpace::new(clock.clone());
    let body = lorem_bytes(11, body_bytes);
    let provider = MemoryProvider::new("doc", body.clone(), 0);
    let user = UserId(1);
    let doc = space.create_document(user, provider);
    for i in 0..chain {
        space
            .attach_active(
                Scope::Universal,
                doc,
                crate::support::DelayProperty::new(i as u64),
            )
            .expect("attach identity stage");
    }
    let plan = space.read_plan(user, doc).expect("plan");
    let input = Bytes::from(body);
    let sig = md5(&input);
    let started = std::time::Instant::now();
    let mut report = plan.seed_report(&clock);
    let mut pipeline = StagePipeline::from_root(&plan, input.clone(), sig);
    for index in 0..plan.len() {
        pipeline.execute(&clock, index, &mut report).expect("stage");
    }
    let (out, out_sig) = pipeline.finish();
    let elapsed = started.elapsed();
    let out = out.expect("pipeline bytes");
    let zero_copy =
        out.len() == input.len() && out.as_ptr() == input.as_ptr() && out_sig == Some(sig);
    PassthroughProbe {
        body_bytes,
        chain,
        zero_copy,
        ns_per_byte: elapsed.as_nanos() as f64 / body_bytes.max(1) as f64,
    }
}

/// Result of the big-document live-feed smoke.
#[derive(Debug, Clone, Copy)]
pub struct BigDocSmoke {
    /// Live-feed frame size.
    pub frame_bytes: usize,
    /// One rendition's size (frame plus the three stage markers).
    pub out_bytes: usize,
    /// Uncacheable reads counted (both reads must forward to the feed).
    pub uncacheable_reads: u64,
    /// Physical bytes resident afterwards (must be zero).
    pub resident_bytes: u64,
    /// Wall-clock nanoseconds per output byte across both reads.
    pub ns_per_byte: f64,
}

/// Streams a multi-MiB live-feed frame through a three-stage tagging
/// chain. The feed votes `Uncacheable` and offers no verifier, so every
/// read must reach the repository, re-run the full chain, and leave
/// nothing resident — the worst case for the streaming executor, which
/// still must not regress correctness: both renditions carry the chain's
/// markers in order, and consecutive frames differ.
pub fn big_doc_smoke(frame_bytes: usize) -> BigDocSmoke {
    use placeless_repository::{LiveFeed, LiveFeedProvider};
    use placeless_simenv::{Link, LinkClass};

    let clock = VirtualClock::new();
    let space = DocumentSpace::new(clock.clone());
    let feed = LiveFeed::new("cam", frame_bytes, 9);
    let provider = LiveFeedProvider::new(feed, Link::of_class(LinkClass::Lan, 0));
    let user = UserId(1);
    let doc = space.create_document(user, provider);
    for i in 0..3 {
        space
            .attach_active(
                Scope::Universal,
                doc,
                TagProperty::new(&format!("big-{i}"), 10),
            )
            .expect("attach tag");
    }
    let cache = DocumentCache::new(
        space,
        CacheConfig::builder()
            .capacity_bytes(u64::MAX)
            .stage_cache(true)
            .build(),
    );
    let started = std::time::Instant::now();
    let first = cache.read(user, doc).expect("first read");
    let second = cache.read(user, doc).expect("second read");
    let elapsed = started.elapsed();
    let markers = b"[big-0][big-1][big-2]";
    for rendition in [&first, &second] {
        assert_eq!(
            rendition.len(),
            frame_bytes + markers.len(),
            "rendition must be the frame plus the three markers"
        );
        assert!(
            rendition.ends_with(markers),
            "stage markers must appear in chain order"
        );
    }
    assert_ne!(first, second, "live frames must differ read to read");
    let stats = cache.stats();
    assert_eq!(stats.uncacheable_reads, 2, "both reads forward to the feed");
    let (resident_bytes, _) = cache.resident_bytes();
    assert_eq!(
        resident_bytes, 0,
        "uncacheable content must not be retained"
    );
    BigDocSmoke {
        frame_bytes,
        out_bytes: frame_bytes + markers.len(),
        uncacheable_reads: stats.uncacheable_reads,
        resident_bytes,
        ns_per_byte: elapsed.as_nanos() as f64 / (2 * (frame_bytes + markers.len())) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance criterion: with stage caching on, a later user's
    /// read replays only the per-user suffix, so it costs less than the
    /// full-chain re-execution the plain cache pays.
    #[test]
    fn later_users_pay_only_the_reference_suffix() {
        let params = StageParams::default();
        let off = run_one(false, params);
        let on = run_one(true, params);

        // Plain cache: every user's first read re-executes the whole chain.
        let full_chain = params.fetch_micros + params.base_chain as u64 * params.per_stage_micros;
        assert!(off.later_user_mean_micros > full_chain);

        // Staged cache: later users skip the base chain entirely.
        assert!(
            on.later_user_mean_micros < off.later_user_mean_micros,
            "partial hit {} vs full re-execution {}",
            on.later_user_mean_micros,
            off.later_user_mean_micros
        );
        assert!(
            on.later_user_mean_micros
                < full_chain - (params.base_chain as u64 - 1) * params.per_stage_micros,
            "later read {} did not skip the base stages",
            on.later_user_mean_micros
        );
        // The first read still pays for everything.
        assert!(on.first_user_micros > full_chain);
        // Whole-version hits are unaffected either way.
        assert!(on.repeat_hit_micros < params.fetch_micros);
    }

    /// The other acceptance half: the shared base-stage bytes are resident
    /// exactly once across users.
    #[test]
    fn base_stage_bytes_resident_exactly_once() {
        let params = StageParams::default();
        let off = run_one(false, params);
        let on = run_one(true, params);

        // Every user's rendition is distinct, so the plain cache holds one
        // copy per user and nothing else.
        let finals = params.users as u64 * params.final_bytes() as u64;
        assert_eq!(off.physical_bytes, finals);
        assert_eq!(off.stage_entries, 0);

        // The staged cache adds each base intermediate once — not once per
        // user — and each user's tag-stage output shares bytes with that
        // user's final version entry.
        let base_once: u64 = (1..=params.base_chain)
            .map(|i| params.base_output_bytes(i) as u64)
            .sum();
        assert_eq!(on.physical_bytes, finals + base_once);
        assert_eq!(
            on.stage_entries,
            params.base_chain + params.users,
            "one entry per base stage plus one per user tag stage"
        );
        assert_eq!(on.stats.stage_bytes, base_once + finals);
    }

    /// Stage counters reflect the partial hits.
    #[test]
    fn stage_counters_track_partial_hits() {
        let params = StageParams::default();
        let on = run_one(true, params);
        // Each later user hits every base stage.
        assert_eq!(
            on.stats.stage_hits,
            (params.users as u64 - 1) * params.base_chain as u64
        );
        assert_eq!(on.stats.stage_partial_hits, params.users as u64 - 1);
        // The repeat read was a whole-version hit, not a stage walk.
        assert_eq!(on.stats.hits, 1);
        assert_eq!(on.stats.misses, params.users as u64);
    }

    /// With stage caching off the staged machinery is inert.
    #[test]
    fn stage_cache_off_is_inert() {
        let off = run_one(false, StageParams::default());
        assert_eq!(off.stats.stage_hits, 0);
        assert_eq!(off.stats.stage_partial_hits, 0);
        assert_eq!(off.stats.stage_bytes, 0);
    }
}
