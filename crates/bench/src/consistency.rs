//! Experiment **E-CH**: the four invalidation causes (§3 Cache
//! Consistency).
//!
//! Scripted mutations exercise each cause and record which mechanism —
//! notifier or verifier — restored consistency:
//!
//! 1. source modified (a) through Placeless → notifier, (b) at the origin,
//!    outside Placeless control → provider verifier;
//! 2. active properties added / deleted / modified → notifier;
//! 3. property order changed → notifier;
//! 4. external information a property depends on changed → epoch verifier.

use placeless_cache::{CacheConfig, DocumentCache};
use placeless_core::prelude::*;
use placeless_properties::{ContentWriteNotifier, PropertyChangeNotifier, Translate};
use placeless_proplang::{ExtEnv, ScriptProperty};
use placeless_simenv::VirtualClock;
use std::sync::Arc;

/// One row of the consistency matrix.
#[derive(Debug, Clone)]
pub struct CauseResult {
    /// The invalidation cause exercised.
    pub cause: &'static str,
    /// Which mechanism caught it.
    pub mechanism: &'static str,
    /// Whether the cache returned fresh content afterwards.
    pub consistent: bool,
}

struct Rig {
    space: Arc<DocumentSpace>,
    cache: Arc<DocumentCache>,
    provider: Arc<MemoryProvider>,
    feed: Arc<SimpleExternal>,
    doc: DocumentId,
    user: UserId,
}

fn rig() -> Rig {
    let user = UserId(1);
    let clock = VirtualClock::new();
    let space = DocumentSpace::new(clock.clone());
    let provider = MemoryProvider::new("doc", "base text | ", 1_000);
    let doc = space.create_document(user, provider.clone());

    let feed = SimpleExternal::new("feed", "f0");
    let env = ExtEnv::new();
    env.add(feed.clone());
    let embed = ScriptProperty::compile("embed", "@watch_ext(\"feed\")\nappend_ext(\"feed\")", env)
        .expect("valid");
    space
        .attach_active(Scope::Personal(user), doc, embed)
        .expect("attach");
    space
        .attach_active(Scope::Universal, doc, ContentWriteNotifier::any())
        .expect("attach");
    space
        .attach_active(Scope::Universal, doc, PropertyChangeNotifier::any())
        .expect("attach");

    let cache = DocumentCache::new(space.clone(), CacheConfig::default());
    Rig {
        space,
        cache,
        provider,
        feed,
        doc,
        user,
    }
}

/// Runs all causes and returns the matrix.
pub fn run() -> Vec<CauseResult> {
    let mut results = Vec::new();

    // Cause 1a: source modified through Placeless.
    {
        let r = rig();
        let _ = r.cache.read(r.user, r.doc).expect("warm");
        r.space
            .write_document(r.user, r.doc, b"updated through placeless | ")
            .expect("write");
        let fresh = r.cache.read(r.user, r.doc).expect("read");
        results.push(CauseResult {
            cause: "1a source modified (through Placeless)",
            mechanism: "notifier",
            consistent: fresh.starts_with(b"updated through placeless"),
        });
    }

    // Cause 1b: source modified outside Placeless control.
    {
        let r = rig();
        let _ = r.cache.read(r.user, r.doc).expect("warm");
        r.provider.set_out_of_band("edited at the origin | ");
        let fresh = r.cache.read(r.user, r.doc).expect("read");
        results.push(CauseResult {
            cause: "1b source modified (outside Placeless)",
            mechanism: "verifier",
            consistent: fresh.starts_with(b"edited at the origin"),
        });
    }

    // Cause 2: property added.
    {
        let r = rig();
        let _ = r.cache.read(r.user, r.doc).expect("warm");
        r.space
            .attach_active(Scope::Personal(r.user), r.doc, Translate::to("fr"))
            .expect("attach");
        let fresh = r.cache.read(r.user, r.doc).expect("read");
        // "base" is not in the dictionary; "text" isn't either — use the
        // stats instead: the entry was invalidated and refilled.
        let stats = r.cache.stats();
        let _ = fresh;
        results.push(CauseResult {
            cause: "2  property added",
            mechanism: "notifier",
            consistent: stats.notifier_invalidations >= 1 && stats.misses == 2,
        });
    }

    // Cause 2': property removed.
    {
        let r = rig();
        let id = r
            .space
            .attach_active(Scope::Personal(r.user), r.doc, Translate::to("fr"))
            .expect("attach");
        let _ = r.cache.read(r.user, r.doc).expect("warm");
        r.space
            .remove_property(Scope::Personal(r.user), r.doc, id)
            .expect("remove");
        let _ = r.cache.read(r.user, r.doc).expect("read");
        let stats = r.cache.stats();
        results.push(CauseResult {
            cause: "2' property removed",
            mechanism: "notifier",
            consistent: stats.notifier_invalidations >= 1 && stats.misses == 2,
        });
    }

    // Cause 3: property order changed.
    {
        let r = rig();
        let props = r
            .space
            .list_properties(Scope::Personal(r.user), r.doc)
            .expect("list");
        let (embed_id, _) = props[0];
        let _ = r.cache.read(r.user, r.doc).expect("warm");
        r.space
            .reorder_property(Scope::Personal(r.user), r.doc, embed_id, 1)
            .expect("reorder");
        let _ = r.cache.read(r.user, r.doc).expect("read");
        let stats = r.cache.stats();
        results.push(CauseResult {
            cause: "3  property reordered",
            mechanism: "notifier",
            consistent: stats.notifier_invalidations >= 1 && stats.misses == 2,
        });
    }

    // Cause 4: external information changed.
    {
        let r = rig();
        let _ = r.cache.read(r.user, r.doc).expect("warm");
        r.feed.set("f1");
        let fresh = r.cache.read(r.user, r.doc).expect("read");
        results.push(CauseResult {
            cause: "4  external info changed",
            mechanism: "verifier",
            consistent: fresh.ends_with(b"f1"),
        });
    }

    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_cause_is_caught() {
        let results = run();
        assert_eq!(results.len(), 6);
        for result in &results {
            assert!(result.consistent, "cause not handled: {}", result.cause);
        }
    }

    #[test]
    fn causes_split_across_both_mechanisms() {
        let results = run();
        assert!(results.iter().any(|r| r.mechanism == "notifier"));
        assert!(results.iter().any(|r| r.mechanism == "verifier"));
    }
}
