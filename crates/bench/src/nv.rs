//! Experiment **E-NV**: the notifier-vs-verifier trade-off (§5).
//!
//! "In general, verifier execution trades-off cache consistency with cache
//! access time latencies, while notifier execution adds load to the
//! Placeless system. The evaluation of these tradeoffs is future work." —
//! this is that evaluation, on the simulated substrate.
//!
//! One document's content embeds a value from an external source (outside
//! Placeless control). Three configurations keep a cache consistent with
//! it:
//!
//! * **verifier** — the property ships an epoch verifier; every hit pays
//!   the probe, staleness is zero;
//! * **notifier** — a timer-driven [`ExternalChangeNotifier`] polls the
//!   source middleware-side; hits are probe-free but reads between the
//!   change and the next tick are stale, and every tick adds middleware
//!   operations;
//! * **none** — no consistency mechanism: the staleness ceiling.

use placeless_cache::{CacheConfig, DocumentCache};
use placeless_core::prelude::*;
use placeless_properties::ExternalChangeNotifier;
use placeless_proplang::{ExtEnv, ScriptProperty};
use placeless_simenv::{SimRng, VirtualClock};

/// Which consistency mechanism a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mechanism {
    /// Epoch verifier on every hit.
    Verifier,
    /// Timer-driven notifier, verifiers off.
    Notifier,
    /// Nothing.
    None,
}

impl Mechanism {
    /// All mechanisms, for sweeps.
    pub const ALL: [Mechanism; 3] = [Mechanism::Verifier, Mechanism::Notifier, Mechanism::None];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Mechanism::Verifier => "verifier",
            Mechanism::Notifier => "notifier",
            Mechanism::None => "none",
        }
    }
}

/// The outcome of one configuration run.
#[derive(Debug, Clone)]
pub struct NvResult {
    /// The mechanism measured.
    pub mechanism: Mechanism,
    /// External-change probability per read.
    pub change_rate: f64,
    /// Mean per-read latency in simulated microseconds.
    pub mean_read_micros: u64,
    /// Fraction of reads that returned a stale embedded value.
    pub stale_frac: f64,
    /// Middleware operations executed (space ops + bus deliveries) —
    /// the "load on the Placeless system".
    pub middleware_ops: u64,
    /// Operations attributable to the consistency machinery alone: timer
    /// dispatches plus invalidation deliveries.
    pub consistency_ops: u64,
    /// Cache hit rate.
    pub hit_rate: f64,
}

/// Runs one configuration: `reads` reads, the external source changing
/// with probability `change_rate` before each read, the notifier timer
/// ticking every `tick_every` reads.
pub fn run_one(
    mechanism: Mechanism,
    reads: u32,
    change_rate: f64,
    tick_every: u32,
    seed: u64,
) -> NvResult {
    let user = UserId(1);
    let clock = VirtualClock::new();
    let space = DocumentSpace::new(clock.clone());
    let provider = MemoryProvider::new("doc", "report body | feed=", 2_000);
    let doc = space.create_document(user, provider);

    let feed = SimpleExternal::new("feed", "v0");
    let env = ExtEnv::new();
    env.add(feed.clone());

    // The content property embeds the feed value; only the verifier
    // configuration also watches it.
    let source = match mechanism {
        Mechanism::Verifier => "@watch_ext(\"feed\")\nappend_ext(\"feed\")",
        _ => "append_ext(\"feed\")",
    };
    let prop = ScriptProperty::compile("embed-feed", source, env).expect("valid program");
    space
        .attach_active(Scope::Personal(user), doc, prop)
        .expect("attach");
    if mechanism == Mechanism::Notifier {
        space
            .attach_active(
                Scope::Universal,
                doc,
                ExternalChangeNotifier::over(vec![feed.clone()]),
            )
            .expect("attach");
    }

    let cache = DocumentCache::new(
        space.clone(),
        CacheConfig {
            run_verifiers: mechanism == Mechanism::Verifier,
            ..CacheConfig::default()
        },
    );

    let mut rng = SimRng::seeded(seed);
    let mut version = 0u64;
    let mut stale = 0u32;
    let mut read_micros = 0u64;
    let mut ticks = 0u64;
    for i in 0..reads {
        if rng.chance(change_rate) {
            version += 1;
            feed.set(format!("v{version}"));
        }
        if mechanism == Mechanism::Notifier && i % tick_every.max(1) == 0 {
            space.timer_tick().expect("tick");
            ticks += 1;
        }
        let t0 = clock.now();
        let bytes = cache.read(user, doc).expect("read");
        read_micros += clock.now().since(t0);
        let text = String::from_utf8_lossy(&bytes);
        let expected = format!("v{version}");
        if !text.ends_with(&expected) {
            stale += 1;
        }
    }

    let (_, delivered) = space.bus().counters();
    NvResult {
        mechanism,
        change_rate,
        mean_read_micros: read_micros / reads as u64,
        stale_frac: stale as f64 / reads as f64,
        middleware_ops: space.ops_count() + delivered,
        consistency_ops: ticks + delivered,
        hit_rate: cache.stats().hit_rate().unwrap_or(0.0),
    }
}

/// Sweeps all mechanisms over the given change rates.
pub fn sweep(reads: u32, change_rates: &[f64], tick_every: u32, seed: u64) -> Vec<NvResult> {
    let mut results = Vec::new();
    for &rate in change_rates {
        for mechanism in Mechanism::ALL {
            results.push(run_one(mechanism, reads, rate, tick_every, seed));
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verifier_is_never_stale() {
        let result = run_one(Mechanism::Verifier, 300, 0.2, 10, 42);
        assert_eq!(result.stale_frac, 0.0);
    }

    #[test]
    fn notifier_is_sometimes_stale_but_cheaper_per_read() {
        let verifier = run_one(Mechanism::Verifier, 300, 0.2, 10, 42);
        let notifier = run_one(Mechanism::Notifier, 300, 0.2, 10, 42);
        assert!(notifier.stale_frac > 0.0, "stale between change and tick");
        // Ticking more often bounds the staleness tighter.
        let frequent = run_one(Mechanism::Notifier, 300, 0.2, 2, 42);
        assert!(
            frequent.stale_frac < notifier.stale_frac,
            "tick=2 {} vs tick=10 {}",
            frequent.stale_frac,
            notifier.stale_frac
        );
        // The notifier run spends more on the consistency machinery
        // itself (timer dispatches + invalidation deliveries); verifiers
        // shift that work to the cache's hit path instead.
        assert!(notifier.consistency_ops > verifier.consistency_ops);
    }

    #[test]
    fn none_is_stalest() {
        let none = run_one(Mechanism::None, 300, 0.2, 10, 42);
        let notifier = run_one(Mechanism::Notifier, 300, 0.2, 10, 42);
        assert!(none.stale_frac > notifier.stale_frac);
        // With nothing invalidating it, the cache always hits.
        assert!(none.hit_rate > 0.95);
    }

    #[test]
    fn stable_source_means_no_staleness_anywhere() {
        for mechanism in Mechanism::ALL {
            let result = run_one(mechanism, 100, 0.0, 10, 1);
            assert_eq!(result.stale_frac, 0.0, "{mechanism:?}");
        }
    }
}
