//! Read/write path assembly cost as the property chain grows — the
//! implementation-side half of "document access latencies are affected by
//! the interposition of active property execution".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use placeless_bench::support::DelayProperty;
use placeless_core::prelude::*;
use placeless_simenv::{LatencyModel, VirtualClock};
use std::hint::black_box;
use std::sync::Arc;

fn space_with_chain_and_body(
    chain: usize,
    body_bytes: usize,
) -> (Arc<DocumentSpace>, DocumentId, UserId) {
    let user = UserId(1);
    let space = DocumentSpace::with_middleware_cost(VirtualClock::new(), LatencyModel::FREE);
    let provider = MemoryProvider::new("doc", vec![b'x'; body_bytes], 0);
    let doc = space.create_document(user, provider);
    for _ in 0..chain {
        space
            .attach_active(Scope::Personal(user), doc, DelayProperty::new(0))
            .expect("attach");
    }
    (space, doc, user)
}

fn space_with_chain(chain: usize) -> (Arc<DocumentSpace>, DocumentId, UserId) {
    space_with_chain_and_body(chain, 4_096)
}

fn bench_read_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("read_path_chain");
    for chain in [0usize, 2, 8, 32] {
        let (space, doc, user) = space_with_chain(chain);
        group.bench_with_input(BenchmarkId::from_parameter(chain), &chain, |b, _| {
            b.iter(|| black_box(space.read_document(user, doc).expect("read")))
        });
    }
    group.finish();
}

/// The body-size axis: a fixed three-stage pass-through chain over
/// growing bodies, reported as throughput so criterion echoes ns/byte.
/// With the zero-copy chunk path, identity stages forward the provider's
/// refcounted slice, so the per-byte cost must stay flat (hashing-bound)
/// rather than growing with copies per stage.
fn bench_read_path_body_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("read_path_body_size");
    for body_bytes in [4usize << 10, 256 << 10, 4 << 20] {
        let (space, doc, user) = space_with_chain_and_body(3, body_bytes);
        group.throughput(Throughput::Bytes(body_bytes as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}KiB", body_bytes >> 10)),
            &body_bytes,
            |b, _| b.iter(|| black_box(space.read_document(user, doc).expect("read"))),
        );
    }
    group.finish();
}

fn bench_write_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("write_path_chain");
    for chain in [0usize, 8] {
        let (space, doc, user) = space_with_chain(chain);
        let payload = vec![b'y'; 4_096];
        group.bench_with_input(BenchmarkId::from_parameter(chain), &chain, |b, _| {
            b.iter(|| {
                space
                    .write_document(user, doc, black_box(&payload))
                    .expect("write")
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_read_path,
    bench_read_path_body_size,
    bench_write_path
);
criterion_main!(benches);
