//! Wall-clock costs of the two consistency mechanisms: invalidation
//! fan-out through the bus (notifier side) and verifier execution on hits
//! (verifier side).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use placeless_core::id::{CacheId, DocumentId};
use placeless_core::notifier::{Invalidation, InvalidationBus, InvalidationSink};
use placeless_core::verifier::{run_all, ClosureVerifier, Validity, Verifier};
use placeless_simenv::VirtualClock;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct CountingSink {
    id: CacheId,
    count: AtomicU64,
}

impl InvalidationSink for CountingSink {
    fn cache_id(&self) -> CacheId {
        self.id
    }
    fn invalidate(&self, _: &Invalidation) {
        self.count.fetch_add(1, Ordering::Relaxed);
    }
}

fn bench_bus_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("notifier_bus_fanout");
    for subscribers in [1usize, 8, 64] {
        let bus = InvalidationBus::new();
        for i in 0..subscribers {
            bus.subscribe(Arc::new(CountingSink {
                id: CacheId(i as u64),
                count: AtomicU64::new(0),
            }));
        }
        group.bench_with_input(
            BenchmarkId::from_parameter(subscribers),
            &subscribers,
            |b, _| b.iter(|| bus.post(black_box(Invalidation::Document(DocumentId(1))))),
        );
    }
    group.finish();
}

fn bench_verifier_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("verifier_chain");
    let clock = VirtualClock::new();
    for n in [1usize, 4, 16] {
        let verifiers: Vec<Box<dyn Verifier>> = (0..n)
            .map(|i| ClosureVerifier::new(&format!("v{i}"), 1, |_| Validity::Valid))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(run_all(&verifiers, &clock)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bus_fanout, bench_verifier_chain);
criterion_main!(benches);
