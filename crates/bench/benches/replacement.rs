//! Wall-clock throughput of the replacement policies: a mixed
//! insert/hit/evict cycle over a 4,096-entry working set, per policy.
//! GDS's heap gives `O(log n)` operations; the scan-based baselines are
//! `O(n)` on evict — visible here, invisible in the simulated experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use placeless_cache::{by_name, EntryAttrs, EntryKey, ALL_POLICIES};
use placeless_core::id::{DocumentId, UserId};
use std::hint::black_box;

fn bench_policy_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_cycle");
    for policy_name in ALL_POLICIES {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy_name),
            &policy_name,
            |b, name| {
                b.iter_with_setup(
                    || {
                        let mut policy = by_name(name).expect("known");
                        for i in 0..4_096u64 {
                            policy.on_insert(
                                EntryKey::Version(DocumentId(i), UserId(1)),
                                &EntryAttrs::new(256 + (i % 1_024), (i % 97) as f64 * 100.0),
                            );
                        }
                        policy
                    },
                    |mut policy| {
                        for i in 0..256u64 {
                            policy.on_hit(EntryKey::Version(DocumentId(i * 13 % 4_096), UserId(1)));
                            policy.on_insert(
                                EntryKey::Version(DocumentId(10_000 + i), UserId(1)),
                                &EntryAttrs::new(512, 1_000.0),
                            );
                            black_box(policy.evict());
                        }
                    },
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_policy_cycle);
criterion_main!(benches);
