//! Wall-clock companion to the Table 1 experiment: the real CPU cost of a
//! no-cache read, a cache miss, and a cache hit in this implementation.
//! (Simulated-latency numbers come from `--bin experiments -- table1`.)

use criterion::{criterion_group, criterion_main, Criterion};
use placeless_bench::table1::bench_setup;
use placeless_core::notifier::Invalidation;
use std::hint::black_box;

fn bench_access_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");

    let (space, _cache, doc, user) = bench_setup();
    group.bench_function("no_cache_read", |b| {
        b.iter(|| black_box(space.read_document(user, doc).expect("read")))
    });

    let (space, cache, doc, user) = bench_setup();
    group.bench_function("cache_miss", |b| {
        b.iter(|| {
            space.bus().post(Invalidation::Document(doc));
            black_box(cache.read(user, doc).expect("read"))
        })
    });

    let (_space, cache, doc, user) = bench_setup();
    cache.read(user, doc).expect("warm");
    group.bench_function("cache_hit", |b| {
        b.iter(|| black_box(cache.read(user, doc).expect("read")))
    });

    group.finish();
}

criterion_group!(benches, bench_access_paths);
criterion_main!(benches);
