//! Wall-clock read-throughput scaling of the sharded cache: the Zipf
//! hit-dominated mix from `placeless_bench::scale`, at 1–16 threads, with
//! the single-shard (global-lock) baseline next to the sharded cache.
//! On a multi-core host the sharded rows should pull ahead as threads
//! grow; on one CPU the interesting number is parity (sharding must not
//! cost throughput).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use placeless_bench::scale::{run_one, ScaleParams};
use std::hint::black_box;

fn bench_scale(c: &mut Criterion) {
    let params = ScaleParams {
        reads_per_thread: 4_000,
        ..ScaleParams::default()
    };
    let mut group = c.benchmark_group("scale_read_throughput");
    for threads in [1usize, 2, 4, 8, 16] {
        group.throughput(Throughput::Elements(
            (threads * params.reads_per_thread) as u64,
        ));
        for shards in [1usize, 16] {
            group.bench_with_input(
                BenchmarkId::new(&format!("shards{shards}"), threads),
                &(threads, shards),
                |b, &(threads, shards)| b.iter(|| black_box(run_one(threads, shards, params))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scale);
criterion_main!(benches);
