//! Wall-clock cost of the signature-sharing store: MD5 throughput and
//! shared-vs-distinct insert cost.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use placeless_cache::{md5, EntryKey, SharedStore};
use placeless_core::id::{DocumentId, UserId};
use std::hint::black_box;

fn bench_md5(c: &mut Criterion) {
    let mut group = c.benchmark_group("md5");
    for size in [1_024usize, 16_384, 262_144] {
        let data = vec![0xA5u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| black_box(md5(data)))
        });
    }
    group.finish();
}

fn bench_shared_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("shared_store");
    let payload = Bytes::from(vec![7u8; 4_096]);

    group.bench_function("insert_distinct", |b| {
        let mut i = 0u64;
        let mut store = SharedStore::new();
        b.iter(|| {
            i += 1;
            let mut content = payload.to_vec();
            content[0..8].copy_from_slice(&i.to_le_bytes());
            black_box(store.insert(
                EntryKey::Version(DocumentId(i), UserId(1)),
                Bytes::from(content),
            ))
        })
    });

    group.bench_function("insert_shared", |b| {
        let mut i = 0u64;
        let mut store = SharedStore::new();
        store.insert(EntryKey::Version(DocumentId(0), UserId(0)), payload.clone());
        b.iter(|| {
            i += 1;
            black_box(store.insert(EntryKey::Version(DocumentId(i), UserId(1)), payload.clone()))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_md5, bench_shared_store);
criterion_main!(benches);
