//! PropLang parity: the wall-clock price of *interpreted* properties
//! versus the equivalent compiled transform (experiment E-PL).

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use placeless_proplang::{parse, run, ExtEnv};
use placeless_simenv::trace::lorem_bytes;
use std::hint::black_box;

const SOURCE: &str = r#"replace("teh", "the") | upper | first_sentences(3)"#;

/// The compiled equivalent of [`SOURCE`].
fn compiled(input: &[u8]) -> Bytes {
    let text = String::from_utf8_lossy(input);
    let replaced = text.replace("teh", "the").to_uppercase();
    let mut out = String::new();
    let mut count = 0;
    for ch in replaced.chars() {
        out.push(ch);
        if matches!(ch, '.' | '!' | '?') {
            count += 1;
            if count >= 3 {
                break;
            }
        }
    }
    Bytes::from(out)
}

fn bench_parse(c: &mut Criterion) {
    c.bench_function("proplang_parse", |b| {
        b.iter(|| black_box(parse(SOURCE).expect("valid")))
    });
}

fn bench_interpreted_vs_compiled(c: &mut Criterion) {
    let input = lorem_bytes(42, 8_192);
    let program = parse(SOURCE).expect("valid");
    let env = ExtEnv::new();
    let no_props = |_: &str| None;

    let mut group = c.benchmark_group("proplang_parity");
    group.bench_function("interpreted", |b| {
        b.iter(|| black_box(run(&program, &input, &no_props, &env).expect("run")))
    });
    group.bench_function("compiled", |b| b.iter(|| black_box(compiled(&input))));
    group.finish();

    // Parity: both pipelines produce identical output.
    let interpreted = run(&program, &input, &no_props, &env).expect("run");
    assert_eq!(Bytes::from(interpreted), compiled(&input));
}

criterion_group!(benches, bench_parse, bench_interpreted_vs_compiled);
criterion_main!(benches);
