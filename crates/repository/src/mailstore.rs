//! An IMAP-like mail store: folders of append-only messages.
//!
//! Properties can be "attached to documents originating from arbitrary
//! content sources"; mail is the canonical source whose *documents* are
//! derived views (a folder digest, the latest message) over an append-only
//! store. Its natural consistency check is the folder's message count —
//! cheap, monotone, and exactly what the digest provider's verifier polls.

use bytes::Bytes;
use parking_lot::RwLock;
use placeless_core::bitprovider::BitProvider;
use placeless_core::error::{PlacelessError, Result};
use placeless_core::streams::{InputStream, MemoryInput, OutputStream};
use placeless_core::verifier::{ClosureVerifier, Validity, Verifier};
use placeless_simenv::{Link, VirtualClock};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One stored message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Sender address.
    pub from: String,
    /// Subject line.
    pub subject: String,
    /// Message body.
    pub body: Bytes,
}

/// The mail store: named folders of append-only messages.
#[derive(Default)]
pub struct MailStore {
    folders: RwLock<BTreeMap<String, Vec<Message>>>,
}

impl MailStore {
    /// Creates an empty store.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Creates an empty folder (idempotent).
    pub fn create_folder(&self, folder: &str) {
        self.folders.write().entry(folder.to_owned()).or_default();
    }

    /// Appends a message to a folder, creating the folder if needed.
    /// Returns the message's 1-based sequence number.
    pub fn deliver(&self, folder: &str, from: &str, subject: &str, body: impl Into<Bytes>) -> u64 {
        let mut folders = self.folders.write();
        let messages = folders.entry(folder.to_owned()).or_default();
        messages.push(Message {
            from: from.to_owned(),
            subject: subject.to_owned(),
            body: body.into(),
        });
        messages.len() as u64
    }

    /// Returns the number of messages in a folder.
    pub fn count(&self, folder: &str) -> Result<u64> {
        self.folders
            .read()
            .get(folder)
            .map(|m| m.len() as u64)
            .ok_or_else(|| PlacelessError::Repository(format!("mail: no folder {folder}")))
    }

    /// Fetches one message by 1-based sequence number.
    pub fn fetch(&self, folder: &str, seq: u64) -> Result<Message> {
        self.folders
            .read()
            .get(folder)
            .and_then(|m| m.get(seq.checked_sub(1)? as usize).cloned())
            .ok_or_else(|| PlacelessError::Repository(format!("mail: no message {folder}/{seq}")))
    }

    /// Renders a digest of the newest `limit` messages, newest first.
    pub fn digest(&self, folder: &str, limit: usize) -> Result<Bytes> {
        let folders = self.folders.read();
        let messages = folders
            .get(folder)
            .ok_or_else(|| PlacelessError::Repository(format!("mail: no folder {folder}")))?;
        let mut out = format!("=== {folder} ({} messages) ===\n", messages.len());
        for (i, m) in messages.iter().enumerate().rev().take(limit) {
            out.push_str(&format!("{:>4}  {:<24} {}\n", i + 1, m.from, m.subject));
        }
        Ok(Bytes::from(out))
    }

    /// Lists folder names, sorted.
    pub fn folders(&self) -> Vec<String> {
        self.folders.read().keys().cloned().collect()
    }
}

/// Bit-provider rendering a folder digest; read-only, verified by message
/// count.
pub struct MailDigestProvider {
    store: Arc<MailStore>,
    folder: String,
    limit: usize,
    link: Link,
}

impl MailDigestProvider {
    /// Creates a digest provider over `folder`, showing the newest
    /// `limit` messages.
    pub fn new(store: Arc<MailStore>, folder: &str, limit: usize, link: Link) -> Arc<Self> {
        Arc::new(Self {
            store,
            folder: folder.to_owned(),
            limit,
            link,
        })
    }
}

impl BitProvider for MailDigestProvider {
    fn describe(&self) -> String {
        format!("mail:{}?limit={}", self.folder, self.limit)
    }

    fn open_input(&self, clock: &VirtualClock) -> Result<Box<dyn InputStream>> {
        let digest = self.store.digest(&self.folder, self.limit)?;
        self.link.transfer(clock, digest.len() as u64);
        Ok(Box::new(MemoryInput::new(digest)))
    }

    fn open_output(&self, _clock: &VirtualClock) -> Result<Box<dyn OutputStream>> {
        Err(PlacelessError::Repository(
            "mail digests are read-only".to_owned(),
        ))
    }

    fn make_verifier(&self, _clock: &VirtualClock) -> Option<Box<dyn Verifier>> {
        // New mail bumps the count; the probe costs one RTT.
        let pinned = self.store.count(&self.folder).ok()?;
        let store = self.store.clone();
        let folder = self.folder.clone();
        let rtt = self.link.rtt_micros();
        Some(ClosureVerifier::new(
            &format!("mail-count:{folder}"),
            rtt,
            move |_| match store.count(&folder) {
                Ok(count) if count == pinned => Validity::Valid,
                _ => Validity::Invalid,
            },
        ))
    }

    fn fetch_cost_micros(&self) -> u64 {
        let size = self
            .store
            .digest(&self.folder, self.limit)
            .map(|d| d.len() as u64)
            .unwrap_or(0);
        self.link.estimate_micros(size)
    }

    fn writable(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use placeless_core::streams::read_all;

    fn lan() -> Link {
        Link::new(1_000, 1_000_000, 0.0, 21)
    }

    #[test]
    fn deliver_and_fetch() {
        let store = MailStore::new();
        assert_eq!(
            store.deliver("inbox", "doug@parc", "review due", "by 11/30"),
            1
        );
        assert_eq!(
            store.deliver("inbox", "karin@parc", "re: caching", "lgtm"),
            2
        );
        let m = store.fetch("inbox", 1).unwrap();
        assert_eq!(m.from, "doug@parc");
        assert_eq!(m.body, "by 11/30");
        assert!(store.fetch("inbox", 3).is_err());
        assert!(store.fetch("spam", 1).is_err());
        assert_eq!(store.count("inbox").unwrap(), 2);
    }

    #[test]
    fn digest_shows_newest_first_with_limit() {
        let store = MailStore::new();
        for i in 1..=5 {
            store.deliver("inbox", "a@b", &format!("msg {i}"), "");
        }
        let digest = String::from_utf8_lossy(&store.digest("inbox", 3).unwrap()).into_owned();
        assert!(digest.contains("(5 messages)"));
        assert!(digest.contains("msg 5"));
        assert!(digest.contains("msg 3"));
        assert!(!digest.contains("msg 2"), "beyond the limit");
        // Newest first.
        assert!(digest.find("msg 5").unwrap() < digest.find("msg 4").unwrap());
    }

    #[test]
    fn empty_and_missing_folders() {
        let store = MailStore::new();
        store.create_folder("empty");
        assert_eq!(store.count("empty").unwrap(), 0);
        assert!(store.digest("missing", 5).is_err());
        assert_eq!(store.folders(), vec!["empty"]);
    }

    #[test]
    fn provider_serves_digest_and_detects_new_mail() {
        let clock = VirtualClock::new();
        let store = MailStore::new();
        store.deliver("inbox", "eyal@rice", "draft attached", "see file");
        let provider = MailDigestProvider::new(store.clone(), "inbox", 10, lan());
        let verifier = provider.make_verifier(&clock).unwrap();
        let mut stream = provider.open_input(&clock).unwrap();
        let digest = read_all(stream.as_mut()).unwrap();
        assert!(String::from_utf8_lossy(&digest).contains("draft attached"));
        assert_eq!(verifier.check(&clock), Validity::Valid);
        store.deliver("inbox", "paul@parc", "comments", "inline");
        assert_eq!(
            verifier.check(&clock),
            Validity::Invalid,
            "new mail detected"
        );
    }

    #[test]
    fn provider_is_read_only() {
        let clock = VirtualClock::new();
        let store = MailStore::new();
        store.create_folder("inbox");
        let provider = MailDigestProvider::new(store, "inbox", 5, lan());
        assert!(!provider.writable());
        assert!(provider.open_output(&clock).is_err());
    }
}
