//! A simulated 1999-era web server with TTL-based consistency.
//!
//! Pages carry a time-to-live, the only consistency mechanism web servers of
//! the era offered ("web-servers so far manage consistency only based on a
//! time-to-live (TTL) invalidation scheme"). Pages can be updated through an
//! HTTP `PUT` (in Placeless control when driven by the provider) or edited
//! out-of-band at the origin ([`WebServer::edit_origin`]), which no event
//! will announce — exactly the dual update model of the WWW.

use bytes::Bytes;
use parking_lot::RwLock;
use placeless_core::error::{PlacelessError, Result};
use placeless_simenv::VirtualClock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A served page: content plus its TTL policy.
#[derive(Debug, Clone)]
pub struct Page {
    /// Current body.
    pub body: Bytes,
    /// Time-to-live attached to each response, in microseconds.
    pub ttl_micros: u64,
    /// Number of times the page has been updated.
    pub revision: u64,
}

/// The response to a GET: the body plus the freshness metadata a cache
/// needs.
#[derive(Debug, Clone)]
pub struct GetResponse {
    /// The page body.
    pub body: Bytes,
    /// TTL granted by this response, in microseconds.
    pub ttl_micros: u64,
    /// The page revision serving the response.
    pub revision: u64,
}

/// A simulated web origin hosting named pages.
pub struct WebServer {
    host: String,
    pages: RwLock<BTreeMap<String, Page>>,
    gets: AtomicU64,
    puts: AtomicU64,
}

impl WebServer {
    /// Creates an origin named `host` (e.g. `"parcweb"`).
    pub fn new(host: &str) -> Arc<Self> {
        Arc::new(Self {
            host: host.to_owned(),
            pages: RwLock::new(BTreeMap::new()),
            gets: AtomicU64::new(0),
            puts: AtomicU64::new(0),
        })
    }

    /// Returns the origin's host name.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// Publishes (or replaces) a page with the given TTL.
    pub fn publish(&self, path: &str, body: impl Into<Bytes>, ttl_micros: u64) {
        let mut pages = self.pages.write();
        let revision = pages.get(path).map(|p| p.revision + 1).unwrap_or(0);
        pages.insert(
            path.to_owned(),
            Page {
                body: body.into(),
                ttl_micros,
                revision,
            },
        );
    }

    /// Serves a GET.
    pub fn get(&self, path: &str) -> Result<GetResponse> {
        self.gets.fetch_add(1, Ordering::Relaxed);
        self.pages
            .read()
            .get(path)
            .map(|p| GetResponse {
                body: p.body.clone(),
                ttl_micros: p.ttl_micros,
                revision: p.revision,
            })
            .ok_or_else(|| PlacelessError::Repository(format!("404 {}{path}", self.host)))
    }

    /// Serves a conditional GET (`If-None-Match` by revision): returns
    /// `None` when the page is unchanged (a 304, headers only) or the full
    /// response when it moved — the HTTP/1.1 revalidation model.
    pub fn conditional_get(&self, path: &str, if_revision: u64) -> Result<Option<GetResponse>> {
        self.gets.fetch_add(1, Ordering::Relaxed);
        let pages = self.pages.read();
        let page = pages
            .get(path)
            .ok_or_else(|| PlacelessError::Repository(format!("404 {}{path}", self.host)))?;
        if page.revision == if_revision {
            Ok(None)
        } else {
            Ok(Some(GetResponse {
                body: page.body.clone(),
                ttl_micros: page.ttl_micros,
                revision: page.revision,
            }))
        }
    }

    /// Serves a PUT (an update through the server, visible to Placeless
    /// when the bit-provider issues it).
    pub fn put(&self, path: &str, body: impl Into<Bytes>) -> Result<()> {
        self.puts.fetch_add(1, Ordering::Relaxed);
        let mut pages = self.pages.write();
        let page = pages
            .get_mut(path)
            .ok_or_else(|| PlacelessError::Repository(format!("404 {}{path}", self.host)))?;
        page.body = body.into();
        page.revision += 1;
        Ok(())
    }

    /// Edits a page at the origin, *bypassing* HTTP — the web-site update
    /// Placeless cannot see. Caches relying on the granted TTL will serve
    /// the stale body until it expires.
    pub fn edit_origin(&self, path: &str, body: impl Into<Bytes>) -> Result<()> {
        let mut pages = self.pages.write();
        let page = pages
            .get_mut(path)
            .ok_or_else(|| PlacelessError::Repository(format!("404 {}{path}", self.host)))?;
        page.body = body.into();
        page.revision += 1;
        Ok(())
    }

    /// Returns a page's current revision (test/bench introspection, not
    /// part of the HTTP surface).
    pub fn revision(&self, path: &str) -> Option<u64> {
        self.pages.read().get(path).map(|p| p.revision)
    }

    /// Returns the TTL a response for `path` would grant (a HEAD-like
    /// metadata probe; does not count as a GET).
    pub fn get_ttl(&self, path: &str) -> Option<u64> {
        self.pages.read().get(path).map(|p| p.ttl_micros)
    }

    /// Returns the current body length of `path`.
    pub fn body_len(&self, path: &str) -> Option<u64> {
        self.pages.read().get(path).map(|p| p.body.len() as u64)
    }

    /// Returns `(gets, puts)` served so far.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.gets.load(Ordering::Relaxed),
            self.puts.load(Ordering::Relaxed),
        )
    }
}

/// Convenience: builds the three origins of the paper's Table 1 with their
/// 1999 payload sizes — `parcweb` (1,915 bytes, local), a large remote site
/// (10,883 bytes), and a small remote site (1,104 bytes).
pub fn table1_origins(clock: &VirtualClock) -> [Arc<WebServer>; 3] {
    use placeless_simenv::trace::lorem_bytes;
    let _ = clock;
    let parcweb = WebServer::new("parcweb");
    parcweb.publish("/index.html", lorem_bytes(1, 1_915), 60_000_000);
    let big = WebServer::new("www.remote-large.com");
    big.publish("/index.html", lorem_bytes(2, 10_883), 60_000_000);
    let small = WebServer::new("www.remote-small.com");
    small.publish("/index.html", lorem_bytes(3, 1_104), 60_000_000);
    [parcweb, big, small]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_get_roundtrip() {
        let server = WebServer::new("parcweb");
        server.publish("/index.html", "welcome", 1_000);
        let resp = server.get("/index.html").unwrap();
        assert_eq!(resp.body, "welcome");
        assert_eq!(resp.ttl_micros, 1_000);
        assert_eq!(resp.revision, 0);
    }

    #[test]
    fn get_missing_is_404() {
        let server = WebServer::new("h");
        let err = server.get("/nope").err().unwrap();
        assert!(err.to_string().contains("404"));
    }

    #[test]
    fn put_bumps_revision() {
        let server = WebServer::new("h");
        server.publish("/p", "v0", 10);
        server.put("/p", "v1").unwrap();
        assert_eq!(server.get("/p").unwrap().revision, 1);
        assert_eq!(server.get("/p").unwrap().body, "v1");
        assert!(server.put("/nope", "x").is_err());
    }

    #[test]
    fn edit_origin_also_bumps_revision() {
        let server = WebServer::new("h");
        server.publish("/p", "v0", 10);
        server.edit_origin("/p", "hacked").unwrap();
        assert_eq!(server.revision("/p"), Some(1));
        assert_eq!(server.get("/p").unwrap().body, "hacked");
    }

    #[test]
    fn counters_track_traffic() {
        let server = WebServer::new("h");
        server.publish("/p", "v0", 10);
        let _ = server.get("/p");
        let _ = server.get("/p");
        server.put("/p", "v1").unwrap();
        assert_eq!(server.counters(), (2, 1));
    }

    #[test]
    fn conditional_get_returns_304_when_unchanged() {
        let server = WebServer::new("h");
        server.publish("/p", "v0", 10);
        assert!(server.conditional_get("/p", 0).unwrap().is_none(), "304");
        server.edit_origin("/p", "v1").unwrap();
        let fresh = server.conditional_get("/p", 0).unwrap().unwrap();
        assert_eq!(fresh.body, "v1");
        assert_eq!(fresh.revision, 1);
        assert!(server.conditional_get("/missing", 0).is_err());
    }

    #[test]
    fn table1_origins_have_paper_sizes() {
        let clock = VirtualClock::new();
        let [parcweb, big, small] = table1_origins(&clock);
        assert_eq!(parcweb.get("/index.html").unwrap().body.len(), 1_915);
        assert_eq!(big.get("/index.html").unwrap().body.len(), 10_883);
        assert_eq!(small.get("/index.html").unwrap().body.len(), 1_104);
    }
}
