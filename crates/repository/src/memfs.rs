//! An in-memory file system with modification times.
//!
//! Models the NFS-mounted PARC file system of the prototype: files are
//! addressed by path, carry an mtime stamped from the virtual clock, and can
//! be modified both *through* Placeless (via the provider's write path) and
//! *directly* ([`MemFs::write_direct`]) — the paper's "applications
//! interacting with files directly through a file system" case that only an
//! mtime-polling verifier can catch.

use bytes::Bytes;
use parking_lot::RwLock;
use placeless_core::error::{PlacelessError, Result};
use placeless_simenv::{Instant, VirtualClock};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One file's metadata and content.
#[derive(Debug, Clone)]
pub struct FileRecord {
    /// Current content.
    pub content: Bytes,
    /// Last modification time.
    pub mtime: Instant,
    /// Number of writes the file has received.
    pub generation: u64,
}

/// A shared in-memory file system.
pub struct MemFs {
    clock: VirtualClock,
    files: RwLock<BTreeMap<String, FileRecord>>,
}

impl MemFs {
    /// Creates an empty file system stamping mtimes from `clock`.
    pub fn new(clock: VirtualClock) -> Arc<Self> {
        Arc::new(Self {
            clock,
            files: RwLock::new(BTreeMap::new()),
        })
    }

    /// Creates (or truncates) a file with `content`.
    pub fn create(&self, path: &str, content: impl Into<Bytes>) {
        let mut files = self.files.write();
        let generation = files.get(path).map(|f| f.generation + 1).unwrap_or(0);
        files.insert(
            path.to_owned(),
            FileRecord {
                content: content.into(),
                mtime: self.clock.now(),
                generation,
            },
        );
    }

    /// Reads a file's content.
    pub fn read(&self, path: &str) -> Result<Bytes> {
        self.files
            .read()
            .get(path)
            .map(|f| f.content.clone())
            .ok_or_else(|| PlacelessError::Repository(format!("no such file: {path}")))
    }

    /// Returns a file's metadata.
    pub fn stat(&self, path: &str) -> Result<FileRecord> {
        self.files
            .read()
            .get(path)
            .cloned()
            .ok_or_else(|| PlacelessError::Repository(format!("no such file: {path}")))
    }

    /// Writes a file *directly*, bypassing Placeless entirely — no events
    /// fire; only mtime-based verifiers can detect the change.
    pub fn write_direct(&self, path: &str, content: impl Into<Bytes>) -> Result<()> {
        let mut files = self.files.write();
        let file = files
            .get_mut(path)
            .ok_or_else(|| PlacelessError::Repository(format!("no such file: {path}")))?;
        file.content = content.into();
        file.mtime = self.clock.now();
        file.generation += 1;
        Ok(())
    }

    /// Removes a file.
    pub fn unlink(&self, path: &str) -> Result<()> {
        self.files
            .write()
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| PlacelessError::Repository(format!("no such file: {path}")))
    }

    /// Returns all paths, sorted.
    pub fn list(&self) -> Vec<String> {
        self.files.read().keys().cloned().collect()
    }

    /// Returns `true` if the file exists.
    pub fn exists(&self, path: &str) -> bool {
        self.files.read().contains_key(path)
    }

    /// Returns the shared clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_read_roundtrip() {
        let fs = MemFs::new(VirtualClock::new());
        fs.create("/tilde/edelara/hotos.doc", "draft v1");
        assert_eq!(fs.read("/tilde/edelara/hotos.doc").unwrap(), "draft v1");
        assert!(fs.exists("/tilde/edelara/hotos.doc"));
        assert!(!fs.exists("/other"));
    }

    #[test]
    fn read_missing_fails() {
        let fs = MemFs::new(VirtualClock::new());
        assert!(fs.read("/missing").is_err());
        assert!(fs.stat("/missing").is_err());
        assert!(fs.write_direct("/missing", "x").is_err());
        assert!(fs.unlink("/missing").is_err());
    }

    #[test]
    fn mtime_advances_with_clock() {
        let clock = VirtualClock::new();
        let fs = MemFs::new(clock.clone());
        fs.create("/a", "v1");
        let t1 = fs.stat("/a").unwrap().mtime;
        clock.advance(5_000);
        fs.write_direct("/a", "v2").unwrap();
        let t2 = fs.stat("/a").unwrap().mtime;
        assert!(t2 > t1);
        assert_eq!(t2.since(t1), 5_000);
    }

    #[test]
    fn generation_counts_writes() {
        let fs = MemFs::new(VirtualClock::new());
        fs.create("/a", "v1");
        assert_eq!(fs.stat("/a").unwrap().generation, 0);
        fs.write_direct("/a", "v2").unwrap();
        fs.write_direct("/a", "v3").unwrap();
        assert_eq!(fs.stat("/a").unwrap().generation, 2);
        // Re-creating keeps counting.
        fs.create("/a", "v4");
        assert_eq!(fs.stat("/a").unwrap().generation, 3);
    }

    #[test]
    fn unlink_and_list() {
        let fs = MemFs::new(VirtualClock::new());
        fs.create("/b", "2");
        fs.create("/a", "1");
        assert_eq!(fs.list(), vec!["/a", "/b"]);
        fs.unlink("/a").unwrap();
        assert_eq!(fs.list(), vec!["/b"]);
    }
}
