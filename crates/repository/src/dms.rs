//! A simulated document management system (DMS) with check-in/check-out and
//! server-side change callbacks.
//!
//! Unlike the file system (mtime polling) and the web server (TTL), a DMS
//! offers the *strongest* consistency mechanism in the paper's repository
//! zoo: explicit change subscriptions, in the spirit of AFS callbacks
//! [Howard et al. 1988]. A bit-provider over a DMS can therefore install a
//! callback instead of shipping a polling verifier.

use bytes::Bytes;
use parking_lot::Mutex;
use placeless_core::error::{PlacelessError, Result};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A change-callback invoked when a DMS item gets a new version.
pub type ChangeCallback = Box<dyn Fn(&str, u64) + Send + Sync>;

struct Item {
    versions: Vec<Bytes>,
    checked_out_by: Option<String>,
}

/// The simulated DMS.
#[derive(Default)]
pub struct Dms {
    inner: Mutex<DmsInner>,
}

#[derive(Default)]
struct DmsInner {
    items: BTreeMap<String, Item>,
    callbacks: Vec<ChangeCallback>,
}

impl Dms {
    /// Creates an empty DMS.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Imports a new item at version 1.
    pub fn import(&self, key: &str, content: impl Into<Bytes>) {
        let mut inner = self.inner.lock();
        inner.items.insert(
            key.to_owned(),
            Item {
                versions: vec![content.into()],
                checked_out_by: None,
            },
        );
    }

    /// Returns the latest version's content.
    pub fn fetch_latest(&self, key: &str) -> Result<Bytes> {
        let inner = self.inner.lock();
        inner
            .items
            .get(key)
            .and_then(|i| i.versions.last().cloned())
            .ok_or_else(|| PlacelessError::Repository(format!("DMS: no item {key}")))
    }

    /// Returns a specific version (1-based).
    pub fn fetch_version(&self, key: &str, version: u64) -> Result<Bytes> {
        let inner = self.inner.lock();
        inner
            .items
            .get(key)
            .and_then(|i| i.versions.get(version.checked_sub(1)? as usize).cloned())
            .ok_or_else(|| PlacelessError::Repository(format!("DMS: no item {key} v{version}")))
    }

    /// Returns the latest version number (1-based), or an error if absent.
    pub fn latest_version(&self, key: &str) -> Result<u64> {
        let inner = self.inner.lock();
        inner
            .items
            .get(key)
            .map(|i| i.versions.len() as u64)
            .ok_or_else(|| PlacelessError::Repository(format!("DMS: no item {key}")))
    }

    /// Checks an item out for exclusive editing.
    pub fn check_out(&self, key: &str, who: &str) -> Result<Bytes> {
        let mut inner = self.inner.lock();
        let item = inner
            .items
            .get_mut(key)
            .ok_or_else(|| PlacelessError::Repository(format!("DMS: no item {key}")))?;
        match &item.checked_out_by {
            Some(holder) if holder != who => Err(PlacelessError::Repository(format!(
                "DMS: {key} checked out by {holder}"
            ))),
            _ => {
                item.checked_out_by = Some(who.to_owned());
                Ok(item
                    .versions
                    .last()
                    .expect("items have >=1 version")
                    .clone())
            }
        }
    }

    /// Checks an item back in with new content, creating a version and
    /// firing change callbacks.
    pub fn check_in(&self, key: &str, who: &str, content: impl Into<Bytes>) -> Result<u64> {
        let mut inner = self.inner.lock();
        let item = inner
            .items
            .get_mut(key)
            .ok_or_else(|| PlacelessError::Repository(format!("DMS: no item {key}")))?;
        match &item.checked_out_by {
            Some(holder) if holder == who => {
                item.versions.push(content.into());
                item.checked_out_by = None;
                let version = item.versions.len() as u64;
                let key = key.to_owned();
                // Fire callbacks outside the borrow of `items` but inside
                // the lock (callbacks must not re-enter the DMS).
                let callbacks = std::mem::take(&mut inner.callbacks);
                for cb in &callbacks {
                    cb(&key, version);
                }
                inner.callbacks = callbacks;
                Ok(version)
            }
            Some(holder) => Err(PlacelessError::Repository(format!(
                "DMS: {key} checked out by {holder}, not {who}"
            ))),
            None => Err(PlacelessError::Repository(format!(
                "DMS: {key} not checked out"
            ))),
        }
    }

    /// Subscribes a change callback, invoked as `(key, new_version)`.
    pub fn subscribe(&self, callback: impl Fn(&str, u64) + Send + Sync + 'static) {
        self.inner.lock().callbacks.push(Box::new(callback));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn import_and_fetch() {
        let dms = Dms::new();
        dms.import("spec", "v1 text");
        assert_eq!(dms.fetch_latest("spec").unwrap(), "v1 text");
        assert_eq!(dms.latest_version("spec").unwrap(), 1);
        assert!(dms.fetch_latest("other").is_err());
    }

    #[test]
    fn check_out_check_in_creates_versions() {
        let dms = Dms::new();
        dms.import("spec", "v1");
        let content = dms.check_out("spec", "eyal").unwrap();
        assert_eq!(content, "v1");
        let v = dms.check_in("spec", "eyal", "v2").unwrap();
        assert_eq!(v, 2);
        assert_eq!(dms.fetch_latest("spec").unwrap(), "v2");
        assert_eq!(dms.fetch_version("spec", 1).unwrap(), "v1");
        assert_eq!(dms.fetch_version("spec", 2).unwrap(), "v2");
        assert!(dms.fetch_version("spec", 3).is_err());
    }

    #[test]
    fn exclusive_checkout() {
        let dms = Dms::new();
        dms.import("spec", "v1");
        dms.check_out("spec", "eyal").unwrap();
        assert!(dms.check_out("spec", "doug").is_err());
        // Re-checkout by the same holder is idempotent.
        assert!(dms.check_out("spec", "eyal").is_ok());
        // Check-in by a non-holder fails.
        assert!(dms.check_in("spec", "doug", "x").is_err());
        dms.check_in("spec", "eyal", "v2").unwrap();
        // Not checked out any more.
        assert!(dms.check_in("spec", "eyal", "v3").is_err());
    }

    #[test]
    fn callbacks_fire_on_check_in() {
        let dms = Dms::new();
        dms.import("spec", "v1");
        let count = Arc::new(AtomicU64::new(0));
        let seen = count.clone();
        dms.subscribe(move |key, version| {
            assert_eq!(key, "spec");
            assert_eq!(version, 2);
            seen.fetch_add(1, Ordering::SeqCst);
        });
        dms.check_out("spec", "eyal").unwrap();
        dms.check_in("spec", "eyal", "v2").unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }
}
