//! # Content repositories for the Placeless Documents reproduction
//!
//! "Documents originate from any number of repositories, many of which
//! provide different mechanisms to handle cache consistency." This crate
//! provides the repository zoo the paper assumes, each with the consistency
//! mechanism its real 1999 counterpart offered, plus the bit-providers that
//! link Placeless base documents to them:
//!
//! * [`memfs::MemFs`] — an NFS-style file system (mtime polling, direct
//!   out-of-band writes);
//! * [`webserver::WebServer`] — a web origin (TTL responses, GET/PUT,
//!   origin edits the server never announces);
//! * [`dms::Dms`] — a document management system (check-in/out, version
//!   history, server-side change callbacks);
//! * [`livefeed::LiveFeed`] — a live video stand-in whose content differs
//!   on every read;
//! * [`mailstore::MailStore`] — an IMAP-like append-only mail store whose
//!   digest documents verify by message count;
//! * [`market`] — external information sources (stock quotes, travel
//!   status) that active properties depend on.
//!
//! See [`providers`] for the [`placeless_core::bitprovider::BitProvider`]
//! implementations, including each repository's verifier.

pub mod dms;
pub mod livefeed;
pub mod mailstore;
pub mod market;
pub mod memfs;
pub mod providers;
pub mod webserver;

pub use dms::Dms;
pub use livefeed::LiveFeed;
pub use mailstore::{MailDigestProvider, MailStore};
pub use market::{StockMarket, TravelBoard};
pub use memfs::MemFs;
pub use providers::{DmsProvider, FsProvider, LiveFeedProvider, WebProvider};
pub use webserver::{table1_origins, WebServer};
