//! External on-line information sources: a stock market and a travel
//! status board.
//!
//! These model the "financial portfolio tracking and travel status" services
//! of §3: active properties compose documents from them, and their changes
//! are the paper's fourth invalidation cause (information used by active
//! properties changes, outside Placeless control).

use parking_lot::RwLock;
use placeless_core::external::{ExternalSource, SimpleExternal};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A simulated stock market exposing one [`ExternalSource`] per symbol.
#[derive(Default)]
pub struct StockMarket {
    symbols: RwLock<BTreeMap<String, Arc<SimpleExternal>>>,
}

impl StockMarket {
    /// Creates an empty market.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Lists a symbol at an initial price (cents).
    pub fn list(&self, symbol: &str, cents: u64) -> Arc<SimpleExternal> {
        let source = SimpleExternal::new(&format!("stock:{symbol}"), format_price(cents));
        self.symbols
            .write()
            .insert(symbol.to_owned(), source.clone());
        source
    }

    /// Returns the source for a symbol.
    pub fn quote_source(&self, symbol: &str) -> Option<Arc<SimpleExternal>> {
        self.symbols.read().get(symbol).cloned()
    }

    /// Moves a symbol's price, bumping its epoch.
    pub fn set_price(&self, symbol: &str, cents: u64) {
        if let Some(source) = self.quote_source(symbol) {
            source.set(format_price(cents));
        }
    }

    /// Returns the current price in cents, if listed.
    pub fn price_cents(&self, symbol: &str) -> Option<u64> {
        let source = self.quote_source(symbol)?;
        parse_price(&source.read())
    }

    /// Returns the listed symbols, sorted.
    pub fn symbols(&self) -> Vec<String> {
        self.symbols.read().keys().cloned().collect()
    }
}

fn format_price(cents: u64) -> String {
    format!("{}.{:02}", cents / 100, cents % 100)
}

fn parse_price(bytes: &[u8]) -> Option<u64> {
    let s = std::str::from_utf8(bytes).ok()?;
    let (dollars, cents) = s.split_once('.')?;
    Some(dollars.parse::<u64>().ok()? * 100 + cents.parse::<u64>().ok()?)
}

/// A travel status board (flight → status), another external source family.
#[derive(Default)]
pub struct TravelBoard {
    flights: RwLock<BTreeMap<String, Arc<SimpleExternal>>>,
}

impl TravelBoard {
    /// Creates an empty board.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Adds a flight with an initial status.
    pub fn add_flight(&self, flight: &str, status: &str) -> Arc<SimpleExternal> {
        let source = SimpleExternal::new(&format!("flight:{flight}"), status.to_owned());
        self.flights
            .write()
            .insert(flight.to_owned(), source.clone());
        source
    }

    /// Updates a flight's status, bumping its epoch.
    pub fn update(&self, flight: &str, status: &str) {
        if let Some(source) = self.flights.read().get(flight) {
            source.set(status.to_owned());
        }
    }

    /// Returns the source for a flight.
    pub fn status_source(&self, flight: &str) -> Option<Arc<SimpleExternal>> {
        self.flights.read().get(flight).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_and_quote() {
        let market = StockMarket::new();
        market.list("XRX", 4_250);
        assert_eq!(market.price_cents("XRX"), Some(4_250));
        assert_eq!(market.symbols(), vec!["XRX"]);
        assert!(market.price_cents("IBM").is_none());
    }

    #[test]
    fn price_moves_bump_epochs() {
        let market = StockMarket::new();
        let source = market.list("XRX", 4_250);
        let e0 = source.epoch();
        market.set_price("XRX", 4_300);
        assert!(source.epoch() > e0);
        assert_eq!(market.price_cents("XRX"), Some(4_300));
    }

    #[test]
    fn price_formatting_roundtrips() {
        assert_eq!(format_price(4_205), "42.05");
        assert_eq!(parse_price(b"42.05"), Some(4_205));
        assert_eq!(parse_price(b"0.99"), Some(99));
        assert_eq!(parse_price(b"garbage"), None);
    }

    #[test]
    fn travel_board_updates() {
        let board = TravelBoard::new();
        let source = board.add_flight("AA100", "on time");
        assert_eq!(&source.read()[..], b"on time");
        board.update("AA100", "delayed 45m");
        assert_eq!(&source.read()[..], b"delayed 45m");
        assert_eq!(source.epoch(), 1);
        assert!(board.status_source("ZZ999").is_none());
    }
}
