//! Bit-providers over the simulated repositories.
//!
//! Each provider pairs a repository with a network [`Link`] and implements
//! the consistency mechanism that repository actually offers:
//!
//! | Provider | Repository | Consistency mechanism |
//! |---|---|---|
//! | [`FsProvider`] | [`MemFs`] | mtime-polling verifier |
//! | [`WebProvider`] | [`WebServer`] | TTL verifier from the HTTP response |
//! | [`DmsProvider`] | [`Dms`] | version pin + optional server callback that posts invalidations |
//! | [`LiveFeedProvider`] | [`LiveFeed`] | none — votes `Uncacheable` |
//!
//! The diversity is the point: "the consistency mechanisms used by the
//! original repositories can vary dramatically", and notifiers/verifiers
//! let one cache absorb all of them.

use crate::dms::Dms;
use crate::livefeed::LiveFeed;
use crate::memfs::MemFs;
use crate::webserver::WebServer;
use bytes::Bytes;
use placeless_core::bitprovider::BitProvider;
use placeless_core::cacheability::Cacheability;
use placeless_core::error::{PlacelessError, Result};
use placeless_core::id::DocumentId;
use placeless_core::notifier::{Invalidation, InvalidationBus};
use placeless_core::streams::{CollectOutput, InputStream, MemoryInput, OutputStream};
use placeless_core::verifier::{ClosureVerifier, TtlVerifier, Validity, Verifier};
use placeless_simenv::{Link, VirtualClock};
use std::sync::Arc;

/// Consults the link's fault plan before an origin operation, mapping an
/// injected fault into the middleware error space. The failed attempt's
/// wire time has already been charged by [`Link::faulted_op`].
fn check_link(link: &Link, clock: &VirtualClock, source: &str) -> Result<()> {
    let t0 = clock.now();
    link.faulted_op(clock)
        .map_err(|fault| PlacelessError::from_fault(source, fault, clock.now().since(t0)))
}

/// Consults the link's fault plan inside a verifier probe: an unreachable
/// origin makes the probe [`Validity::Unverifiable`], never a panic or a
/// false `Invalid`.
fn probe_link(link: &Link, clock: &VirtualClock) -> std::result::Result<(), Validity> {
    match link.faulted_op(clock) {
        Ok(()) => Ok(()),
        Err(_) => Err(Validity::Unverifiable),
    }
}

/// Bit-provider over a path in a [`MemFs`].
pub struct FsProvider {
    fs: Arc<MemFs>,
    path: String,
    link: Link,
}

impl FsProvider {
    /// Creates a provider for `path`, reached over `link`.
    pub fn new(fs: Arc<MemFs>, path: &str, link: Link) -> Arc<Self> {
        Arc::new(Self {
            fs,
            path: path.to_owned(),
            link,
        })
    }
}

impl BitProvider for FsProvider {
    fn describe(&self) -> String {
        format!("fs:{}", self.path)
    }

    fn origin_key(&self) -> String {
        "fs".to_owned()
    }

    fn open_input(&self, clock: &VirtualClock) -> Result<Box<dyn InputStream>> {
        check_link(&self.link, clock, &self.describe())?;
        let content = self.fs.read(&self.path)?;
        self.link.transfer(clock, content.len() as u64);
        Ok(Box::new(MemoryInput::new(content)))
    }

    fn open_output(&self, clock: &VirtualClock) -> Result<Box<dyn OutputStream>> {
        let fs = self.fs.clone();
        let path = self.path.clone();
        let link = self.link.clone();
        let clock = clock.clone();
        Ok(Box::new(CollectOutput::new(move |bytes| {
            check_link(&link, &clock, &format!("fs:{path}"))?;
            link.transfer(&clock, bytes.len() as u64);
            if fs.exists(&path) {
                fs.write_direct(&path, bytes)
            } else {
                fs.create(&path, bytes);
                Ok(())
            }
        })))
    }

    fn commit_batch(&self, clock: &VirtualClock, payloads: &[Bytes]) -> Option<Vec<Result<()>>> {
        // One link probe and one combined transfer cover the whole
        // batch; a dark link fails every payload with the same fault.
        if let Err(error) = check_link(&self.link, clock, &self.describe()) {
            return Some(payloads.iter().map(|_| Err(error.clone())).collect());
        }
        let total: u64 = payloads.iter().map(|bytes| bytes.len() as u64).sum();
        self.link.transfer(clock, total);
        Some(
            payloads
                .iter()
                .map(|bytes| {
                    if self.fs.exists(&self.path) {
                        self.fs.write_direct(&self.path, bytes.clone())
                    } else {
                        self.fs.create(&self.path, bytes.clone());
                        Ok(())
                    }
                })
                .collect(),
        )
    }

    fn make_verifier(&self, _clock: &VirtualClock) -> Option<Box<dyn Verifier>> {
        // Poll the file's mtime/generation; the probe costs one RTT.
        let pinned = self.fs.stat(&self.path).ok()?.generation;
        let fs = self.fs.clone();
        let path = self.path.clone();
        let link = self.link.clone();
        let rtt = self.link.rtt_micros();
        Some(ClosureVerifier::new(
            &format!("fs-mtime:{path}"),
            rtt,
            move |clock| {
                if let Err(unverifiable) = probe_link(&link, clock) {
                    return unverifiable;
                }
                match fs.stat(&path) {
                    Ok(stat) if stat.generation == pinned => Validity::Valid,
                    _ => Validity::Invalid,
                }
            },
        ))
    }

    fn fetch_cost_micros(&self) -> u64 {
        let size = self
            .fs
            .stat(&self.path)
            .map(|s| s.content.len())
            .unwrap_or(0);
        self.link.estimate_micros(size as u64)
    }

    fn content_len_hint(&self) -> Option<u64> {
        self.fs
            .stat(&self.path)
            .ok()
            .map(|s| s.content.len() as u64)
    }
}

/// Bit-provider over a page on a [`WebServer`].
pub struct WebProvider {
    server: Arc<WebServer>,
    path: String,
    link: Link,
    revalidate: bool,
}

impl WebProvider {
    /// Creates a provider for `path` on `server`, reached over `link`,
    /// with classic TTL-only consistency.
    pub fn new(server: Arc<WebServer>, path: &str, link: Link) -> Arc<Self> {
        Arc::new(Self {
            server,
            path: path.to_owned(),
            link,
            revalidate: false,
        })
    }

    /// Creates a provider whose verifier *revalidates* with a conditional
    /// GET on every hit (HTTP/1.1 `If-None-Match` semantics): origin edits
    /// are caught immediately, at the price of one RTT per hit, instead of
    /// being hidden until the TTL expires.
    pub fn with_revalidation(server: Arc<WebServer>, path: &str, link: Link) -> Arc<Self> {
        Arc::new(Self {
            server,
            path: path.to_owned(),
            link,
            revalidate: true,
        })
    }
}

impl BitProvider for WebProvider {
    fn describe(&self) -> String {
        format!("http://{}{}", self.server.host(), self.path)
    }

    fn origin_key(&self) -> String {
        format!("http://{}", self.server.host())
    }

    fn open_input(&self, clock: &VirtualClock) -> Result<Box<dyn InputStream>> {
        check_link(&self.link, clock, &self.describe())?;
        let resp = self.server.get(&self.path)?;
        self.link.transfer(clock, resp.body.len() as u64);
        Ok(Box::new(MemoryInput::new(resp.body)))
    }

    fn open_output(&self, clock: &VirtualClock) -> Result<Box<dyn OutputStream>> {
        let server = self.server.clone();
        let path = self.path.clone();
        let link = self.link.clone();
        let clock = clock.clone();
        let source = self.describe();
        Ok(Box::new(CollectOutput::new(move |bytes| {
            check_link(&link, &clock, &source)?;
            link.transfer(&clock, bytes.len() as u64);
            server.put(&path, bytes)
        })))
    }

    fn make_verifier(&self, clock: &VirtualClock) -> Option<Box<dyn Verifier>> {
        if self.revalidate {
            // Conditional GET pinned to the current revision: a 304 keeps
            // the entry, anything newer forces a refill through the full
            // property path. The probe costs one round trip.
            let pinned = self.server.revision(&self.path)?;
            let server = self.server.clone();
            let path = self.path.clone();
            let link = self.link.clone();
            let rtt = self.link.rtt_micros();
            return Some(ClosureVerifier::new(
                &format!("http-revalidate:{path}"),
                rtt,
                move |clock| {
                    if let Err(unverifiable) = probe_link(&link, clock) {
                        return unverifiable;
                    }
                    match server.conditional_get(&path, pinned) {
                        Ok(None) => Validity::Valid,
                        _ => Validity::Invalid,
                    }
                },
            ));
        }
        // The only consistency a 1999 web server grants otherwise is the
        // response TTL; the check itself is free (a clock comparison).
        let ttl = self.server.get_ttl(&self.path)?;
        Some(TtlVerifier::for_ttl(clock.now(), ttl))
    }

    fn fetch_cost_micros(&self) -> u64 {
        let size = self.server.body_len(&self.path).unwrap_or(0);
        self.link.estimate_micros(size)
    }

    fn content_len_hint(&self) -> Option<u64> {
        self.server.body_len(&self.path)
    }
}

/// Bit-provider over an item in a [`Dms`].
pub struct DmsProvider {
    dms: Arc<Dms>,
    key: String,
    holder: String,
    link: Link,
}

impl DmsProvider {
    /// Creates a provider for `key`; writes check in as `holder`.
    pub fn new(dms: Arc<Dms>, key: &str, holder: &str, link: Link) -> Arc<Self> {
        Arc::new(Self {
            dms,
            key: key.to_owned(),
            holder: holder.to_owned(),
            link,
        })
    }

    /// Wires the DMS's native change callback to the invalidation bus: any
    /// check-in of this item invalidates every cached version of `doc`.
    /// This is the repository-specific *notifier* of §3 — no polling
    /// verifier needed.
    pub fn wire_invalidations(&self, bus: Arc<InvalidationBus>, doc: DocumentId) {
        let key = self.key.clone();
        self.dms.subscribe(move |changed, _version| {
            if changed == key {
                bus.post(Invalidation::Document(doc));
            }
        });
    }
}

impl BitProvider for DmsProvider {
    fn describe(&self) -> String {
        format!("dms:{}", self.key)
    }

    fn origin_key(&self) -> String {
        "dms".to_owned()
    }

    fn open_input(&self, clock: &VirtualClock) -> Result<Box<dyn InputStream>> {
        check_link(&self.link, clock, &self.describe())?;
        let content = self.dms.fetch_latest(&self.key)?;
        self.link.transfer(clock, content.len() as u64);
        Ok(Box::new(MemoryInput::new(content)))
    }

    fn open_output(&self, clock: &VirtualClock) -> Result<Box<dyn OutputStream>> {
        // Model a full check-out/check-in cycle on close.
        let dms = self.dms.clone();
        let key = self.key.clone();
        let holder = self.holder.clone();
        let link = self.link.clone();
        let clock = clock.clone();
        Ok(Box::new(CollectOutput::new(move |bytes| {
            check_link(&link, &clock, &format!("dms:{key}"))?;
            link.transfer(&clock, bytes.len() as u64);
            dms.check_out(&key, &holder)?;
            dms.check_in(&key, &holder, bytes)?;
            Ok(())
        })))
    }

    fn make_verifier(&self, _clock: &VirtualClock) -> Option<Box<dyn Verifier>> {
        // Pin the current version; the probe costs one RTT. When
        // `wire_invalidations` is used instead, callers may drop this.
        let pinned = self.dms.latest_version(&self.key).ok()?;
        let dms = self.dms.clone();
        let key = self.key.clone();
        let link = self.link.clone();
        let rtt = self.link.rtt_micros();
        Some(ClosureVerifier::new(
            &format!("dms-version:{key}"),
            rtt,
            move |clock| {
                if let Err(unverifiable) = probe_link(&link, clock) {
                    return unverifiable;
                }
                match dms.latest_version(&key) {
                    Ok(v) if v == pinned => Validity::Valid,
                    _ => Validity::Invalid,
                }
            },
        ))
    }

    fn fetch_cost_micros(&self) -> u64 {
        let size = self
            .dms
            .fetch_latest(&self.key)
            .map(|c| c.len())
            .unwrap_or(0);
        self.link.estimate_micros(size as u64)
    }
}

/// Bit-provider over a [`LiveFeed`]: uncacheable, read-only.
pub struct LiveFeedProvider {
    feed: Arc<LiveFeed>,
    link: Link,
}

impl LiveFeedProvider {
    /// Creates a provider over `feed`, reached over `link`.
    pub fn new(feed: Arc<LiveFeed>, link: Link) -> Arc<Self> {
        Arc::new(Self { feed, link })
    }
}

impl BitProvider for LiveFeedProvider {
    fn describe(&self) -> String {
        format!("live:{}", self.feed.name())
    }

    fn origin_key(&self) -> String {
        self.describe()
    }

    fn open_input(&self, clock: &VirtualClock) -> Result<Box<dyn InputStream>> {
        check_link(&self.link, clock, &self.describe())?;
        let frame = self.feed.next_frame(clock);
        self.link.transfer(clock, frame.len() as u64);
        Ok(Box::new(MemoryInput::new(frame)))
    }

    fn open_output(&self, _clock: &VirtualClock) -> Result<Box<dyn OutputStream>> {
        Err(PlacelessError::Repository(
            "live feeds are read-only".to_owned(),
        ))
    }

    fn make_verifier(&self, _clock: &VirtualClock) -> Option<Box<dyn Verifier>> {
        None
    }

    fn fetch_cost_micros(&self) -> u64 {
        self.link.estimate_micros(0)
    }

    fn writable(&self) -> bool {
        false
    }

    fn cacheability_vote(&self) -> Cacheability {
        Cacheability::Uncacheable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use placeless_core::streams::{read_all, write_all};
    use placeless_simenv::LinkClass;

    fn lan() -> Link {
        Link::new(1_000, 1_000_000, 0.0, 1)
    }

    #[test]
    fn fs_provider_reads_and_charges_link() {
        let clock = VirtualClock::new();
        let fs = MemFs::new(clock.clone());
        fs.create("/doc", "file body");
        let provider = FsProvider::new(fs, "/doc", lan());
        let t0 = clock.now();
        let mut stream = provider.open_input(&clock).unwrap();
        assert!(clock.now().since(t0) >= 1_000, "link RTT charged");
        assert_eq!(read_all(stream.as_mut()).unwrap(), "file body");
    }

    #[test]
    fn fs_provider_writes_through() {
        let clock = VirtualClock::new();
        let fs = MemFs::new(clock.clone());
        fs.create("/doc", "old");
        let provider = FsProvider::new(fs.clone(), "/doc", lan());
        let mut sink = provider.open_output(&clock).unwrap();
        write_all(sink.as_mut(), b"new body").unwrap();
        sink.close().unwrap();
        assert_eq!(fs.read("/doc").unwrap(), "new body");
    }

    #[test]
    fn fs_verifier_catches_direct_writes() {
        let clock = VirtualClock::new();
        let fs = MemFs::new(clock.clone());
        fs.create("/doc", "v1");
        let provider = FsProvider::new(fs.clone(), "/doc", lan());
        let verifier = provider.make_verifier(&clock).unwrap();
        assert_eq!(verifier.check(&clock), Validity::Valid);
        fs.write_direct("/doc", "v2").unwrap();
        assert_eq!(verifier.check(&clock), Validity::Invalid);
        assert_eq!(verifier.cost_micros(), 1_000, "probe costs one RTT");
    }

    #[test]
    fn web_provider_grants_ttl_verifier() {
        let clock = VirtualClock::new();
        let server = WebServer::new("parcweb");
        server.publish("/p", "page", 10_000);
        let provider = WebProvider::new(server.clone(), "/p", lan());
        let verifier = provider.make_verifier(&clock).unwrap();
        // Within the TTL the verifier cannot see even an origin edit.
        server.edit_origin("/p", "changed").unwrap();
        assert_eq!(verifier.check(&clock), Validity::Valid);
        clock.advance(10_001);
        assert_eq!(verifier.check(&clock), Validity::Invalid);
    }

    #[test]
    fn revalidating_provider_catches_origin_edits_immediately() {
        let clock = VirtualClock::new();
        let server = WebServer::new("news");
        server.publish("/p", "v0", 60_000_000);
        let provider = WebProvider::with_revalidation(server.clone(), "/p", lan());
        let verifier = provider.make_verifier(&clock).unwrap();
        assert_eq!(verifier.check(&clock), Validity::Valid, "304");
        assert_eq!(verifier.cost_micros(), 1_000, "probe costs one RTT");
        server.edit_origin("/p", "v1").unwrap();
        assert_eq!(
            verifier.check(&clock),
            Validity::Invalid,
            "no TTL blind spot"
        );
    }

    #[test]
    fn web_provider_put_goes_through_server() {
        let clock = VirtualClock::new();
        let server = WebServer::new("h");
        server.publish("/p", "v0", 10);
        let provider = WebProvider::new(server.clone(), "/p", lan());
        let mut sink = provider.open_output(&clock).unwrap();
        write_all(sink.as_mut(), b"v1").unwrap();
        sink.close().unwrap();
        assert_eq!(server.get("/p").unwrap().body, "v1");
        assert_eq!(server.counters().1, 1, "one PUT");
    }

    #[test]
    fn dms_provider_roundtrip_and_version_pin() {
        let clock = VirtualClock::new();
        let dms = Dms::new();
        dms.import("spec", "v1");
        let provider = DmsProvider::new(dms.clone(), "spec", "placeless", lan());
        let verifier = provider.make_verifier(&clock).unwrap();
        let mut stream = provider.open_input(&clock).unwrap();
        assert_eq!(read_all(stream.as_mut()).unwrap(), "v1");
        // Write through the provider: checkout + checkin.
        let mut sink = provider.open_output(&clock).unwrap();
        write_all(sink.as_mut(), b"v2").unwrap();
        sink.close().unwrap();
        assert_eq!(dms.fetch_latest("spec").unwrap(), "v2");
        assert_eq!(verifier.check(&clock), Validity::Invalid, "version moved");
    }

    #[test]
    fn dms_callback_posts_invalidations() {
        let clock = VirtualClock::new();
        let dms = Dms::new();
        dms.import("spec", "v1");
        let provider = DmsProvider::new(dms.clone(), "spec", "someone", lan());
        let bus = InvalidationBus::new();
        provider.wire_invalidations(bus.clone(), DocumentId(42));
        dms.check_out("spec", "doug").unwrap();
        dms.check_in("spec", "doug", "v2").unwrap();
        assert_eq!(bus.counters().0, 1, "check-in posted an invalidation");
        let _ = clock;
    }

    #[test]
    fn fs_batch_commit_charges_one_probe_and_applies_in_order() {
        let clock = VirtualClock::new();
        let fs = MemFs::new(clock.clone());
        fs.create("/doc", "old");
        let provider = FsProvider::new(fs.clone(), "/doc", lan());
        let t0 = clock.now();
        let payloads = [Bytes::from_static(b"v1"), Bytes::from_static(b"v2")];
        let results = provider.commit_batch(&clock, &payloads).unwrap();
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(fs.read("/doc").unwrap(), "v2", "last payload wins");
        let batched = clock.now().since(t0);
        // The per-payload path pays the probe RTT per commit; the batch
        // pays it once, so two payloads must cost less than two commits.
        let single = provider.link.estimate_micros(2);
        assert!(batched < 2 * single, "{batched} vs 2x{single}");
    }

    #[test]
    fn fs_batch_commit_on_dark_link_fails_every_payload() {
        use placeless_simenv::FaultPlan;
        let clock = VirtualClock::new();
        let fs = MemFs::new(clock.clone());
        fs.create("/doc", "old");
        let link = lan();
        link.set_fault_plan(FaultPlan::builder(5).outage(0, 10_000).build());
        let provider = FsProvider::new(fs.clone(), "/doc", link);
        let payloads = [Bytes::from_static(b"v1"), Bytes::from_static(b"v2")];
        let results = provider.commit_batch(&clock, &payloads).unwrap();
        assert_eq!(results.len(), 2);
        for result in &results {
            let err = result.as_ref().unwrap_err();
            assert!(matches!(err, PlacelessError::Unavailable { .. }), "{err}");
            assert!(err.is_transient());
        }
        assert_eq!(fs.read("/doc").unwrap(), "old", "nothing committed");
    }

    #[test]
    fn faulted_link_surfaces_unavailable_from_open_input() {
        use placeless_simenv::FaultPlan;
        let clock = VirtualClock::new();
        let fs = MemFs::new(clock.clone());
        fs.create("/doc", "body");
        let link = lan();
        let plan = FaultPlan::builder(3).outage(0, 10_000).build();
        link.set_fault_plan(plan);
        let provider = FsProvider::new(fs, "/doc", link);
        let err = match provider.open_input(&clock) {
            Err(err) => err,
            Ok(_) => panic!("open_input must fail inside the outage window"),
        };
        assert!(matches!(err, PlacelessError::Unavailable { .. }), "{err}");
        assert!(err.is_transient());
        assert!(
            clock.now().as_micros() >= 1_000,
            "the failed attempt still cost a round trip"
        );
        // Past the window the provider recovers.
        clock.advance_to(placeless_simenv::Instant(10_000));
        assert!(provider.open_input(&clock).is_ok());
    }

    #[test]
    fn timeout_window_surfaces_timeout_and_charges_the_hang() {
        use placeless_simenv::FaultPlan;
        let clock = VirtualClock::new();
        let server = WebServer::new("slow");
        server.publish("/p", "page", 60_000_000);
        let link = lan();
        link.set_fault_plan(FaultPlan::builder(4).timeout(0, 50_000).build());
        let provider = WebProvider::new(server, "/p", link);
        let err = match provider.open_input(&clock) {
            Err(err) => err,
            Ok(_) => panic!("open_input must fail inside the timeout window"),
        };
        assert!(matches!(err, PlacelessError::Timeout { .. }), "{err}");
        assert!(
            clock.now().as_micros() >= 50_000,
            "a timeout hangs until the window closes, got {}µs",
            clock.now().as_micros()
        );
    }

    #[test]
    fn faulted_probe_is_unverifiable_not_invalid() {
        use placeless_simenv::FaultPlan;
        let clock = VirtualClock::new();
        let fs = MemFs::new(clock.clone());
        fs.create("/doc", "v1");
        let link = lan();
        let plan = FaultPlan::none();
        link.set_fault_plan(plan.clone());
        let provider = FsProvider::new(fs.clone(), "/doc", link);
        let verifier = provider.make_verifier(&clock).unwrap();
        assert_eq!(verifier.check(&clock), Validity::Valid);
        plan.set_partitioned(true);
        assert_eq!(
            verifier.check(&clock),
            Validity::Unverifiable,
            "an unreachable origin is unknown freshness, not staleness"
        );
        plan.set_partitioned(false);
        fs.write_direct("/doc", "v2").unwrap();
        assert_eq!(
            verifier.check(&clock),
            Validity::Invalid,
            "back online, real staleness is still caught"
        );
    }

    #[test]
    fn drop_next_fails_writes_too() {
        use placeless_simenv::FaultPlan;
        let clock = VirtualClock::new();
        let dms = Dms::new();
        dms.import("spec", "v1");
        let link = lan();
        let plan = FaultPlan::none();
        link.set_fault_plan(plan.clone());
        let provider = DmsProvider::new(dms.clone(), "spec", "placeless", link);
        plan.drop_next(1);
        let mut sink = provider.open_output(&clock).unwrap();
        write_all(sink.as_mut(), b"v2").unwrap();
        assert!(sink.close().is_err(), "commit hits the dropped op");
        assert_eq!(dms.fetch_latest("spec").unwrap(), "v1", "nothing committed");
        // The next attempt goes through.
        let mut sink = provider.open_output(&clock).unwrap();
        write_all(sink.as_mut(), b"v2").unwrap();
        sink.close().unwrap();
        assert_eq!(dms.fetch_latest("spec").unwrap(), "v2");
    }

    #[test]
    fn origin_keys_group_documents_by_origin() {
        let clock = VirtualClock::new();
        let server = WebServer::new("parcweb");
        server.publish("/a", "a", 10);
        server.publish("/b", "b", 10);
        let p1 = WebProvider::new(server.clone(), "/a", lan());
        let p2 = WebProvider::new(server, "/b", lan());
        assert_eq!(p1.origin_key(), p2.origin_key(), "same server, one origin");
        assert_ne!(p1.describe(), p2.describe(), "but distinct documents");
        let fs = MemFs::new(clock.clone());
        fs.create("/x", "x");
        assert_eq!(FsProvider::new(fs, "/x", lan()).origin_key(), "fs");
    }

    #[test]
    fn live_feed_provider_is_uncacheable_and_readonly() {
        let clock = VirtualClock::new();
        let feed = LiveFeed::new("cam", 64, 1);
        let provider = LiveFeedProvider::new(feed, Link::of_class(LinkClass::Lan, 0));
        assert_eq!(provider.cacheability_vote(), Cacheability::Uncacheable);
        assert!(provider.make_verifier(&clock).is_none());
        assert!(!provider.writable());
        assert!(provider.open_output(&clock).is_err());
        let mut a = provider.open_input(&clock).unwrap();
        let mut b = provider.open_input(&clock).unwrap();
        assert_ne!(read_all(a.as_mut()).unwrap(), read_all(b.as_mut()).unwrap());
    }
}
