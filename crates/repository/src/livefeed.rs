//! A live content feed whose content changes on every read.
//!
//! Models the paper's "its source is live video" case: a bit-provider over a
//! feed must deem the document uncacheable, because no two reads return the
//! same bytes.

use bytes::Bytes;
use parking_lot::Mutex;
use placeless_simenv::{SimRng, VirtualClock};
use std::sync::Arc;

/// A deterministic frame generator standing in for a live video source.
pub struct LiveFeed {
    name: String,
    frame_bytes: usize,
    state: Mutex<(u64, SimRng)>,
}

impl LiveFeed {
    /// Creates a feed producing `frame_bytes`-sized frames.
    pub fn new(name: &str, frame_bytes: usize, seed: u64) -> Arc<Self> {
        Arc::new(Self {
            name: name.to_owned(),
            frame_bytes,
            state: Mutex::new((0, SimRng::seeded(seed))),
        })
    }

    /// Returns the feed's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Captures the next frame; every call yields different content.
    pub fn next_frame(&self, clock: &VirtualClock) -> Bytes {
        let mut state = self.state.lock();
        state.0 += 1;
        let frame_no = state.0;
        let mut frame = Vec::with_capacity(self.frame_bytes);
        frame.extend_from_slice(
            format!("frame {frame_no} @{} | ", clock.now().as_micros()).as_bytes(),
        );
        while frame.len() < self.frame_bytes {
            frame.push(b'a' + (state.1.next_below(26) as u8));
        }
        frame.truncate(self.frame_bytes);
        Bytes::from(frame)
    }

    /// Returns how many frames have been captured.
    pub fn frames_served(&self) -> u64 {
        self.state.lock().0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_frame_differs() {
        let clock = VirtualClock::new();
        let feed = LiveFeed::new("camera-1", 256, 7);
        let a = feed.next_frame(&clock);
        let b = feed.next_frame(&clock);
        assert_ne!(a, b);
        assert_eq!(a.len(), 256);
        assert_eq!(b.len(), 256);
        assert_eq!(feed.frames_served(), 2);
    }

    #[test]
    fn frames_embed_the_virtual_time() {
        let clock = VirtualClock::new();
        clock.advance(42);
        let feed = LiveFeed::new("cam", 64, 1);
        let frame = feed.next_frame(&clock);
        assert!(std::str::from_utf8(&frame).unwrap().contains("@42"));
    }

    #[test]
    fn deterministic_per_seed() {
        let clock = VirtualClock::new();
        let a = LiveFeed::new("cam", 128, 5).next_frame(&clock);
        let b = LiveFeed::new("cam", 128, 5).next_frame(&clock);
        assert_eq!(a, b);
    }
}
