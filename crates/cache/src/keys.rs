//! The two-level entry map enabling cross-user content sharing.
//!
//! §3: "content entries could be shared if the cache maps a pair of document
//! and user identifiers to a content signature (e.g., MD5 hash) and in turn
//! these signatures map to the actual content. On a cache miss for an
//! already cached version of the same content, only the document and user
//! identifier mapping to the content signature needs to be established."
//!
//! [`SharedStore`] implements exactly that: `(doc, user) → Signature` and a
//! refcounted `Signature → Bytes` store, so two users whose property chains
//! produce identical bytes consume the bytes once.

use crate::digest::{md5, Signature};
use crate::policy::EntryKey;
use bytes::Bytes;
use std::collections::HashMap;

struct Stored {
    content: Bytes,
    refs: usize,
}

/// Refcounted, signature-deduplicated content storage.
#[derive(Default)]
pub struct SharedStore {
    keys: HashMap<EntryKey, Signature>,
    contents: HashMap<Signature, Stored>,
}

impl SharedStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces) the content for a key, returning its
    /// signature and whether the bytes were already resident (a shared
    /// fill that cost no new storage).
    pub fn insert(&mut self, key: EntryKey, content: Bytes) -> (Signature, bool) {
        let signature = md5(&content);
        // Drop the key's previous mapping first.
        self.remove(key);
        let shared = match self.contents.get_mut(&signature) {
            Some(stored) => {
                stored.refs += 1;
                true
            }
            None => {
                self.contents.insert(signature, Stored { content, refs: 1 });
                false
            }
        };
        self.keys.insert(key, signature);
        (signature, shared)
    }

    /// Looks up a key's content.
    pub fn get(&self, key: EntryKey) -> Option<Bytes> {
        let signature = self.keys.get(&key)?;
        Some(self.contents.get(signature)?.content.clone())
    }

    /// Returns a key's signature.
    pub fn signature_of(&self, key: EntryKey) -> Option<Signature> {
        self.keys.get(&key).copied()
    }

    /// Removes a key's mapping, dropping the bytes when the last reference
    /// goes away. Returns `true` if the key existed.
    pub fn remove(&mut self, key: EntryKey) -> bool {
        let Some(signature) = self.keys.remove(&key) else {
            return false;
        };
        if let Some(stored) = self.contents.get_mut(&signature) {
            stored.refs -= 1;
            if stored.refs == 0 {
                self.contents.remove(&signature);
            }
        }
        true
    }

    /// Returns the number of key mappings.
    pub fn key_count(&self) -> usize {
        self.keys.len()
    }

    /// Returns the number of distinct contents resident.
    pub fn distinct_contents(&self) -> usize {
        self.contents.len()
    }

    /// Returns the *physical* bytes resident (deduplicated).
    pub fn physical_bytes(&self) -> u64 {
        self.contents.values().map(|s| s.content.len() as u64).sum()
    }

    /// Returns the *logical* bytes resident (what a share-nothing cache
    /// would store) — the sharing experiment reports the ratio.
    pub fn logical_bytes(&self) -> u64 {
        self.keys
            .values()
            .filter_map(|sig| self.contents.get(sig))
            .map(|s| s.content.len() as u64)
            .sum()
    }

    /// Iterates over the resident keys.
    pub fn keys(&self) -> impl Iterator<Item = EntryKey> + '_ {
        self.keys.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use placeless_core::id::{DocumentId, UserId};

    fn key(d: u64, u: u64) -> EntryKey {
        EntryKey::Version(DocumentId(d), UserId(u))
    }

    #[test]
    fn identical_content_is_stored_once() {
        let mut store = SharedStore::new();
        let (sig_a, shared_a) = store.insert(key(1, 1), Bytes::from_static(b"same bytes"));
        let (sig_b, shared_b) = store.insert(key(1, 2), Bytes::from_static(b"same bytes"));
        assert_eq!(sig_a, sig_b);
        assert!(!shared_a, "first fill stores");
        assert!(shared_b, "second fill shares");
        assert_eq!(store.key_count(), 2);
        assert_eq!(store.distinct_contents(), 1);
        assert_eq!(store.physical_bytes(), 10);
        assert_eq!(store.logical_bytes(), 20);
    }

    #[test]
    fn different_transforms_store_separately() {
        let mut store = SharedStore::new();
        store.insert(key(1, 1), Bytes::from_static(b"english"));
        store.insert(key(1, 2), Bytes::from_static(b"francais"));
        assert_eq!(store.distinct_contents(), 2);
        assert_eq!(store.get(key(1, 1)).unwrap(), "english");
        assert_eq!(store.get(key(1, 2)).unwrap(), "francais");
    }

    #[test]
    fn remove_drops_bytes_at_last_reference() {
        let mut store = SharedStore::new();
        store.insert(key(1, 1), Bytes::from_static(b"shared"));
        store.insert(key(1, 2), Bytes::from_static(b"shared"));
        assert!(store.remove(key(1, 1)));
        assert_eq!(store.distinct_contents(), 1, "still referenced");
        assert!(store.get(key(1, 2)).is_some());
        assert!(store.remove(key(1, 2)));
        assert_eq!(store.distinct_contents(), 0);
        assert_eq!(store.physical_bytes(), 0);
        assert!(!store.remove(key(1, 2)), "already gone");
    }

    #[test]
    fn reinsert_replaces_previous_mapping() {
        let mut store = SharedStore::new();
        store.insert(key(1, 1), Bytes::from_static(b"v1"));
        store.insert(key(1, 1), Bytes::from_static(b"v2"));
        assert_eq!(store.key_count(), 1);
        assert_eq!(store.distinct_contents(), 1);
        assert_eq!(store.get(key(1, 1)).unwrap(), "v2");
    }

    /// Regression test for the re-point path: `insert` over a live key must
    /// decrement the *old* signature's refcount (via the leading `remove`)
    /// before establishing the new mapping, and orphaned bytes must leave
    /// the store immediately — not linger until some later removal.
    #[test]
    fn repoint_decrements_old_refcount_and_evicts_orphans() {
        let mut store = SharedStore::new();
        // Two keys share v1; a third holds v2.
        store.insert(key(1, 1), Bytes::from_static(b"v1-bytes"));
        store.insert(key(1, 2), Bytes::from_static(b"v1-bytes"));
        store.insert(key(2, 1), Bytes::from_static(b"v2-bytes!"));
        assert_eq!(store.distinct_contents(), 2);
        assert_eq!(store.physical_bytes(), 8 + 9);

        // Re-point one v1 holder onto v2: v1 must survive (one ref left)
        // and the fill must report sharing v2's bytes.
        let (sig, shared) = store.insert(key(1, 1), Bytes::from_static(b"v2-bytes!"));
        assert!(shared, "v2 bytes were already resident");
        assert_eq!(store.signature_of(key(2, 1)), Some(sig));
        assert_eq!(store.distinct_contents(), 2, "one v1 reference remains");
        assert_eq!(store.logical_bytes(), 8 + 9 + 9);

        // Re-point the last v1 holder: the orphaned v1 bytes must be
        // evicted by the insert itself.
        store.insert(key(1, 2), Bytes::from_static(b"v2-bytes!"));
        assert_eq!(store.distinct_contents(), 1, "v1 orphan evicted");
        assert_eq!(store.physical_bytes(), 9);
        assert_eq!(store.key_count(), 3);

        // And the refcount actually moved: dropping two of the three v2
        // holders keeps the bytes, dropping the last frees them.
        assert!(store.remove(key(1, 1)));
        assert!(store.remove(key(1, 2)));
        assert_eq!(store.physical_bytes(), 9, "still one v2 reference");
        assert!(store.remove(key(2, 1)));
        assert_eq!(store.physical_bytes(), 0);
    }

    #[test]
    fn missing_key_lookups() {
        let store = SharedStore::new();
        assert!(store.get(key(9, 9)).is_none());
        assert!(store.signature_of(key(9, 9)).is_none());
    }
}
