//! The write-ahead journal for write-back caches.
//!
//! §3's write-back mode makes the cache the *only* holder of buffered
//! user data until a flush succeeds — a crash or a failed flush must not
//! lose writes the application already saw acknowledged. The journal is
//! the durability half of that contract: every write-back write is
//! appended here, to a [`StableStore`] (a simulated stable medium that
//! survives scripted crashes), *before* the in-memory dirty map is
//! updated; a flush acknowledges ([`WriteJournal::ack`]) and prunes a
//! record only after the origin write succeeded.
//!
//! # Record format
//!
//! Records are framed, sequence-numbered, and checksummed so recovery can
//! tell an intact prefix from the torn tail a crash leaves behind. The
//! original (v1) frame carries an opaque payload:
//!
//! ```text
//! seq: u64 LE | doc: u64 LE | user: u64 LE | epoch: 16 bytes |
//! data_len: u32 LE | data | md5(all of the above): 16 bytes
//! ```
//!
//! A record that additionally carries typed operations ([`DocOp`]) sets
//! the high bit of the length field ([`OPS_FLAG`] — payloads are far below
//! 2 GiB, so the bit is free) and inserts the op section between the
//! header and the payload:
//!
//! ```text
//! seq | doc | user | epoch | data_len∣OPS_FLAG: u32 LE |
//! writer_seq: u64 LE | ops_len: u32 LE | ops | data | md5: 16 bytes
//! ```
//!
//! `data` is always the *materialized* view (base at `epoch` with `ops`
//! applied), so a reader that ignores ops — or a conflict handler that
//! falls back to keep-mine — behaves exactly like v1. Plain writes encode
//! v1 frames byte-for-byte, keeping old media replayable and new media
//! readable by old code paths.
//!
//! `epoch` is the content signature of the rendition the writer last read
//! for `(doc, user)` — [`NO_EPOCH`] when the writer never read the
//! document. Recovery compares it against the origin's current rendition
//! signature to detect write/invalidation conflicts (the origin moved on
//! while the write sat buffered across a crash). `writer_seq` is the
//! per-`(doc, user)` causal sequence: together with the epoch it orders
//! concurrent writers deterministically during a merge.
//!
//! # Recovery
//!
//! [`WriteJournal::open`] parses whatever the medium holds, keeps the
//! longest intact prefix (every record framed correctly and matching its
//! checksum), truncates anything after it — the torn last record a crash
//! tore mid-append — and rebuilds the live set, deduplicating by
//! `(doc, user)` with the highest sequence number winning (a superseded
//! record may still sit on the medium between compactions).
//!
//! Everything here is synchronous and deterministic; the journal knows
//! nothing about origins or retries — parking and draining policy live in
//! [`crate::manager::DocumentCache`].

use crate::digest::{md5, Signature};
use bytes::Bytes;
use parking_lot::Mutex;
use placeless_core::id::{DocumentId, UserId};
use placeless_core::op::{decode_ops, encode_ops, DocOp};
use placeless_simenv::StableStore;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// The epoch recorded when the writer never read the document: no base
/// version is known, so recovery cannot detect conflicts for the record.
pub const NO_EPOCH: Signature = Signature([0; 16]);

/// Fixed bytes before the payload: seq + doc + user + epoch + data_len.
const HEADER_LEN: usize = 8 + 8 + 8 + 16 + 4;
/// Trailing checksum bytes.
const CHECK_LEN: usize = 16;
/// High bit of the length field: set when the frame carries an op section
/// (`writer_seq` + encoded op list) between the header and the payload.
const OPS_FLAG: u32 = 0x8000_0000;
/// Extra fixed bytes in an op-carrying frame: writer_seq + ops_len.
const OPS_HEADER_LEN: usize = 8 + 4;

/// One journaled write-back write.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalRecord {
    /// Journal-wide sequence number (monotone per journal lifetime).
    pub seq: u64,
    /// Target document.
    pub doc: DocumentId,
    /// Writing user.
    pub user: UserId,
    /// Content signature of the rendition the writer last read, or
    /// [`NO_EPOCH`] if unknown.
    pub epoch: Signature,
    /// The buffered write payload: the writer's materialized view (base
    /// at `epoch` with `ops` applied, when ops are present).
    pub data: Bytes,
    /// Typed operations accumulated since `epoch`, oldest first. Empty
    /// for plain full-body writes — such records cannot be rebased.
    pub ops: Vec<DocOp>,
    /// Per-`(doc, user)` causal sequence at the time of the write; `0`
    /// for plain writes that never participated in op tracking.
    pub writer_seq: u64,
}

impl JournalRecord {
    /// True when the record's ops can be rebased onto a different base
    /// than they were authored against.
    pub fn rebasable(&self) -> bool {
        placeless_core::op::rebasable(&self.ops)
    }

    fn encode(&self) -> Vec<u8> {
        let plain = self.ops.is_empty() && self.writer_seq == 0;
        let ops_wire = if plain {
            Vec::new()
        } else {
            encode_ops(&self.ops)
        };
        let mut out = Vec::with_capacity(
            HEADER_LEN
                + if plain {
                    0
                } else {
                    OPS_HEADER_LEN + ops_wire.len()
                }
                + self.data.len()
                + CHECK_LEN,
        );
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.doc.0.to_le_bytes());
        out.extend_from_slice(&self.user.0.to_le_bytes());
        out.extend_from_slice(&self.epoch.0);
        let mut len_field = self.data.len() as u32;
        if !plain {
            len_field |= OPS_FLAG;
        }
        out.extend_from_slice(&len_field.to_le_bytes());
        if !plain {
            out.extend_from_slice(&self.writer_seq.to_le_bytes());
            out.extend_from_slice(&(ops_wire.len() as u32).to_le_bytes());
            out.extend_from_slice(&ops_wire);
        }
        out.extend_from_slice(&self.data);
        let check = md5(&out);
        out.extend_from_slice(&check.0);
        out
    }

    /// Decodes one record starting at `bytes[offset..]`. Returns the
    /// record and the offset past it, or `None` if the bytes are torn
    /// (incomplete) or fail their checksum.
    fn decode(bytes: &[u8], offset: usize) -> Option<(Self, usize)> {
        let rest = bytes.get(offset..)?;
        if rest.len() < HEADER_LEN + CHECK_LEN {
            return None;
        }
        let seq = u64::from_le_bytes(rest[0..8].try_into().expect("8 bytes"));
        let doc = u64::from_le_bytes(rest[8..16].try_into().expect("8 bytes"));
        let user = u64::from_le_bytes(rest[16..24].try_into().expect("8 bytes"));
        let epoch: [u8; 16] = rest[24..40].try_into().expect("16 bytes");
        let len_field = u32::from_le_bytes(rest[40..44].try_into().expect("4 bytes"));
        let has_ops = len_field & OPS_FLAG != 0;
        let data_len = (len_field & !OPS_FLAG) as usize;
        let mut writer_seq = 0u64;
        let mut data_at = HEADER_LEN;
        if has_ops {
            if rest.len() < HEADER_LEN + OPS_HEADER_LEN + CHECK_LEN {
                return None;
            }
            writer_seq = u64::from_le_bytes(rest[44..52].try_into().expect("8 bytes"));
            let ops_len = u32::from_le_bytes(rest[52..56].try_into().expect("4 bytes")) as usize;
            data_at = HEADER_LEN + OPS_HEADER_LEN + ops_len;
        }
        let check_at = data_at.checked_add(data_len)?;
        let total = check_at + CHECK_LEN;
        if rest.len() < total {
            return None;
        }
        let stored: [u8; 16] = rest[check_at..total].try_into().expect("16 bytes");
        if md5(&rest[..check_at]).0 != stored {
            return None;
        }
        let ops = if has_ops {
            let wire = &rest[HEADER_LEN + OPS_HEADER_LEN..data_at];
            let mut at = 0;
            let ops = decode_ops(wire, &mut at)?;
            if at != wire.len() {
                return None; // trailing garbage inside the op section
            }
            ops
        } else {
            Vec::new()
        };
        Some((
            Self {
                seq,
                doc: DocumentId(doc),
                user: UserId(user),
                epoch: Signature(epoch),
                data: Bytes::copy_from_slice(&rest[data_at..check_at]),
                ops,
                writer_seq,
            },
            offset + total,
        ))
    }
}

/// What [`WriteJournal::open`] found on the medium.
#[derive(Debug, Clone, Default)]
pub struct ReplayOutcome {
    /// The live records (latest per `(doc, user)`), in sequence order.
    pub records: Vec<JournalRecord>,
    /// Intact records scanned, including superseded duplicates.
    pub scanned: u64,
    /// Bytes discarded past the intact prefix (the torn tail).
    pub torn_bytes: u64,
    /// `true` if the medium held a torn tail that was truncated away.
    pub truncated: bool,
}

#[derive(Debug, Default)]
struct JournalState {
    next_seq: u64,
    live: BTreeMap<u64, JournalRecord>,
    by_key: HashMap<(DocumentId, UserId), u64>,
    appends: u64,
}

impl JournalState {
    /// Inserts `record` as the live write for its key, superseding any
    /// earlier one (the stale bytes stay on the medium until the next
    /// compaction; replay deduplicates by key).
    fn insert(&mut self, record: JournalRecord) {
        let key = (record.doc, record.user);
        if let Some(old) = self.by_key.insert(key, record.seq) {
            self.live.remove(&old);
        }
        self.live.insert(record.seq, record);
    }
}

/// A write-ahead journal over a [`StableStore`].
///
/// Clones share state (like clones of the underlying store), so the
/// cache and its construction site hold the same journal.
#[derive(Debug, Clone)]
pub struct WriteJournal {
    store: StableStore,
    state: Arc<Mutex<JournalState>>,
}

impl WriteJournal {
    /// Opens a journal over `store`, recovering whatever intact records
    /// the medium holds and truncating any torn tail.
    ///
    /// On a fresh medium the outcome is empty. Sequence numbering resumes
    /// past the highest recovered record.
    pub fn open(store: StableStore) -> (Self, ReplayOutcome) {
        let image = store.contents();
        let mut state = JournalState::default();
        let mut outcome = ReplayOutcome::default();
        let mut offset = 0;
        while let Some((record, next)) = JournalRecord::decode(&image, offset) {
            outcome.scanned += 1;
            state.next_seq = state.next_seq.max(record.seq + 1);
            state.insert(record);
            offset = next;
        }
        if offset < image.len() {
            outcome.torn_bytes = (image.len() - offset) as u64;
            outcome.truncated = true;
            store.truncate(offset as u64);
        }
        outcome.records = state.live.values().cloned().collect();
        (
            Self {
                store,
                state: Arc::new(Mutex::new(state)),
            },
            outcome,
        )
    }

    /// Creates a journal over a fresh (or already-recovered) medium,
    /// discarding any replay information.
    pub fn new(store: StableStore) -> Self {
        Self::open(store).0
    }

    /// Returns the underlying stable medium.
    pub fn store(&self) -> &StableStore {
        &self.store
    }

    /// Appends a write record, returning its sequence number. The record
    /// is on the stable medium before this returns — the write-ahead
    /// guarantee the cache relies on.
    pub fn append(&self, doc: DocumentId, user: UserId, epoch: Signature, data: &[u8]) -> u64 {
        self.append_record(doc, user, epoch, data, Vec::new(), 0)
    }

    /// Appends an op-carrying record: `data` is the writer's materialized
    /// view, `ops` the typed edits accumulated since `epoch` (oldest
    /// first), and `writer_seq` the per-`(doc, user)` causal sequence.
    /// Same write-ahead guarantee as [`WriteJournal::append`].
    pub fn append_op(
        &self,
        doc: DocumentId,
        user: UserId,
        epoch: Signature,
        data: &[u8],
        ops: Vec<DocOp>,
        writer_seq: u64,
    ) -> u64 {
        self.append_record(doc, user, epoch, data, ops, writer_seq)
    }

    fn append_record(
        &self,
        doc: DocumentId,
        user: UserId,
        epoch: Signature,
        data: &[u8],
        ops: Vec<DocOp>,
        writer_seq: u64,
    ) -> u64 {
        let mut state = self.state.lock();
        let seq = state.next_seq;
        state.next_seq += 1;
        let record = JournalRecord {
            seq,
            doc,
            user,
            epoch,
            data: Bytes::copy_from_slice(data),
            ops,
            writer_seq,
        };
        self.store.append(&record.encode());
        state.insert(record);
        state.appends += 1;
        seq
    }

    /// Acknowledges a flushed record: removes it from the live set (if
    /// `seq` is still live — a newer write for the same key may have
    /// superseded it) and compacts the medium down to the live records.
    /// Returns `true` if the record was live.
    pub fn ack(&self, seq: u64) -> bool {
        self.ack_batch(std::slice::from_ref(&seq)) == 1
    }

    /// Acknowledges a whole batch of flushed records in one pass: every
    /// still-live `seq` is removed, then the medium is compacted *once*
    /// — the grouped-flush counterpart of [`WriteJournal::ack`], which
    /// rewrites the medium per record. Sequence numbers that were
    /// superseded by a newer write (or already acknowledged) are skipped
    /// exactly as in `ack`. Returns how many records were live.
    pub fn ack_batch(&self, seqs: &[u64]) -> usize {
        let mut state = self.state.lock();
        let mut removed = 0;
        for &seq in seqs {
            let Some(record) = state.live.remove(&seq) else {
                continue;
            };
            let key = (record.doc, record.user);
            if state.by_key.get(&key) == Some(&seq) {
                state.by_key.remove(&key);
            }
            removed += 1;
        }
        if removed == 0 {
            return 0;
        }
        let mut image = Vec::new();
        for live in state.live.values() {
            image.extend_from_slice(&live.encode());
        }
        self.store.overwrite(&image);
        removed
    }

    /// Returns the live sequence number for `(doc, user)`, if any.
    pub fn seq_for(&self, doc: DocumentId, user: UserId) -> Option<u64> {
        self.state.lock().by_key.get(&(doc, user)).copied()
    }

    /// Returns the live records in sequence order.
    pub fn live_records(&self) -> Vec<JournalRecord> {
        self.state.lock().live.values().cloned().collect()
    }

    /// Returns how many records are live (unacknowledged).
    pub fn len(&self) -> usize {
        self.state.lock().live.len()
    }

    /// Returns `true` if no records are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns how many appends this handle's journal absorbed (not
    /// counting records recovered at open).
    pub fn append_count(&self) -> u64 {
        self.state.lock().appends
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: DocumentId = DocumentId(7);
    const ALICE: UserId = UserId(1);
    const BOB: UserId = UserId(2);

    #[test]
    fn append_ack_roundtrip() {
        let (journal, outcome) = WriteJournal::open(StableStore::new());
        assert!(outcome.records.is_empty());
        assert!(!outcome.truncated);
        let seq = journal.append(DOC, ALICE, NO_EPOCH, b"draft");
        assert_eq!(journal.len(), 1);
        assert_eq!(journal.seq_for(DOC, ALICE), Some(seq));
        assert!(journal.ack(seq));
        assert!(journal.is_empty());
        assert!(journal.store().is_empty(), "ack compacts the medium");
        assert!(!journal.ack(seq), "double ack is a no-op");
    }

    #[test]
    fn ack_batch_compacts_once_and_skips_superseded_records() {
        let journal = WriteJournal::new(StableStore::new());
        let a = journal.append(DOC, ALICE, NO_EPOCH, b"alice v1");
        let superseded = journal.append(DOC, BOB, NO_EPOCH, b"bob v1");
        let b = journal.append(DOC, BOB, NO_EPOCH, b"bob v2");
        let keep = journal.append(DocumentId(8), ALICE, NO_EPOCH, b"other");
        let rewrites_before = journal.store().rewrite_count();
        // One batch ack: two live seqs, one already-acked seq.
        assert_eq!(journal.ack_batch(&[a, b, superseded]), 2);
        assert_eq!(
            journal.store().rewrite_count(),
            rewrites_before + 1,
            "the whole batch compacts the medium once"
        );
        assert_eq!(journal.len(), 1);
        assert_eq!(journal.seq_for(DocumentId(8), ALICE), Some(keep));
        assert_eq!(journal.ack_batch(&[a, b]), 0, "double batch ack is a no-op");
        assert_eq!(
            journal.store().rewrite_count(),
            rewrites_before + 1,
            "an all-stale batch does not rewrite the medium"
        );
    }

    #[test]
    fn newer_write_supersedes_and_ack_is_seq_precise() {
        let journal = WriteJournal::new(StableStore::new());
        let first = journal.append(DOC, ALICE, NO_EPOCH, b"v1");
        let second = journal.append(DOC, ALICE, NO_EPOCH, b"v2");
        assert_eq!(journal.len(), 1, "one live record per key");
        assert!(
            !journal.ack(first),
            "acking the superseded seq must not drop the newer record"
        );
        assert_eq!(journal.seq_for(DOC, ALICE), Some(second));
        assert_eq!(journal.live_records()[0].data, "v2");
    }

    #[test]
    fn reopen_recovers_live_records_in_seq_order() {
        let store = StableStore::new();
        let journal = WriteJournal::new(store.clone());
        journal.append(DOC, ALICE, NO_EPOCH, b"v1");
        journal.append(DocumentId(9), BOB, md5(b"base"), b"other");
        journal.append(DOC, ALICE, NO_EPOCH, b"v2");
        drop(journal); // crash: in-memory state is gone, the medium is not

        let (recovered, outcome) = WriteJournal::open(store);
        assert_eq!(outcome.scanned, 3, "all three records were intact");
        assert!(!outcome.truncated);
        assert_eq!(outcome.records.len(), 2, "deduplicated by key");
        assert_eq!(outcome.records[0].data, "other");
        assert_eq!(outcome.records[0].epoch, md5(b"base"));
        assert_eq!(outcome.records[1].data, "v2", "latest seq wins");
        let next = recovered.append(DOC, BOB, NO_EPOCH, b"new");
        assert!(next >= 3, "sequence numbering resumes past recovery");
    }

    #[test]
    fn torn_tail_is_truncated_and_prefix_recovered() {
        let store = StableStore::new();
        let journal = WriteJournal::new(store.clone());
        journal.append(DOC, ALICE, NO_EPOCH, b"intact one");
        let before = store.len();
        journal.append(DOC, BOB, NO_EPOCH, b"torn in flight");
        store.tear_tail((store.len() - before) / 2); // half the last record
        drop(journal);

        let (recovered, outcome) = WriteJournal::open(store.clone());
        assert!(outcome.truncated);
        assert!(outcome.torn_bytes > 0);
        assert_eq!(outcome.records.len(), 1);
        assert_eq!(outcome.records[0].data, "intact one");
        assert_eq!(
            store.len(),
            before,
            "the medium was truncated back to the intact prefix"
        );
        assert_eq!(recovered.len(), 1);
    }

    #[test]
    fn corrupt_checksum_stops_the_scan() {
        let store = StableStore::new();
        let journal = WriteJournal::new(store.clone());
        journal.append(DOC, ALICE, NO_EPOCH, b"good");
        let good_len = store.len();
        journal.append(DOC, BOB, NO_EPOCH, b"bad");
        // Flip a payload byte of the second record: framing is intact but
        // the checksum no longer matches.
        let mut image = store.contents();
        let flip = good_len as usize + HEADER_LEN;
        image[flip] ^= 0xFF;
        store.overwrite(&image);

        let (_, outcome) = WriteJournal::open(store);
        assert_eq!(outcome.records.len(), 1);
        assert_eq!(outcome.records[0].data, "good");
        assert!(outcome.truncated);
    }

    #[test]
    fn plain_append_is_byte_identical_to_the_v1_frame() {
        // The parity contract: a journal that never sees ops produces the
        // exact PR-4 medium image, byte for byte.
        let store = StableStore::new();
        let journal = WriteJournal::new(store.clone());
        journal.append(DOC, ALICE, md5(b"base"), b"payload");

        let mut v1 = Vec::new();
        v1.extend_from_slice(&0u64.to_le_bytes());
        v1.extend_from_slice(&DOC.0.to_le_bytes());
        v1.extend_from_slice(&ALICE.0.to_le_bytes());
        v1.extend_from_slice(&md5(b"base").0);
        v1.extend_from_slice(&(b"payload".len() as u32).to_le_bytes());
        v1.extend_from_slice(b"payload");
        let check = md5(&v1);
        v1.extend_from_slice(&check.0);
        assert_eq!(store.contents(), v1);
    }

    #[test]
    fn op_records_roundtrip_across_reopen() {
        use placeless_core::content::PropertyValue;
        let store = StableStore::new();
        let journal = WriteJournal::new(store.clone());
        let ops = vec![
            DocOp::Append(Bytes::from("tail")),
            DocOp::SetProperty {
                name: "color".into(),
                value: PropertyValue::Str("blue".into()),
            },
        ];
        journal.append_op(DOC, ALICE, md5(b"base"), b"base-tail", ops.clone(), 3);
        journal.append(DOC, BOB, NO_EPOCH, b"plain");
        drop(journal);

        let (_, outcome) = WriteJournal::open(store);
        assert_eq!(outcome.records.len(), 2);
        let alice = &outcome.records[0];
        assert_eq!(alice.data, "base-tail");
        assert_eq!(alice.ops, ops);
        assert_eq!(alice.writer_seq, 3);
        assert!(alice.rebasable());
        let bob = &outcome.records[1];
        assert!(bob.ops.is_empty());
        assert_eq!(bob.writer_seq, 0);
        assert!(!bob.rebasable());
    }

    #[test]
    fn torn_op_record_is_truncated_like_a_plain_one() {
        let store = StableStore::new();
        let journal = WriteJournal::new(store.clone());
        journal.append(DOC, ALICE, NO_EPOCH, b"intact");
        let before = store.len();
        journal.append_op(
            DOC,
            BOB,
            md5(b"base"),
            b"view",
            vec![DocOp::Append(Bytes::from("view"))],
            1,
        );
        store.tear_tail((store.len() - before) / 2);
        drop(journal);

        let (_, outcome) = WriteJournal::open(store);
        assert!(outcome.truncated);
        assert_eq!(outcome.records.len(), 1);
        assert_eq!(outcome.records[0].data, "intact");
    }

    #[test]
    fn empty_payload_and_large_payload_roundtrip() {
        let store = StableStore::new();
        let journal = WriteJournal::new(store.clone());
        journal.append(DOC, ALICE, NO_EPOCH, b"");
        let big = vec![0xAB; 10_000];
        journal.append(DOC, BOB, NO_EPOCH, &big);
        let (_, outcome) = WriteJournal::open(store);
        assert_eq!(outcome.records.len(), 2);
        assert_eq!(outcome.records[0].data.len(), 0);
        assert_eq!(outcome.records[1].data, big.as_slice());
    }
}
