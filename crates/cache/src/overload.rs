//! Overload control: deadline-aware admission, adaptive concurrency, and
//! graceful brownout.
//!
//! Under a traffic burst the failure mode of a naive cache is *congestive
//! collapse*: every reader queues on the per-origin
//! [`InflightWindow`](crate::singleflight::InflightWindow) forever, misses
//! its deadline anyway, and still consumes a thread, a queue slot, and —
//! eventually — origin capacity. This module turns that cliff into a
//! ladder of controlled degradation:
//!
//! 1. **Deadline-aware admission** — before a reader is allowed to queue
//!    for an origin slot, the expected completion time (queue depth ÷
//!    concurrency × observed service time) is compared against the
//!    reader's remaining deadline budget. Doomed work is shed immediately
//!    with the non-transient
//!    [`PlacelessError::Overloaded`](placeless_core::error::PlacelessError::Overloaded)
//!    instead of being served late.
//! 2. **AIMD concurrency limits** — each origin's in-flight window width
//!    adapts to observed fetch latency: additive increase while fetches
//!    meet the latency target, multiplicative decrease when they exceed
//!    it. A slow origin sheds load instead of accumulating queues.
//! 3. **Priority classes** — [`Priority::Foreground`] >
//!    [`Priority::Refresh`] > [`Priority::Prefetch`]; pressure sheds the
//!    lowest class first, so speculative sibling prefetches are the first
//!    casualties and interactive reads the last.
//! 4. **Brownout ladder** — sustained queue pressure walks
//!    [`BrownoutLevel`] upward (serve staler → skip stage-cache fills →
//!    shed prefetch → reject background work) and back down as pressure
//!    drains, with hysteresis and a minimum dwell between moves so the
//!    ladder cannot flap.
//!
//! Every decision is a pure function of the virtual clock, the queue
//! state, and the seeded configuration — shedding is deterministic and
//! replayable, which the overload proptests rely on.
//!
//! The subsystem is **opt-in**: `overload: None` (the default) leaves
//! every path byte-for-byte identical to the pre-overload cache, which
//! the parity tests pin.

use crate::resilience::StalenessBound;
use parking_lot::Mutex;
use placeless_simenv::Instant;
use std::collections::HashMap;

/// Scheduling class of a read, from most to least sheddable.
///
/// Ordering is by importance: `Prefetch < Refresh < Foreground`, so
/// "shed lowest first" is a plain `<` comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Speculative work (collection sibling prefetch): first to shed.
    Prefetch,
    /// Freshness maintenance (background revalidation): shed next.
    Refresh,
    /// An interactive user is waiting on this read: shed last.
    #[default]
    Foreground,
}

impl Priority {
    /// Stable lower-case label, used in stats tables and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Priority::Prefetch => "prefetch",
            Priority::Refresh => "refresh",
            Priority::Foreground => "foreground",
        }
    }
}

/// Rungs of the brownout ladder, from healthy to rejecting.
///
/// Each level implies every cheaper degradation below it: at
/// [`BrownoutLevel::ShedPrefetch`] the cache is also widening staleness
/// and skipping stage-cache fills.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum BrownoutLevel {
    /// No degradation.
    #[default]
    Normal,
    /// Serve stale copies within the configured brownout staleness bound
    /// instead of fetching.
    WidenStale,
    /// Compute stages but skip persisting intermediates to the stage
    /// cache (saves allocation and cache churn under pressure).
    SkipStageFills,
    /// Drop collection-sibling prefetches entirely.
    ShedPrefetch,
    /// Reject non-foreground misses outright with `Overloaded`;
    /// foreground reads remain subject to deadline-aware admission.
    Reject,
}

impl BrownoutLevel {
    const LADDER: [BrownoutLevel; 5] = [
        BrownoutLevel::Normal,
        BrownoutLevel::WidenStale,
        BrownoutLevel::SkipStageFills,
        BrownoutLevel::ShedPrefetch,
        BrownoutLevel::Reject,
    ];

    /// Numeric rung, 0 (normal) through 4 (reject).
    pub fn rung(self) -> u8 {
        self as u8
    }

    fn step_up(self) -> BrownoutLevel {
        let next = (self.rung() as usize + 1).min(Self::LADDER.len() - 1);
        Self::LADDER[next]
    }

    fn step_down(self) -> BrownoutLevel {
        let prev = (self.rung() as usize).saturating_sub(1);
        Self::LADDER[prev]
    }

    /// Whether stale serving should widen to the brownout bound.
    pub fn widens_stale(self) -> bool {
        self >= BrownoutLevel::WidenStale
    }

    /// Whether stage-cache fills should be skipped.
    pub fn skips_stage_fills(self) -> bool {
        self >= BrownoutLevel::SkipStageFills
    }

    /// Whether collection prefetch should be shed.
    pub fn sheds_prefetch(self) -> bool {
        self >= BrownoutLevel::ShedPrefetch
    }

    /// Whether non-foreground misses are rejected outright.
    pub fn rejects_background(self) -> bool {
        self >= BrownoutLevel::Reject
    }
}

/// Tuning for the overload subsystem; enable via
/// [`CacheConfig::overload`](crate::manager::CacheConfig::overload).
///
/// All times are virtual microseconds. The defaults suit the simulated
/// origins used in tests and experiments; production deployments should
/// start from the observed origin latency distribution (set
/// `target_fetch_micros` near the healthy p90) and the interactive
/// deadline (leave `expected_service_micros` at the healthy mean so cold
/// admission is neither credulous nor paranoid).
#[derive(Debug, Clone)]
pub struct OverloadConfig {
    /// AIMD latency target: fetches slower than this shrink the origin's
    /// window, faster ones grow it.
    pub target_fetch_micros: u64,
    /// Floor for the adaptive per-origin window.
    pub min_inflight: u32,
    /// Ceiling (and initial width) for the adaptive per-origin window.
    pub max_inflight: u32,
    /// Prior for expected service time before the per-origin EWMA warms.
    pub expected_service_micros: u64,
    /// Queue pressure (readers parked on origin windows) at or above
    /// which the brownout ladder steps up one rung.
    pub brownout_enter_waiters: u64,
    /// Pressure at or below which the ladder steps back down. Must be
    /// below `brownout_enter_waiters` to give the ladder hysteresis.
    pub brownout_exit_waiters: u64,
    /// Minimum virtual time between ladder moves (dwell), so one noisy
    /// sample cannot flap the level.
    pub brownout_dwell_micros: u64,
    /// Staleness bound used while the ladder is at
    /// [`BrownoutLevel::WidenStale`] or above; `None` falls back to the
    /// resilience `serve_stale` bound.
    pub brownout_stale: Option<StalenessBound>,
    /// `retry_after` hint attached to `Overloaded` rejections.
    pub retry_after_micros: u64,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        Self {
            target_fetch_micros: 5_000,
            min_inflight: 1,
            max_inflight: 8,
            expected_service_micros: 2_000,
            brownout_enter_waiters: 8,
            brownout_exit_waiters: 2,
            brownout_dwell_micros: 10_000,
            brownout_stale: None,
            retry_after_micros: 10_000,
        }
    }
}

impl OverloadConfig {
    /// Sets the AIMD latency target.
    pub fn target_fetch_micros(mut self, micros: u64) -> Self {
        self.target_fetch_micros = micros.max(1);
        self
    }

    /// Sets the adaptive window floor and ceiling (both clamped ≥ 1).
    pub fn inflight_bounds(mut self, min: u32, max: u32) -> Self {
        self.min_inflight = min.max(1);
        self.max_inflight = max.max(self.min_inflight);
        self
    }

    /// Sets the cold-start expected service time used by admission.
    pub fn expected_service_micros(mut self, micros: u64) -> Self {
        self.expected_service_micros = micros.max(1);
        self
    }

    /// Sets the brownout enter/exit pressure thresholds (hysteresis).
    pub fn brownout_waiters(mut self, enter: u64, exit: u64) -> Self {
        self.brownout_enter_waiters = enter.max(1);
        self.brownout_exit_waiters = exit.min(enter.saturating_sub(1));
        self
    }

    /// Sets the minimum virtual dwell between ladder moves.
    pub fn brownout_dwell_micros(mut self, micros: u64) -> Self {
        self.brownout_dwell_micros = micros;
        self
    }

    /// Sets the widened staleness bound for brownout stale serving.
    pub fn brownout_stale(mut self, bound: StalenessBound) -> Self {
        self.brownout_stale = Some(bound);
        self
    }

    /// Sets the `retry_after` hint attached to shed requests.
    pub fn retry_after_micros(mut self, micros: u64) -> Self {
        self.retry_after_micros = micros.max(1);
        self
    }
}

/// Expected completion time for a new arrival at an origin window:
/// `queued_ahead` readers are already parked, `limit` slots drain the
/// queue, and each service takes `service_micros`. The arrival completes
/// after its own service plus however many full drain rounds precede it.
///
/// This is the admission predicate's left-hand side: a reader whose
/// remaining deadline budget is smaller than this is doomed and gets
/// shed instead of queued.
pub fn expected_completion_micros(queued_ahead: u64, limit: u32, service_micros: u64) -> u64 {
    let rounds = queued_ahead / u64::from(limit.max(1)) + 1;
    rounds.saturating_mul(service_micros.max(1))
}

struct OriginControl {
    limit: u32,
    /// EWMA of observed fetch latency (µs); 0 means "no samples yet".
    ewma_micros: u64,
}

struct ControllerState {
    origins: HashMap<String, OriginControl>,
    level: BrownoutLevel,
    /// Virtual instant of the last ladder move, for dwell enforcement.
    shifted_at: Instant,
}

/// Runtime state of the overload subsystem: per-origin AIMD windows and
/// the brownout ladder. One per cache; all methods are thread-safe and
/// deterministic given the same sequence of (virtual time, observation)
/// inputs.
pub(crate) struct OverloadController {
    config: OverloadConfig,
    state: Mutex<ControllerState>,
}

impl OverloadController {
    pub(crate) fn new(config: OverloadConfig) -> Self {
        Self {
            state: Mutex::new(ControllerState {
                origins: HashMap::new(),
                level: BrownoutLevel::Normal,
                shifted_at: Instant(0),
            }),
            config,
        }
    }

    pub(crate) fn config(&self) -> &OverloadConfig {
        &self.config
    }

    /// Current expected service time for `origin` (EWMA, or the
    /// configured prior before any sample lands).
    pub(crate) fn expected_service_micros(&self, origin: &str) -> u64 {
        let state = self.state.lock();
        state
            .origins
            .get(origin)
            .map(|c| c.ewma_micros)
            .filter(|&e| e > 0)
            .unwrap_or(self.config.expected_service_micros)
            .max(1)
    }

    /// Records one completed fetch against `origin` and returns the new
    /// AIMD window width: multiplicative decrease when the observation
    /// exceeds the latency target, additive increase otherwise.
    pub(crate) fn observe_fetch(&self, origin: &str, observed_micros: u64) -> u32 {
        let mut state = self.state.lock();
        let control = state
            .origins
            .entry(origin.to_owned())
            .or_insert(OriginControl {
                limit: self.config.max_inflight,
                ewma_micros: 0,
            });
        control.ewma_micros = if control.ewma_micros == 0 {
            observed_micros.max(1)
        } else {
            // 3/4 old + 1/4 new: smooth enough to ride out one outlier,
            // fast enough to track a regime change within a few fetches.
            ((control.ewma_micros * 3 + observed_micros) / 4).max(1)
        };
        control.limit = if observed_micros > self.config.target_fetch_micros {
            (control.limit / 2).max(self.config.min_inflight)
        } else {
            (control.limit + 1).min(self.config.max_inflight)
        };
        control.limit
    }

    /// Current brownout level.
    pub(crate) fn level(&self) -> BrownoutLevel {
        self.state.lock().level
    }

    /// Feeds the ladder one pressure sample (`waiters` readers parked on
    /// origin windows) at virtual time `now`. Steps at most one rung per
    /// dwell period: up when pressure is at or above the enter
    /// threshold, down when at or below the exit threshold. Returns the
    /// `(from, to)` pair when the level moved, for stats accounting.
    pub(crate) fn observe_pressure(
        &self,
        now: Instant,
        waiters: u64,
    ) -> Option<(BrownoutLevel, BrownoutLevel)> {
        let mut state = self.state.lock();
        let dwelled = now.since(state.shifted_at) >= self.config.brownout_dwell_micros;
        if !dwelled && state.shifted_at.as_micros() != 0 {
            return None;
        }
        let from = state.level;
        let to = if waiters >= self.config.brownout_enter_waiters {
            from.step_up()
        } else if waiters <= self.config.brownout_exit_waiters {
            from.step_down()
        } else {
            from
        };
        if to == from {
            return None;
        }
        state.level = to;
        state.shifted_at = now;
        Some((from, to))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_orders_by_importance() {
        assert!(Priority::Prefetch < Priority::Refresh);
        assert!(Priority::Refresh < Priority::Foreground);
        assert_eq!(Priority::default(), Priority::Foreground);
        assert_eq!(Priority::Prefetch.label(), "prefetch");
    }

    #[test]
    fn ladder_steps_saturate_at_both_ends() {
        assert_eq!(BrownoutLevel::Normal.step_down(), BrownoutLevel::Normal);
        assert_eq!(BrownoutLevel::Reject.step_up(), BrownoutLevel::Reject);
        assert_eq!(
            BrownoutLevel::WidenStale.step_up(),
            BrownoutLevel::SkipStageFills
        );
        assert!(BrownoutLevel::Reject.widens_stale());
        assert!(BrownoutLevel::Reject.sheds_prefetch());
        assert!(!BrownoutLevel::WidenStale.skips_stage_fills());
    }

    #[test]
    fn expected_completion_counts_drain_rounds() {
        // Empty queue: one service time.
        assert_eq!(expected_completion_micros(0, 4, 1_000), 1_000);
        // 7 ahead, 4 slots: one full round ahead of us, then ours.
        assert_eq!(expected_completion_micros(7, 4, 1_000), 2_000);
        // Zero-width limits are clamped rather than dividing by zero.
        assert_eq!(expected_completion_micros(3, 0, 1_000), 4_000);
    }

    #[test]
    fn aimd_shrinks_on_slow_and_grows_on_fast() {
        let ctrl = OverloadController::new(
            OverloadConfig::default()
                .target_fetch_micros(1_000)
                .inflight_bounds(1, 8),
        );
        assert_eq!(ctrl.observe_fetch("o", 5_000), 4, "8/2 on a slow fetch");
        assert_eq!(ctrl.observe_fetch("o", 5_000), 2);
        assert_eq!(ctrl.observe_fetch("o", 5_000), 1);
        assert_eq!(ctrl.observe_fetch("o", 5_000), 1, "floored at min");
        assert_eq!(ctrl.observe_fetch("o", 100), 2, "+1 on a fast fetch");
        for _ in 0..10 {
            ctrl.observe_fetch("o", 100);
        }
        assert_eq!(ctrl.observe_fetch("o", 100), 8, "capped at max");
    }

    #[test]
    fn ewma_warms_from_prior_then_tracks() {
        let ctrl =
            OverloadController::new(OverloadConfig::default().expected_service_micros(2_000));
        assert_eq!(ctrl.expected_service_micros("o"), 2_000, "prior");
        ctrl.observe_fetch("o", 10_000);
        assert_eq!(ctrl.expected_service_micros("o"), 10_000, "first sample");
        ctrl.observe_fetch("o", 2_000);
        assert_eq!(ctrl.expected_service_micros("o"), 8_000, "(3·10k + 2k)/4");
    }

    #[test]
    fn ladder_has_hysteresis_and_dwell() {
        let ctrl = OverloadController::new(
            OverloadConfig::default()
                .brownout_waiters(8, 2)
                .brownout_dwell_micros(1_000),
        );
        // First sample may move immediately (nothing to dwell from).
        assert_eq!(
            ctrl.observe_pressure(Instant(10), 9),
            Some((BrownoutLevel::Normal, BrownoutLevel::WidenStale))
        );
        // Within the dwell: no move even under pressure.
        assert_eq!(ctrl.observe_pressure(Instant(500), 100), None);
        // After the dwell: one rung at a time.
        assert_eq!(
            ctrl.observe_pressure(Instant(1_100), 100),
            Some((BrownoutLevel::WidenStale, BrownoutLevel::SkipStageFills))
        );
        // Pressure between exit and enter thresholds: hold steady.
        assert_eq!(ctrl.observe_pressure(Instant(3_000), 5), None);
        assert_eq!(ctrl.level(), BrownoutLevel::SkipStageFills);
        // Pressure drains: step back down.
        assert_eq!(
            ctrl.observe_pressure(Instant(5_000), 0),
            Some((BrownoutLevel::SkipStageFills, BrownoutLevel::WidenStale))
        );
    }

    #[test]
    fn decisions_replay_identically() {
        let run = || {
            let ctrl = OverloadController::new(OverloadConfig::default());
            let mut log = Vec::new();
            for i in 0..200u64 {
                let observed = (i * 37) % 9_000;
                log.push(ctrl.observe_fetch("o", observed));
                log.push(u32::from(
                    ctrl.observe_pressure(Instant(i * 700), (i * 13) % 16)
                        .map(|(_, to)| to.rung())
                        .unwrap_or(99),
                ));
            }
            log
        };
        assert_eq!(run(), run(), "controller is a pure function of inputs");
    }
}
