//! Deterministic operation-based merge for concurrent write-back writes.
//!
//! PR 4's conflict story is binary: when a journaled write's base epoch no
//! longer matches the origin, a [`ConflictHook`] picks `KeepMine` (clobber
//! the origin) or `KeepTheirs` (drop the write) — either way one side's
//! edit is lost. This module is the third way the paper's collaborative
//! workloads need: when the journal recorded *typed operations*
//! ([`DocOp`]) rather than an opaque snapshot, a conflicted write is
//! **rebased** — its ops re-applied onto the origin's *current* content —
//! so both sides' edits survive.
//!
//! Determinism is the whole point: every cache that merges the same set of
//! contributions onto the same origin content must produce identical
//! bytes, regardless of arrival order. [`merge_onto`] therefore sorts
//! contributions into the canonical causal order — ascending
//! `(user, writer_seq, journal seq)` — and deduplicates replayed
//! contributions (same user, same writer sequence) before folding, making
//! the merge order-independent and idempotent.
//!
//! A full-body `Replace` op (or an op-less v1 record) pins the entire
//! document, so it cannot be rebased; those conflicts still drop to the
//! binary hook via [`MergePolicy::on_unmergeable`].

use crate::manager::{ConflictHook, ConflictResolution, WriteConflict};
use bytes::Bytes;
use placeless_core::id::UserId;
use placeless_core::op::{apply_all, rebasable, DocOp};
use std::fmt;

/// How the cache resolves write conflicts when typed ops are available.
///
/// Set on [`crate::CacheConfig::merge`]; `None` (the default) preserves
/// the PR-4 binary behaviour exactly — no probes, no rebases.
#[derive(Clone, Default)]
pub struct MergePolicy {
    /// Consulted for conflicts that cannot be rebased (op-less records,
    /// or op lists containing a full-body `Replace`). `None` falls back
    /// to [`ConflictResolution::KeepMine`], matching the PR-4 default.
    pub on_unmergeable: Option<ConflictHook>,
}

impl MergePolicy {
    /// A merge policy with the default keep-mine fallback.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the binary fallback hook for unmergeable conflicts.
    pub fn on_unmergeable(mut self, hook: ConflictHook) -> Self {
        self.on_unmergeable = Some(hook);
        self
    }

    /// Resolves a conflict that could not be rebased: the configured
    /// fallback hook, or keep-mine.
    pub fn resolve_unmergeable(&self, conflict: &WriteConflict) -> ConflictResolution {
        match &self.on_unmergeable {
            Some(hook) => hook(conflict),
            None => ConflictResolution::KeepMine,
        }
    }
}

impl fmt::Debug for MergePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MergePolicy")
            .field(
                "on_unmergeable",
                &self.on_unmergeable.as_ref().map(|_| "<hook>"),
            )
            .finish()
    }
}

/// One writer's contribution to a merge: the typed ops it accumulated
/// since its base epoch, plus the causal coordinates that order it.
#[derive(Debug, Clone, PartialEq)]
pub struct Contribution {
    /// The writing user.
    pub user: UserId,
    /// Per-`(doc, user)` causal sequence at the time of the write.
    pub writer_seq: u64,
    /// Journal-wide sequence number (tie-breaker of last resort).
    pub seq: u64,
    /// The ops, oldest first.
    pub ops: Vec<DocOp>,
}

impl Contribution {
    fn causal_key(&self) -> (u64, u64, u64) {
        (self.user.0, self.writer_seq, self.seq)
    }

    /// True when this contribution can be rebased onto a foreign base.
    pub fn rebasable(&self) -> bool {
        rebasable(&self.ops)
    }
}

/// Sorts contributions into the canonical causal order — ascending
/// `(user, writer_seq, seq)` — and drops replayed duplicates (same user
/// and writer sequence). This is what makes the merge order-independent
/// and idempotent: any permutation, with any contribution repeated,
/// canonicalizes to the same list.
pub fn canonical_order(mut contributions: Vec<Contribution>) -> Vec<Contribution> {
    contributions.sort_by_key(Contribution::causal_key);
    contributions.dedup_by_key(|c| (c.user.0, c.writer_seq));
    contributions
}

/// Rebases every contribution onto `origin` in canonical order, returning
/// the merged content and how many individual ops were re-applied.
///
/// The caller is responsible for only passing rebasable contributions
/// (see [`Contribution::rebasable`]); a full-body `Replace` in the fold
/// would silently discard every contribution ordered before it.
pub fn merge_onto(origin: &Bytes, contributions: Vec<Contribution>) -> (Bytes, u64) {
    let canonical = canonical_order(contributions);
    let mut view = origin.clone();
    let mut rebases = 0;
    for c in &canonical {
        view = apply_all(&view, &c.ops);
        rebases += c.ops.len() as u64;
    }
    (view, rebases)
}

/// What the merge machinery did during one recovery or flush.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MergeReport {
    /// Conflicts routed through the merge policy.
    pub examined: u64,
    /// Conflicts resolved by rebasing ops onto the origin's content.
    pub merged: u64,
    /// Individual ops re-applied across all merges.
    pub rebases: u64,
    /// Unmergeable conflicts resolved by keeping the journaled write.
    pub kept_mine: u64,
    /// Unmergeable conflicts resolved by keeping the origin's version
    /// (the journaled write was dropped and acknowledged).
    pub kept_theirs: u64,
}

impl MergeReport {
    /// True when no conflict was routed through the policy.
    pub fn is_empty(&self) -> bool {
        self == &Self::default()
    }

    /// Folds another report into this one.
    pub fn absorb(&mut self, other: &MergeReport) {
        self.examined += other.examined;
        self.merged += other.merged;
        self.rebases += other.rebases;
        self.kept_mine += other.kept_mine;
        self.kept_theirs += other.kept_theirs;
    }
}

impl fmt::Display for MergeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} conflict(s) examined: {} merged ({} op(s) rebased), {} kept mine, {} kept theirs",
            self.examined, self.merged, self.rebases, self.kept_mine, self.kept_theirs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use placeless_core::id::DocumentId;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn contrib(user: u64, writer_seq: u64, seq: u64, ops: Vec<DocOp>) -> Contribution {
        Contribution {
            user: UserId(user),
            writer_seq,
            seq,
            ops,
        }
    }

    #[test]
    fn merge_is_order_independent() {
        let origin = b("base;");
        let a = contrib(1, 1, 10, vec![DocOp::Append(b("alice;"))]);
        let bb = contrib(2, 1, 11, vec![DocOp::Append(b("bob;"))]);
        let (fwd, _) = merge_onto(&origin, vec![a.clone(), bb.clone()]);
        let (rev, _) = merge_onto(&origin, vec![bb, a]);
        assert_eq!(fwd, rev);
        assert_eq!(fwd, b("base;alice;bob;"));
    }

    #[test]
    fn merge_is_idempotent_under_replay() {
        let origin = b("v:");
        let a = contrib(1, 1, 10, vec![DocOp::Append(b("x"))]);
        let (once, rebases_once) = merge_onto(&origin, vec![a.clone()]);
        let (twice, rebases_twice) = merge_onto(&origin, vec![a.clone(), a]);
        assert_eq!(once, twice, "a replayed contribution folds once");
        assert_eq!(rebases_once, rebases_twice);
    }

    #[test]
    fn canonical_order_sorts_by_user_then_writer_seq() {
        let list = vec![
            contrib(2, 1, 5, vec![]),
            contrib(1, 2, 9, vec![]),
            contrib(1, 1, 7, vec![]),
        ];
        let ordered = canonical_order(list);
        let keys: Vec<_> = ordered.iter().map(Contribution::causal_key).collect();
        assert_eq!(keys, vec![(1, 1, 7), (1, 2, 9), (2, 1, 5)]);
    }

    #[test]
    fn unmergeable_resolution_defaults_to_keep_mine() {
        let conflict = WriteConflict {
            doc: DocumentId(1),
            user: UserId(1),
            journal_epoch: crate::journal::NO_EPOCH,
            origin_signature: crate::digest::md5(b"x"),
        };
        assert_eq!(
            MergePolicy::new().resolve_unmergeable(&conflict),
            ConflictResolution::KeepMine
        );
        let theirs = MergePolicy::new()
            .on_unmergeable(std::sync::Arc::new(|_| ConflictResolution::KeepTheirs));
        assert_eq!(
            theirs.resolve_unmergeable(&conflict),
            ConflictResolution::KeepTheirs
        );
    }

    #[test]
    fn report_display_and_absorb() {
        let mut a = MergeReport {
            examined: 2,
            merged: 1,
            rebases: 3,
            kept_mine: 1,
            kept_theirs: 0,
        };
        let b = MergeReport {
            examined: 1,
            merged: 0,
            rebases: 0,
            kept_mine: 0,
            kept_theirs: 1,
        };
        a.absorb(&b);
        assert_eq!(
            a.to_string(),
            "3 conflict(s) examined: 1 merged (3 op(s) rebased), 1 kept mine, 1 kept theirs"
        );
        assert!(MergeReport::default().is_empty());
        assert!(!a.is_empty());
    }
}
