//! # Caching architecture for Placeless Documents
//!
//! Implements the paper's §3 caching design in full:
//!
//! * [`manager::DocumentCache`] — the application-level cache: hit/miss
//!   paths, verifier execution on hits, notifier-driven invalidation,
//!   cacheability enforcement with operation-event forwarding, and
//!   write-through / write-back modes. Sharded for concurrent readers
//!   (see the module docs for the lock-ordering argument); configured via
//!   [`manager::CacheConfig::builder`].
//! * [`store::ConcurrentStore`] — striped, refcounted
//!   `signature → content` storage with atomic byte accounting, so
//!   identical renditions share bytes across shards and users.
//! * [`keys::SharedStore`] — the single-threaded predecessor mapping,
//!   kept for reference models and microbenchmarks.
//! * [`digest`] — in-tree MD5 (RFC 1321) content signatures (re-exported
//!   from `placeless_core`, where the plan compiler also derives per-stage
//!   signatures from them).
//! * [`policy`] — Greedy-Dual-Size driven by property-supplied replacement
//!   costs, plus LRU / LFU / SIZE / FIFO / GD(1) baselines; policies are
//!   built per shard from a cloneable [`policy::PolicyFactory`] and fed
//!   [`policy::EntryAttrs`] at insert time.
//! * [`resilience::ResilienceConfig`] — the resilient-fetch policy:
//!   bounded retries with deterministic backoff, per-origin circuit
//!   breakers, and serve-stale degradation within a
//!   [`resilience::StalenessBound`]; all off by default.
//! * [`overload::OverloadConfig`] — overload control: deadline-aware
//!   admission against per-origin queues, AIMD concurrency limits,
//!   priority-class shedding, and a brownout ladder; off by default.
//! * [`stats::CacheStats`] — the counters every experiment reports
//!   (accumulated lock-free in [`stats::AtomicCacheStats`]).

pub use placeless_core::digest;

pub mod entry;
pub mod journal;
pub mod keys;
pub mod manager;
pub mod merge;
pub mod overload;
pub mod policy;
pub mod prefetch;
pub mod resilience;
pub mod singleflight;
pub mod stats;
pub mod store;

pub use digest::{md5, Md5, Signature};
pub use journal::{JournalRecord, ReplayOutcome, WriteJournal, NO_EPOCH};
pub use keys::SharedStore;
pub use manager::{
    default_shard_count, CacheConfig, CacheConfigBuilder, ConflictHook, ConflictResolution,
    DocumentCache, FlushReport, HitClass, ReadOptions, ReadOutcome, RecoveryReport, WriteConflict,
    WriteMode,
};
pub use merge::{Contribution, MergePolicy, MergeReport};
pub use overload::{expected_completion_micros, BrownoutLevel, OverloadConfig, Priority};
pub use policy::{
    by_name, EntryAttrs, EntryKey, GdsFrequency, GreedyDualSize, PolicyFactory, ReplacementPolicy,
    UnknownPolicy, ALL_POLICIES, STAGE_COST_DISCOUNT, STAGE_PIN_LEVEL,
};
pub use prefetch::PrefetchConfig;
pub use resilience::{
    retry_floor, Admission, BreakerConfig, BreakerSet, BreakerState, ResilienceConfig,
    ResilienceConfigBuilder, StalenessBound,
};
pub use stats::CacheStats;
pub use store::ConcurrentStore;
