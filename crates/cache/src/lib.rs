//! # Caching architecture for Placeless Documents
//!
//! Implements the paper's §3 caching design in full:
//!
//! * [`manager::DocumentCache`] — the application-level cache: hit/miss
//!   paths, verifier execution on hits, notifier-driven invalidation,
//!   cacheability enforcement with operation-event forwarding, and
//!   write-through / write-back modes.
//! * [`keys::SharedStore`] — `(document, user) → signature → content`
//!   mapping so users with identical transforms share bytes.
//! * [`digest`] — in-tree MD5 (RFC 1321) content signatures.
//! * [`policy`] — Greedy-Dual-Size driven by property-supplied replacement
//!   costs, plus LRU / LFU / SIZE / FIFO / GD(1) baselines.
//! * [`stats::CacheStats`] — the counters every experiment reports.

pub mod digest;
pub mod entry;
pub mod keys;
pub mod manager;
pub mod policy;
pub mod prefetch;
pub mod stats;

pub use digest::{md5, Md5, Signature};
pub use keys::SharedStore;
pub use manager::{CacheConfig, DocumentCache, WriteMode};
pub use prefetch::PrefetchConfig;
pub use policy::{by_name, EntryKey, GdsFrequency, GreedyDualSize, ReplacementPolicy, ALL_POLICIES};
pub use stats::CacheStats;
