//! Cache entry metadata.
//!
//! The bytes themselves live in the signature-deduplicated
//! [`crate::keys::SharedStore`]; an [`EntryMeta`] carries everything else
//! the read path shipped with them: verifiers, the cacheability indicator,
//! the replacement cost, and bookkeeping.

use placeless_core::cacheability::Cacheability;
use placeless_core::verifier::Verifier;
use placeless_simenv::Instant;

/// Metadata for one resident `(document, user)` entry.
pub struct EntryMeta {
    /// Verifiers executed on every hit.
    pub verifiers: Vec<Box<dyn Verifier>>,
    /// How the entry may be served.
    pub cacheability: Cacheability,
    /// Effective replacement cost (µs) supplied by the read path.
    pub cost_micros: f64,
    /// Content size in bytes.
    pub size: u64,
    /// When the entry was filled.
    pub filled_at: Instant,
    /// Hits served from this entry since the fill.
    pub hits: u64,
    /// Whether a QoS property pinned this entry (never evicted).
    pub pinned: bool,
    /// Whether the entry was filled by a prefetch rather than a miss.
    pub prefetched: bool,
    /// Set when a dropped invalidation may have covered this entry: the
    /// notifier guarantee is void, so verifiers must run on the next hit
    /// even if the cache normally skips them. Cleared once a verification
    /// passes.
    pub force_verify: bool,
}

impl EntryMeta {
    /// Creates entry metadata.
    pub fn new(
        verifiers: Vec<Box<dyn Verifier>>,
        cacheability: Cacheability,
        cost_micros: f64,
        size: u64,
        filled_at: Instant,
    ) -> Self {
        Self {
            verifiers,
            cacheability,
            cost_micros,
            size,
            filled_at,
            hits: 0,
            pinned: false,
            prefetched: false,
            force_verify: false,
        }
    }

    /// Returns the total verifier probe cost per hit, in microseconds.
    pub fn verify_cost_micros(&self) -> u64 {
        self.verifiers.iter().map(|v| v.cost_micros()).sum()
    }
}

impl std::fmt::Debug for EntryMeta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EntryMeta")
            .field("verifiers", &self.verifiers.len())
            .field("cacheability", &self.cacheability)
            .field("cost_micros", &self.cost_micros)
            .field("size", &self.size)
            .field("filled_at", &self.filled_at)
            .field("hits", &self.hits)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use placeless_core::verifier::{ClosureVerifier, Validity};

    #[test]
    fn verify_cost_sums_probes() {
        let meta = EntryMeta::new(
            vec![
                ClosureVerifier::new("a", 3, |_| Validity::Valid),
                ClosureVerifier::new("b", 7, |_| Validity::Valid),
            ],
            Cacheability::Unrestricted,
            1_000.0,
            42,
            Instant(5),
        );
        assert_eq!(meta.verify_cost_micros(), 10);
        assert_eq!(meta.hits, 0);
        assert_eq!(meta.size, 42);
    }

    #[test]
    fn debug_does_not_require_verifier_debug() {
        let meta = EntryMeta::new(
            vec![],
            Cacheability::CacheableWithEvents,
            0.0,
            0,
            Instant(0),
        );
        let s = format!("{meta:?}");
        assert!(s.contains("CacheableWithEvents"));
    }
}
