//! Resilient fetch policy: retries, circuit breakers, serve-stale bounds.
//!
//! The paper's cache assumes the middleware answers every read. Under the
//! fault plans scripted by `placeless_simenv::fault`, it doesn't — so the
//! cache needs a policy for *transient* failures ([`PlacelessError::
//! is_transient`]): how many times to retry, how long to back off, when to
//! stop contacting a dead origin altogether, and whether a resident-but-
//! unverifiable entry may be served anyway.
//!
//! Everything here is deterministic over the virtual clock. Backoff jitter
//! comes from a seeded [`SimRng`], delays are charged with
//! `clock.advance`, and breaker state transitions key off `clock.now()` —
//! two runs with the same seed produce byte-identical schedules and
//! [`crate::stats::CacheStats`].
//!
//! The default [`ResilienceConfig`] disables every mechanism, so a cache
//! built without [`crate::manager::CacheConfigBuilder::resilience`] behaves
//! exactly as it did before this module existed.

use parking_lot::Mutex;
use placeless_simenv::{Instant, SimRng};
use std::collections::HashMap;

/// How long a resident entry may be served past a failed freshness check.
///
/// Age is measured from the entry's fill time. `StalenessBound::ZERO`
/// permits nothing; use [`StalenessBound::micros`] for a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StalenessBound {
    /// Maximum entry age, in virtual microseconds, at which stale service
    /// is still acceptable.
    pub max_age_micros: u64,
}

impl StalenessBound {
    /// No stale service at all.
    pub const ZERO: Self = Self { max_age_micros: 0 };

    /// Any age is acceptable (used by per-read `allow_stale` opt-ins that
    /// name no window of their own).
    pub const UNBOUNDED: Self = Self {
        max_age_micros: u64::MAX,
    };

    /// Allows serving entries up to `max_age_micros` old.
    pub fn micros(max_age_micros: u64) -> Self {
        Self { max_age_micros }
    }

    /// Returns `true` if an entry filled at `filled_at` may still be
    /// served at `now`.
    pub fn permits(&self, filled_at: Instant, now: Instant) -> bool {
        now.as_micros().saturating_sub(filled_at.as_micros()) <= self.max_age_micros
    }
}

/// Per-origin circuit breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive transient failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long (virtual µs) an open breaker rejects without probing.
    pub open_micros: u64,
    /// Successful half-open probes required to close again.
    pub half_open_probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 3,
            open_micros: 500_000,
            half_open_probes: 1,
        }
    }
}

/// The resilient-fetch policy attached to a cache.
///
/// Built with [`ResilienceConfig::builder`]; the [`Default`] turns every
/// mechanism off (no retries, no breaker, no stale service, no deadline).
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Retries after the first failed fetch attempt (0 = fail fast).
    pub max_retries: u32,
    /// Base backoff before retry *n* is `backoff_base_micros << n`.
    pub backoff_base_micros: u64,
    /// Jitter added per backoff, as a fraction of the base delay in
    /// 1/256ths (e.g. 64 ≈ ±25 %). Sampled from the seeded RNG.
    pub backoff_jitter_frac: u8,
    /// Seed for the backoff-jitter RNG; same seed → same schedule.
    pub retry_seed: u64,
    /// Total virtual-time budget for one fetch including backoffs, or
    /// `None` for unbounded. Exceeding it aborts with `Timeout`.
    pub fetch_deadline_micros: Option<u64>,
    /// Per-origin circuit breaker, or `None` to always contact origins.
    pub breaker: Option<BreakerConfig>,
    /// Stale-service window, or `None` to never serve unverified bytes.
    pub serve_stale: Option<StalenessBound>,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self {
            max_retries: 0,
            backoff_base_micros: 1_000,
            backoff_jitter_frac: 0,
            retry_seed: 0,
            fetch_deadline_micros: None,
            breaker: None,
            serve_stale: None,
        }
    }
}

impl ResilienceConfig {
    /// Starts a builder with everything disabled.
    pub fn builder() -> ResilienceConfigBuilder {
        ResilienceConfigBuilder {
            config: Self::default(),
        }
    }

    /// Returns `true` if no mechanism is enabled — the cache can skip the
    /// resilience machinery entirely and behave exactly as the seed did.
    pub fn is_noop(&self) -> bool {
        self.max_retries == 0
            && self.fetch_deadline_micros.is_none()
            && self.breaker.is_none()
            && self.serve_stale.is_none()
    }

    /// The longest single backoff this config's schedule could ever
    /// grant (the final attempt's delay at maximum jitter), in virtual
    /// µs. A provider `retry_after` hint beyond this horizon means the
    /// origin will not be back within any wait the retry loop is
    /// prepared to make — the loop gives up immediately instead of
    /// burning attempts it was told would fail, or stalling the read for
    /// the whole advertised outage.
    pub fn hint_horizon_micros(&self) -> u64 {
        let exp = self.max_retries.saturating_sub(1).min(20);
        let base = self.backoff_base_micros.saturating_mul(1 << exp);
        base.saturating_add(base * u64::from(self.backoff_jitter_frac) / 256)
    }
}

/// Builder for [`ResilienceConfig`].
#[derive(Debug, Clone)]
pub struct ResilienceConfigBuilder {
    config: ResilienceConfig,
}

impl ResilienceConfigBuilder {
    /// Retries after the first failed attempt.
    pub fn max_retries(mut self, n: u32) -> Self {
        self.config.max_retries = n;
        self
    }

    /// Base backoff delay (doubled per attempt) in virtual µs.
    pub fn backoff_base_micros(mut self, micros: u64) -> Self {
        self.config.backoff_base_micros = micros;
        self
    }

    /// Jitter per backoff in 1/256ths of the delay (0 = none, 64 ≈ 25 %).
    pub fn backoff_jitter_frac(mut self, frac: u8) -> Self {
        self.config.backoff_jitter_frac = frac;
        self
    }

    /// Seeds the jitter RNG for reproducible schedules.
    pub fn retry_seed(mut self, seed: u64) -> Self {
        self.config.retry_seed = seed;
        self
    }

    /// Caps one fetch (attempts + backoffs) at `micros` of virtual time.
    pub fn fetch_deadline_micros(mut self, micros: u64) -> Self {
        self.config.fetch_deadline_micros = Some(micros);
        self
    }

    /// Enables per-origin circuit breakers.
    pub fn breaker(mut self, breaker: BreakerConfig) -> Self {
        self.config.breaker = Some(breaker);
        self
    }

    /// Permits serving resident entries within `bound` when the origin is
    /// unreachable or the freshness check cannot run.
    pub fn serve_stale(mut self, bound: StalenessBound) -> Self {
        self.config.serve_stale = Some(bound);
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> ResilienceConfig {
        self.config
    }
}

/// A circuit breaker's externally visible state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; failures are counted.
    Closed,
    /// Fetches are rejected without contacting the origin until the
    /// cool-down elapses.
    Open,
    /// Cool-down elapsed: a limited number of probe fetches go through;
    /// success closes the breaker, failure re-opens it.
    HalfOpen,
}

/// One origin's breaker bookkeeping.
#[derive(Debug)]
struct Breaker {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Instant,
    half_open_successes: u32,
}

impl Breaker {
    fn new() -> Self {
        Self {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: Instant(0),
            half_open_successes: 0,
        }
    }
}

/// The verdict of [`BreakerSet::admit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Contact the origin normally.
    Allow,
    /// Contact the origin as a half-open probe.
    Probe,
    /// Do not contact the origin; `retry_after` is the remaining
    /// cool-down in virtual µs.
    Reject {
        /// Remaining cool-down before the breaker half-opens.
        retry_after: u64,
    },
}

/// Circuit breakers keyed by origin, shared by every shard of a cache.
///
/// All transitions are driven by the virtual clock, so breaker behaviour
/// replays exactly under a fixed fault plan.
#[derive(Debug, Default)]
pub struct BreakerSet {
    breakers: Mutex<HashMap<String, Breaker>>,
    trips: Mutex<u64>,
}

impl BreakerSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Asks whether a fetch against `origin` may proceed at `now`.
    ///
    /// An `Open` breaker whose cool-down has elapsed transitions to
    /// `HalfOpen` here and admits the caller as a probe.
    pub fn admit(&self, config: &BreakerConfig, origin: &str, now: Instant) -> Admission {
        let mut breakers = self.breakers.lock();
        let breaker = breakers
            .entry(origin.to_owned())
            .or_insert_with(Breaker::new);
        match breaker.state {
            BreakerState::Closed => Admission::Allow,
            BreakerState::HalfOpen => Admission::Probe,
            BreakerState::Open => {
                let elapsed = now
                    .as_micros()
                    .saturating_sub(breaker.opened_at.as_micros());
                if elapsed >= config.open_micros {
                    breaker.state = BreakerState::HalfOpen;
                    breaker.half_open_successes = 0;
                    Admission::Probe
                } else {
                    Admission::Reject {
                        retry_after: config.open_micros - elapsed,
                    }
                }
            }
        }
    }

    /// Records a successful fetch against `origin`.
    pub fn record_success(&self, config: &BreakerConfig, origin: &str) {
        let mut breakers = self.breakers.lock();
        let breaker = breakers
            .entry(origin.to_owned())
            .or_insert_with(Breaker::new);
        match breaker.state {
            BreakerState::Closed => breaker.consecutive_failures = 0,
            BreakerState::HalfOpen => {
                breaker.half_open_successes += 1;
                if breaker.half_open_successes >= config.half_open_probes {
                    breaker.state = BreakerState::Closed;
                    breaker.consecutive_failures = 0;
                }
            }
            // A success while open can only come from a fetch admitted
            // before the breaker tripped; it doesn't close anything.
            BreakerState::Open => {}
        }
    }

    /// Records a transient fetch failure against `origin` at `now`.
    /// Returns `true` if this failure tripped the breaker open.
    pub fn record_failure(&self, config: &BreakerConfig, origin: &str, now: Instant) -> bool {
        let mut breakers = self.breakers.lock();
        let breaker = breakers
            .entry(origin.to_owned())
            .or_insert_with(Breaker::new);
        match breaker.state {
            BreakerState::Closed => {
                breaker.consecutive_failures += 1;
                if breaker.consecutive_failures >= config.failure_threshold {
                    breaker.state = BreakerState::Open;
                    breaker.opened_at = now;
                    *self.trips.lock() += 1;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                // A failed probe re-opens immediately and restarts the
                // cool-down.
                breaker.state = BreakerState::Open;
                breaker.opened_at = now;
                *self.trips.lock() += 1;
                true
            }
            BreakerState::Open => false,
        }
    }

    /// Returns `origin`'s current state (Closed if never seen).
    pub fn state(&self, origin: &str) -> BreakerState {
        self.breakers
            .lock()
            .get(origin)
            .map(|b| b.state)
            .unwrap_or(BreakerState::Closed)
    }

    /// Returns how many times any breaker tripped open.
    pub fn trip_count(&self) -> u64 {
        *self.trips.lock()
    }
}

/// The deterministic backoff schedule for one fetch.
///
/// Delay before retry *n* (0-based) is `base << n`, plus a jitter sampled
/// from the seeded RNG: `delay * jitter_frac/256` scaled by a uniform
/// sample. Same seed, same sequence of calls → identical delays.
#[derive(Debug)]
pub struct BackoffSchedule {
    base: u64,
    jitter_frac: u8,
    rng: SimRng,
}

impl BackoffSchedule {
    /// Creates a schedule from the config, deriving the RNG from
    /// `config.retry_seed` xor a per-fetch salt (e.g. the document id) so
    /// concurrent fetches don't share a jitter stream.
    pub fn new(config: &ResilienceConfig, salt: u64) -> Self {
        Self {
            base: config.backoff_base_micros,
            jitter_frac: config.backoff_jitter_frac,
            rng: SimRng::seeded(config.retry_seed ^ salt ^ 0xBAC0_FF5E_BAC0_FF5E),
        }
    }

    /// Creates a schedule salted by an origin key instead of a per-fetch
    /// id, so one deterministic jitter stream covers a whole per-origin
    /// flush group regardless of which entries happen to be in it. The
    /// salt is an FNV-1a hash of the key — stable across processes,
    /// unlike the std hasher, which the same-seed-replay guarantee
    /// forbids.
    pub fn for_origin(config: &ResilienceConfig, origin: &str) -> Self {
        let mut salt: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in origin.as_bytes() {
            salt ^= u64::from(*byte);
            salt = salt.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::new(config, salt)
    }

    /// Returns the delay in virtual µs before retry `attempt` (0-based),
    /// consuming one RNG sample when jitter is enabled.
    pub fn delay_micros(&mut self, attempt: u32) -> u64 {
        let exp = attempt.min(20); // cap the shift; delays beyond 2^20×base are academic
        let base = self.base.saturating_mul(1 << exp);
        if self.jitter_frac == 0 || base == 0 {
            return base;
        }
        let span = base * u64::from(self.jitter_frac) / 256;
        if span == 0 {
            return base;
        }
        base + self.rng.next_below(span + 1)
    }
}

/// Extracts the provider's `retry_after` hint from a transient failure,
/// in virtual µs (0 when the error carries none). Retry loops use it as
/// a **floor** for the next backoff wait: when the origin said how long
/// its outage lasts, retrying sooner is a guaranteed-wasted attempt, so
/// the wait is `max(backoff, hint)` — never shorter than the hint, and
/// never shorter than the schedule either. A hint beyond
/// [`ResilienceConfig::hint_horizon_micros`] makes the loop give up at
/// once instead (see there).
pub fn retry_floor(error: &placeless_core::error::PlacelessError) -> u64 {
    match error {
        placeless_core::error::PlacelessError::Unavailable {
            retry_after: Some(hint),
            ..
        } => *hint,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_noop() {
        let config = ResilienceConfig::default();
        assert!(config.is_noop());
        let built = ResilienceConfig::builder().build();
        assert!(built.is_noop());
        assert!(!ResilienceConfig::builder().max_retries(1).build().is_noop());
        assert!(!ResilienceConfig::builder()
            .serve_stale(StalenessBound::micros(1))
            .build()
            .is_noop());
    }

    #[test]
    fn retry_floor_reads_only_unavailable_hints() {
        use placeless_core::error::PlacelessError;
        let hinted = PlacelessError::Unavailable {
            source: "o".into(),
            retry_after: Some(7_500),
        };
        let unhinted = PlacelessError::Unavailable {
            source: "o".into(),
            retry_after: None,
        };
        let timeout = PlacelessError::Timeout {
            source: "o".into(),
            elapsed_micros: 9,
        };
        assert_eq!(retry_floor(&hinted), 7_500);
        assert_eq!(retry_floor(&unhinted), 0);
        assert_eq!(retry_floor(&timeout), 0, "timeouts carry no hint");
    }

    #[test]
    fn hint_horizon_is_the_final_attempts_maximum_delay() {
        let config = ResilienceConfig::builder()
            .max_retries(3)
            .backoff_base_micros(1_000)
            .build();
        // Final (0-based) retry is attempt 2: 1_000 << 2, no jitter.
        assert_eq!(config.hint_horizon_micros(), 4_000);
        let jittered = ResilienceConfig::builder()
            .max_retries(3)
            .backoff_base_micros(1_000)
            .backoff_jitter_frac(64)
            .build();
        assert_eq!(jittered.hint_horizon_micros(), 5_000, "max jitter included");
        let fail_fast = ResilienceConfig::builder()
            .backoff_base_micros(1_000)
            .build();
        assert_eq!(
            fail_fast.hint_horizon_micros(),
            1_000,
            "zero retries still report the base horizon"
        );
    }

    #[test]
    fn staleness_bound_measures_from_fill() {
        let bound = StalenessBound::micros(1_000);
        assert!(bound.permits(Instant(500), Instant(1_500)));
        assert!(!bound.permits(Instant(500), Instant(1_501)));
        assert!(StalenessBound::ZERO.permits(Instant(5), Instant(5)));
        assert!(!StalenessBound::ZERO.permits(Instant(5), Instant(6)));
    }

    #[test]
    fn breaker_trips_after_threshold_and_recovers() {
        let config = BreakerConfig {
            failure_threshold: 2,
            open_micros: 1_000,
            half_open_probes: 1,
        };
        let set = BreakerSet::new();
        assert_eq!(set.admit(&config, "web", Instant(0)), Admission::Allow);
        assert!(!set.record_failure(&config, "web", Instant(10)));
        assert!(
            set.record_failure(&config, "web", Instant(20)),
            "second failure trips"
        );
        assert_eq!(set.state("web"), BreakerState::Open);
        assert_eq!(set.trip_count(), 1);

        // While open, fetches are rejected with the remaining cool-down.
        assert_eq!(
            set.admit(&config, "web", Instant(120)),
            Admission::Reject { retry_after: 900 }
        );

        // After the cool-down, one probe is admitted.
        assert_eq!(set.admit(&config, "web", Instant(1_020)), Admission::Probe);
        assert_eq!(set.state("web"), BreakerState::HalfOpen);
        set.record_success(&config, "web");
        assert_eq!(set.state("web"), BreakerState::Closed);
        assert_eq!(set.admit(&config, "web", Instant(1_030)), Admission::Allow);
    }

    #[test]
    fn failed_probe_reopens_the_breaker() {
        let config = BreakerConfig {
            failure_threshold: 1,
            open_micros: 100,
            half_open_probes: 1,
        };
        let set = BreakerSet::new();
        assert!(set.record_failure(&config, "dms", Instant(0)));
        assert_eq!(set.admit(&config, "dms", Instant(100)), Admission::Probe);
        assert!(
            set.record_failure(&config, "dms", Instant(110)),
            "probe failed"
        );
        assert_eq!(set.state("dms"), BreakerState::Open);
        assert_eq!(
            set.admit(&config, "dms", Instant(150)),
            Admission::Reject { retry_after: 60 },
            "cool-down restarted at the failed probe"
        );
        assert_eq!(set.trip_count(), 2);
    }

    #[test]
    fn breakers_are_per_origin() {
        let config = BreakerConfig {
            failure_threshold: 1,
            open_micros: 1_000,
            half_open_probes: 1,
        };
        let set = BreakerSet::new();
        set.record_failure(&config, "web-a", Instant(0));
        assert_eq!(set.state("web-a"), BreakerState::Open);
        assert_eq!(set.state("web-b"), BreakerState::Closed);
        assert_eq!(set.admit(&config, "web-b", Instant(1)), Admission::Allow);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let config = BreakerConfig {
            failure_threshold: 2,
            open_micros: 1_000,
            half_open_probes: 1,
        };
        let set = BreakerSet::new();
        set.record_failure(&config, "web", Instant(0));
        set.record_success(&config, "web");
        assert!(
            !set.record_failure(&config, "web", Instant(10)),
            "streak restarted after the success"
        );
        assert_eq!(set.state("web"), BreakerState::Closed);
    }

    #[test]
    fn multiple_half_open_probes_required_when_configured() {
        let config = BreakerConfig {
            failure_threshold: 1,
            open_micros: 100,
            half_open_probes: 2,
        };
        let set = BreakerSet::new();
        set.record_failure(&config, "web", Instant(0));
        assert_eq!(set.admit(&config, "web", Instant(100)), Admission::Probe);
        set.record_success(&config, "web");
        assert_eq!(
            set.state("web"),
            BreakerState::HalfOpen,
            "one probe is not enough"
        );
        set.record_success(&config, "web");
        assert_eq!(set.state("web"), BreakerState::Closed);
    }

    #[test]
    fn backoff_doubles_and_is_deterministic() {
        let config = ResilienceConfig::builder()
            .max_retries(3)
            .backoff_base_micros(1_000)
            .retry_seed(42)
            .build();
        let mut sched = BackoffSchedule::new(&config, 7);
        assert_eq!(sched.delay_micros(0), 1_000);
        assert_eq!(sched.delay_micros(1), 2_000);
        assert_eq!(sched.delay_micros(2), 4_000);

        let jittered = ResilienceConfig::builder()
            .backoff_base_micros(1_000)
            .backoff_jitter_frac(64)
            .retry_seed(42)
            .build();
        let mut a = BackoffSchedule::new(&jittered, 7);
        let mut b = BackoffSchedule::new(&jittered, 7);
        for attempt in 0..4 {
            let da = a.delay_micros(attempt);
            assert_eq!(da, b.delay_micros(attempt), "same seed, same schedule");
            let base = 1_000u64 << attempt;
            assert!(
                da >= base && da < base + base / 4 + 1,
                "jitter within +25%: {da}"
            );
        }
        let mut c = BackoffSchedule::new(&jittered, 8);
        let schedules_differ =
            (0..4).any(|n| BackoffSchedule::new(&jittered, 7).delay_micros(n) != c.delay_micros(n));
        assert!(schedules_differ, "different salt, different jitter");
    }

    #[test]
    fn origin_salted_backoff_is_stable_per_origin() {
        let jittered = ResilienceConfig::builder()
            .backoff_base_micros(1_000)
            .backoff_jitter_frac(64)
            .retry_seed(42)
            .build();
        let mut a = BackoffSchedule::for_origin(&jittered, "fs");
        let mut b = BackoffSchedule::for_origin(&jittered, "fs");
        for attempt in 0..4 {
            assert_eq!(
                a.delay_micros(attempt),
                b.delay_micros(attempt),
                "same origin, same schedule"
            );
        }
        let mut other = BackoffSchedule::for_origin(&jittered, "dms");
        let schedules_differ = (0..4).any(|n| {
            BackoffSchedule::for_origin(&jittered, "fs").delay_micros(n) != other.delay_micros(n)
        });
        assert!(schedules_differ, "different origin, different jitter");
    }

    #[test]
    fn backoff_shift_is_capped() {
        let config = ResilienceConfig::builder().backoff_base_micros(1).build();
        let mut sched = BackoffSchedule::new(&config, 0);
        assert_eq!(sched.delay_micros(63), 1 << 20, "shift capped, no overflow");
    }
}
