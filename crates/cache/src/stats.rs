//! Cache statistics.
//!
//! Everything the benchmark harness reports comes from here: hit/miss
//! counts, invalidation causes (notifier vs verifier — the central §5
//! trade-off), latency sums over the virtual clock, and sharing/eviction
//! bookkeeping.

use std::ops::Sub;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters accumulated by a [`crate::manager::DocumentCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CacheStats {
    /// Reads served from the cache (verifiers passed).
    pub hits: u64,
    /// Reads that went to the middleware.
    pub misses: u64,
    /// Reads of uncacheable content (always forwarded, never stored).
    pub uncacheable_reads: u64,
    /// Entries dropped because a notifier invalidated them.
    pub notifier_invalidations: u64,
    /// Hits rejected because a verifier said the entry was stale.
    pub verifier_invalidations: u64,
    /// Entries whose content a verifier replaced in place.
    pub verifier_replacements: u64,
    /// Entries evicted by the replacement policy.
    pub evictions: u64,
    /// Fills that found identical bytes already resident (shared).
    pub shared_fills: u64,
    /// Operation events forwarded for `CacheableWithEvents` entries.
    pub events_forwarded: u64,
    /// Total simulated microseconds spent serving hits.
    pub hit_micros: u64,
    /// Total simulated microseconds spent serving misses.
    pub miss_micros: u64,
    /// Total simulated microseconds spent running verifiers.
    pub verify_micros: u64,
    /// Writes accepted (through or back).
    pub writes: u64,
    /// Write-back flushes pushed to the middleware.
    pub flushes: u64,
    /// Entries filled by collection prefetch rather than demand misses.
    pub prefetches: u64,
    /// Hits served from prefetched entries.
    pub prefetch_hits: u64,
    /// Fills pinned by a QoS property.
    pub pinned_fills: u64,
    /// Fetch attempts repeated after a transient failure.
    pub retries: u64,
    /// Circuit breakers tripped open by consecutive failures.
    pub breaker_trips: u64,
    /// Reads served from a resident entry despite a failed or impossible
    /// freshness check, within the configured staleness bound.
    pub stale_served: u64,
    /// Reads that failed even after retries / stale fallback.
    pub degraded_errors: u64,
    /// Invalidation sequence gaps detected (dropped notifications).
    pub notifier_gaps: u64,
    /// Chain stages served from the intermediate-result store instead of
    /// executing (stage caching only).
    pub stage_hits: u64,
    /// Misses that replayed only part of the chain because at least one
    /// stage hit — the paper's per-user suffix served over a shared base
    /// prefix.
    pub stage_partial_hits: u64,
    /// Staged walks that anchored on a verifier-attested root content
    /// signature instead of refetching the provider bytes (the plan-lease
    /// fast path).
    pub root_reuses: u64,
    /// Logical bytes currently resident as intermediate stage entries (a
    /// gauge: rises on stage fills, falls when stage entries leave).
    pub stage_bytes: u64,
    /// Write-back writes appended to the durable write journal before the
    /// dirty map was updated (journal configured only).
    pub journal_appends: u64,
    /// Journaled writes replayed into the dirty queue by a warm restart
    /// ([`crate::manager::DocumentCache::recover`]).
    pub journal_replays: u64,
    /// Dirty entries parked in the journal after a flush exhausted its
    /// retries (drained when the origin's breaker lets probes through).
    pub writes_parked: u64,
    /// Write attempts repeated after a transient failure (write-through
    /// and flush paths; the write-side sibling of `retries`).
    pub flush_retries: u64,
    /// Grouped origin write operations issued by the batched flush
    /// scheduler — one per per-origin group per attempt (a retried
    /// group counts again).
    pub flush_batches: u64,
    /// Dirty entries whose origin write succeeded as part of a grouped
    /// flush batch (`flushes` counts these too; the difference is the
    /// per-entry fallback path).
    pub batched_writes: u64,
    /// Recovered writes that conflicted with a newer origin version
    /// (journal epoch no longer matches the origin signature).
    pub write_conflicts: u64,
    /// Write conflicts resolved by rebasing the writer's typed ops onto
    /// the origin's current content (merge policy) instead of the binary
    /// keep-mine/keep-theirs hooks.
    pub conflicts_merged: u64,
    /// Individual typed ops re-applied across all merge resolutions.
    pub merge_rebases: u64,
    /// Reads that joined another thread's in-flight miss on the same key
    /// and shared its result instead of fetching (single-flight).
    pub coalesced_waits: u64,
    /// High-water mark of concurrently in-flight origin fetches (a peak,
    /// not a monotone sum; [`CacheStats::delta`] keeps the later value).
    pub inflight_peak: u64,
    /// Foreground reads shed under overload (`Overloaded` returned).
    pub sheds_foreground: u64,
    /// Refresh-class reads shed under overload.
    pub sheds_refresh: u64,
    /// Prefetch work shed under overload (admission, brownout, or the
    /// collection-prefetch gate).
    pub sheds_prefetch: u64,
    /// Brownout ladder transitions (each one-rung move, up or down).
    pub brownout_shifts: u64,
    /// Current brownout rung, 0 (normal) through 4 (reject) — a gauge;
    /// [`CacheStats::delta`] keeps the later value.
    pub brownout_level: u64,
    /// Total virtual microseconds readers spent parked on origin
    /// windows before being admitted or shed (queue-wait accounting).
    pub queue_wait_micros: u64,
}

impl CacheStats {
    /// Returns the hit rate over cacheable reads, or `None` before any
    /// read.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        if total == 0 {
            None
        } else {
            Some(self.hits as f64 / total as f64)
        }
    }

    /// Returns the mean hit latency in milliseconds, or `None` without
    /// hits.
    pub fn mean_hit_ms(&self) -> Option<f64> {
        if self.hits == 0 {
            None
        } else {
            Some(self.hit_micros as f64 / self.hits as f64 / 1_000.0)
        }
    }

    /// Returns the fraction of cacheable reads that returned bytes —
    /// hits, misses, and stale-served reads over those plus degraded
    /// errors — or `None` before any read. The E-FAULT experiment's
    /// headline metric.
    pub fn read_availability(&self) -> Option<f64> {
        let served = self.hits + self.misses + self.stale_served;
        let total = served + self.degraded_errors;
        if total == 0 {
            None
        } else {
            Some(served as f64 / total as f64)
        }
    }

    /// Total reads shed under overload across all priority classes.
    pub fn sheds_total(&self) -> u64 {
        self.sheds_foreground + self.sheds_refresh + self.sheds_prefetch
    }

    /// Returns the mean miss latency in milliseconds, or `None` without
    /// misses.
    pub fn mean_miss_ms(&self) -> Option<f64> {
        if self.misses == 0 {
            None
        } else {
            Some(self.miss_micros as f64 / self.misses as f64 / 1_000.0)
        }
    }

    /// Returns the counters accumulated since `earlier` was snapshotted.
    ///
    /// Monotone counters subtract (saturating, so a stale `earlier` from a
    /// different cache degrades to zero rather than wrapping). The two
    /// non-monotone fields keep the later observation: `stage_bytes` is a
    /// residency gauge and `inflight_peak` a high-water mark, so "the
    /// difference" is not meaningful for either.
    pub fn delta(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            uncacheable_reads: self
                .uncacheable_reads
                .saturating_sub(earlier.uncacheable_reads),
            notifier_invalidations: self
                .notifier_invalidations
                .saturating_sub(earlier.notifier_invalidations),
            verifier_invalidations: self
                .verifier_invalidations
                .saturating_sub(earlier.verifier_invalidations),
            verifier_replacements: self
                .verifier_replacements
                .saturating_sub(earlier.verifier_replacements),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            shared_fills: self.shared_fills.saturating_sub(earlier.shared_fills),
            events_forwarded: self
                .events_forwarded
                .saturating_sub(earlier.events_forwarded),
            hit_micros: self.hit_micros.saturating_sub(earlier.hit_micros),
            miss_micros: self.miss_micros.saturating_sub(earlier.miss_micros),
            verify_micros: self.verify_micros.saturating_sub(earlier.verify_micros),
            writes: self.writes.saturating_sub(earlier.writes),
            flushes: self.flushes.saturating_sub(earlier.flushes),
            prefetches: self.prefetches.saturating_sub(earlier.prefetches),
            prefetch_hits: self.prefetch_hits.saturating_sub(earlier.prefetch_hits),
            pinned_fills: self.pinned_fills.saturating_sub(earlier.pinned_fills),
            retries: self.retries.saturating_sub(earlier.retries),
            breaker_trips: self.breaker_trips.saturating_sub(earlier.breaker_trips),
            stale_served: self.stale_served.saturating_sub(earlier.stale_served),
            degraded_errors: self.degraded_errors.saturating_sub(earlier.degraded_errors),
            notifier_gaps: self.notifier_gaps.saturating_sub(earlier.notifier_gaps),
            stage_hits: self.stage_hits.saturating_sub(earlier.stage_hits),
            stage_partial_hits: self
                .stage_partial_hits
                .saturating_sub(earlier.stage_partial_hits),
            root_reuses: self.root_reuses.saturating_sub(earlier.root_reuses),
            stage_bytes: self.stage_bytes,
            journal_appends: self.journal_appends.saturating_sub(earlier.journal_appends),
            journal_replays: self.journal_replays.saturating_sub(earlier.journal_replays),
            writes_parked: self.writes_parked.saturating_sub(earlier.writes_parked),
            flush_retries: self.flush_retries.saturating_sub(earlier.flush_retries),
            flush_batches: self.flush_batches.saturating_sub(earlier.flush_batches),
            batched_writes: self.batched_writes.saturating_sub(earlier.batched_writes),
            write_conflicts: self.write_conflicts.saturating_sub(earlier.write_conflicts),
            conflicts_merged: self
                .conflicts_merged
                .saturating_sub(earlier.conflicts_merged),
            merge_rebases: self.merge_rebases.saturating_sub(earlier.merge_rebases),
            coalesced_waits: self.coalesced_waits.saturating_sub(earlier.coalesced_waits),
            inflight_peak: self.inflight_peak,
            sheds_foreground: self
                .sheds_foreground
                .saturating_sub(earlier.sheds_foreground),
            sheds_refresh: self.sheds_refresh.saturating_sub(earlier.sheds_refresh),
            sheds_prefetch: self.sheds_prefetch.saturating_sub(earlier.sheds_prefetch),
            brownout_shifts: self.brownout_shifts.saturating_sub(earlier.brownout_shifts),
            brownout_level: self.brownout_level,
            queue_wait_micros: self
                .queue_wait_micros
                .saturating_sub(earlier.queue_wait_micros),
        }
    }
}

impl Sub for CacheStats {
    type Output = CacheStats;

    /// `later - earlier` is shorthand for [`CacheStats::delta`].
    fn sub(self, earlier: CacheStats) -> CacheStats {
        self.delta(&earlier)
    }
}

/// Lock-free counters shared by every shard of a sharded cache.
///
/// Each field mirrors one [`CacheStats`] counter. Increments use relaxed
/// atomics: counters are monotone sums with no cross-field invariant that
/// readers could observe torn, and [`AtomicCacheStats::snapshot`] is
/// documented as a moment-in-time approximation under concurrency (exact
/// whenever the cache is quiescent).
#[derive(Debug, Default)]
pub struct AtomicCacheStats {
    pub(crate) hits: AtomicU64,
    pub(crate) misses: AtomicU64,
    pub(crate) uncacheable_reads: AtomicU64,
    pub(crate) notifier_invalidations: AtomicU64,
    pub(crate) verifier_invalidations: AtomicU64,
    pub(crate) verifier_replacements: AtomicU64,
    pub(crate) evictions: AtomicU64,
    pub(crate) shared_fills: AtomicU64,
    pub(crate) events_forwarded: AtomicU64,
    pub(crate) hit_micros: AtomicU64,
    pub(crate) miss_micros: AtomicU64,
    pub(crate) verify_micros: AtomicU64,
    pub(crate) writes: AtomicU64,
    pub(crate) flushes: AtomicU64,
    pub(crate) prefetches: AtomicU64,
    pub(crate) prefetch_hits: AtomicU64,
    pub(crate) pinned_fills: AtomicU64,
    pub(crate) retries: AtomicU64,
    pub(crate) breaker_trips: AtomicU64,
    pub(crate) stale_served: AtomicU64,
    pub(crate) degraded_errors: AtomicU64,
    pub(crate) notifier_gaps: AtomicU64,
    pub(crate) stage_hits: AtomicU64,
    pub(crate) stage_partial_hits: AtomicU64,
    pub(crate) root_reuses: AtomicU64,
    pub(crate) stage_bytes: AtomicU64,
    pub(crate) journal_appends: AtomicU64,
    pub(crate) journal_replays: AtomicU64,
    pub(crate) writes_parked: AtomicU64,
    pub(crate) flush_retries: AtomicU64,
    pub(crate) flush_batches: AtomicU64,
    pub(crate) batched_writes: AtomicU64,
    pub(crate) write_conflicts: AtomicU64,
    pub(crate) conflicts_merged: AtomicU64,
    pub(crate) merge_rebases: AtomicU64,
    pub(crate) coalesced_waits: AtomicU64,
    pub(crate) inflight_peak: AtomicU64,
    pub(crate) sheds_foreground: AtomicU64,
    pub(crate) sheds_refresh: AtomicU64,
    pub(crate) sheds_prefetch: AtomicU64,
    pub(crate) brownout_shifts: AtomicU64,
    pub(crate) brownout_level: AtomicU64,
    pub(crate) queue_wait_micros: AtomicU64,
}

impl AtomicCacheStats {
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add(counter: &AtomicU64, amount: u64) {
        counter.fetch_add(amount, Ordering::Relaxed);
    }

    /// Decrements a gauge-style counter (used for `stage_bytes`, which
    /// tracks resident bytes rather than a monotone sum).
    pub(crate) fn sub(counter: &AtomicU64, amount: u64) {
        counter.fetch_sub(amount, Ordering::Relaxed);
    }

    /// Raises a high-water-mark counter to `observed` if it is larger
    /// (used for `inflight_peak`).
    pub(crate) fn maximize(counter: &AtomicU64, observed: u64) {
        counter.fetch_max(observed, Ordering::Relaxed);
    }

    /// Overwrites a level-style gauge (used for `brownout_level`, which
    /// tracks the ladder's current rung rather than a sum).
    pub(crate) fn set(counter: &AtomicU64, value: u64) {
        counter.store(value, Ordering::Relaxed);
    }

    /// Returns a plain-old-data copy of the counters.
    pub fn snapshot(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            uncacheable_reads: self.uncacheable_reads.load(Ordering::Relaxed),
            notifier_invalidations: self.notifier_invalidations.load(Ordering::Relaxed),
            verifier_invalidations: self.verifier_invalidations.load(Ordering::Relaxed),
            verifier_replacements: self.verifier_replacements.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            shared_fills: self.shared_fills.load(Ordering::Relaxed),
            events_forwarded: self.events_forwarded.load(Ordering::Relaxed),
            hit_micros: self.hit_micros.load(Ordering::Relaxed),
            miss_micros: self.miss_micros.load(Ordering::Relaxed),
            verify_micros: self.verify_micros.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            prefetches: self.prefetches.load(Ordering::Relaxed),
            prefetch_hits: self.prefetch_hits.load(Ordering::Relaxed),
            pinned_fills: self.pinned_fills.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            stale_served: self.stale_served.load(Ordering::Relaxed),
            degraded_errors: self.degraded_errors.load(Ordering::Relaxed),
            notifier_gaps: self.notifier_gaps.load(Ordering::Relaxed),
            stage_hits: self.stage_hits.load(Ordering::Relaxed),
            stage_partial_hits: self.stage_partial_hits.load(Ordering::Relaxed),
            root_reuses: self.root_reuses.load(Ordering::Relaxed),
            stage_bytes: self.stage_bytes.load(Ordering::Relaxed),
            journal_appends: self.journal_appends.load(Ordering::Relaxed),
            journal_replays: self.journal_replays.load(Ordering::Relaxed),
            writes_parked: self.writes_parked.load(Ordering::Relaxed),
            flush_retries: self.flush_retries.load(Ordering::Relaxed),
            flush_batches: self.flush_batches.load(Ordering::Relaxed),
            batched_writes: self.batched_writes.load(Ordering::Relaxed),
            write_conflicts: self.write_conflicts.load(Ordering::Relaxed),
            conflicts_merged: self.conflicts_merged.load(Ordering::Relaxed),
            merge_rebases: self.merge_rebases.load(Ordering::Relaxed),
            coalesced_waits: self.coalesced_waits.load(Ordering::Relaxed),
            inflight_peak: self.inflight_peak.load(Ordering::Relaxed),
            sheds_foreground: self.sheds_foreground.load(Ordering::Relaxed),
            sheds_refresh: self.sheds_refresh.load(Ordering::Relaxed),
            sheds_prefetch: self.sheds_prefetch.load(Ordering::Relaxed),
            brownout_shifts: self.brownout_shifts.load(Ordering::Relaxed),
            brownout_level: self.brownout_level.load(Ordering::Relaxed),
            queue_wait_micros: self.queue_wait_micros.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_stats_snapshot_round_trips() {
        let atomic = AtomicCacheStats::default();
        AtomicCacheStats::bump(&atomic.hits);
        AtomicCacheStats::bump(&atomic.hits);
        AtomicCacheStats::bump(&atomic.misses);
        AtomicCacheStats::add(&atomic.hit_micros, 6_000);
        let snap = atomic.snapshot();
        assert_eq!(snap.hits, 2);
        assert_eq!(snap.misses, 1);
        assert_eq!(snap.hit_micros, 6_000);
        assert_eq!(snap.evictions, 0);
    }

    #[test]
    fn stage_bytes_gauge_rises_and_falls() {
        let atomic = AtomicCacheStats::default();
        AtomicCacheStats::add(&atomic.stage_bytes, 500);
        AtomicCacheStats::add(&atomic.stage_bytes, 200);
        AtomicCacheStats::sub(&atomic.stage_bytes, 500);
        assert_eq!(atomic.snapshot().stage_bytes, 200);
    }

    #[test]
    fn rates_are_none_before_traffic() {
        let stats = CacheStats::default();
        assert_eq!(stats.hit_rate(), None);
        assert_eq!(stats.mean_hit_ms(), None);
        assert_eq!(stats.mean_miss_ms(), None);
    }

    #[test]
    fn rates_compute() {
        let stats = CacheStats {
            hits: 3,
            misses: 1,
            hit_micros: 6_000,
            miss_micros: 10_000,
            ..Default::default()
        };
        assert_eq!(stats.hit_rate(), Some(0.75));
        assert_eq!(stats.mean_hit_ms(), Some(2.0));
        assert_eq!(stats.mean_miss_ms(), Some(10.0));
    }

    #[test]
    fn delta_subtracts_counters_and_keeps_gauges() {
        let earlier = CacheStats {
            hits: 10,
            misses: 4,
            stage_bytes: 900,
            inflight_peak: 3,
            sheds_prefetch: 2,
            brownout_level: 3,
            ..Default::default()
        };
        let later = CacheStats {
            hits: 25,
            misses: 4,
            coalesced_waits: 6,
            stage_bytes: 300,
            inflight_peak: 7,
            sheds_prefetch: 5,
            brownout_level: 1,
            ..Default::default()
        };
        let d = later.delta(&earlier);
        assert_eq!(d.hits, 15);
        assert_eq!(d.misses, 0);
        assert_eq!(d.coalesced_waits, 6);
        assert_eq!(d.sheds_prefetch, 3, "sheds are monotone counters");
        // Non-monotone fields carry the later observation.
        assert_eq!(d.stage_bytes, 300);
        assert_eq!(d.inflight_peak, 7);
        assert_eq!(d.brownout_level, 1, "the level is a gauge");
        // The Sub impl is the same operation.
        assert_eq!(later - earlier, d);
    }

    #[test]
    fn delta_saturates_instead_of_wrapping() {
        let earlier = CacheStats {
            hits: 9,
            ..Default::default()
        };
        let later = CacheStats {
            hits: 2,
            ..Default::default()
        };
        assert_eq!(later.delta(&earlier).hits, 0);
    }

    #[test]
    fn maximize_is_a_high_water_mark() {
        let atomic = AtomicCacheStats::default();
        AtomicCacheStats::maximize(&atomic.inflight_peak, 4);
        AtomicCacheStats::maximize(&atomic.inflight_peak, 9);
        AtomicCacheStats::maximize(&atomic.inflight_peak, 6);
        assert_eq!(atomic.snapshot().inflight_peak, 9);
    }

    #[test]
    fn availability_counts_stale_service_as_served() {
        assert_eq!(CacheStats::default().read_availability(), None);
        let stats = CacheStats {
            hits: 5,
            misses: 2,
            stale_served: 2,
            degraded_errors: 1,
            ..Default::default()
        };
        assert_eq!(stats.read_availability(), Some(0.9));
    }
}
