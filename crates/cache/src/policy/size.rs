//! SIZE replacement: evict the largest entry first.

use super::{EntryAttrs, EntryKey, ReplacementPolicy};
use std::collections::HashMap;

/// Evicts the largest resident entry, the classic proxy-cache heuristic
/// that maximizes object hit rate by keeping many small documents.
#[derive(Default)]
pub struct SizePolicy {
    sizes: HashMap<EntryKey, (u64, u64)>,
    tick: u64,
}

impl SizePolicy {
    /// Creates an empty SIZE tracker.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ReplacementPolicy for SizePolicy {
    fn name(&self) -> &'static str {
        "size"
    }

    fn on_insert(&mut self, key: EntryKey, attrs: &EntryAttrs) {
        self.tick += 1;
        self.sizes.insert(key, (attrs.size, self.tick));
    }

    fn on_hit(&mut self, _key: EntryKey) {}

    fn on_remove(&mut self, key: EntryKey) {
        self.sizes.remove(&key);
    }

    fn evict(&mut self) -> Option<EntryKey> {
        // Largest first; FIFO tiebreak (older first) among equals.
        let victim = self
            .sizes
            .iter()
            .max_by_key(|(_, &(size, stamp))| (size, std::cmp::Reverse(stamp)))
            .map(|(&k, _)| k)?;
        self.sizes.remove(&victim);
        Some(victim)
    }

    fn len(&self) -> usize {
        self.sizes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use placeless_core::id::{DocumentId, UserId};

    fn key(i: u64) -> EntryKey {
        EntryKey::Version(DocumentId(i), UserId(1))
    }

    #[test]
    fn evicts_largest_first() {
        let mut policy = SizePolicy::new();
        policy.on_insert(key(1), &EntryAttrs::new(10, 1.0));
        policy.on_insert(key(2), &EntryAttrs::new(1_000, 1.0));
        policy.on_insert(key(3), &EntryAttrs::new(100, 1.0));
        assert_eq!(policy.evict(), Some(key(2)));
        assert_eq!(policy.evict(), Some(key(3)));
        assert_eq!(policy.evict(), Some(key(1)));
    }

    #[test]
    fn equal_sizes_evict_oldest_first() {
        let mut policy = SizePolicy::new();
        policy.on_insert(key(1), &EntryAttrs::new(10, 1.0));
        policy.on_insert(key(2), &EntryAttrs::new(10, 1.0));
        assert_eq!(policy.evict(), Some(key(1)));
    }
}
