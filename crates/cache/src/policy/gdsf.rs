//! Greedy-Dual-Size-Frequency — the prototype's actual policy.
//!
//! §4: "The replacement policy used in the implementation is a version of
//! the Greedy-Dual-Size algorithm \[Cao & Irani 1997\], based on the replacement cost
//! supplied by the properties and bit-provider, as well as on the size of
//! the document **and the access frequency of the document at that
//! cache**." Plain GDS ignores frequency; the "version" described is
//! GDS-Frequency: `H = L + frequency · cost / size`, so repeatedly accessed
//! documents accumulate credit beyond what one touch grants.

use super::{EntryAttrs, EntryKey, ReplacementPolicy, STAGE_COST_DISCOUNT, STAGE_PIN_LEVEL};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

struct Tracked {
    size: u64,
    cost: f64,
    frequency: u64,
    generation: u64,
}

/// The GDS-Frequency replacement policy.
pub struct GdsFrequency {
    entries: HashMap<EntryKey, Tracked>,
    heap: BinaryHeap<Reverse<(OrdF64, u64, EntryKey)>>,
    inflation: f64,
    next_generation: u64,
}

impl GdsFrequency {
    /// Creates an empty policy.
    pub fn new() -> Self {
        Self {
            entries: HashMap::new(),
            heap: BinaryHeap::new(),
            inflation: 0.0,
            next_generation: 0,
        }
    }

    /// Returns the current inflation value `L`.
    pub fn inflation(&self) -> f64 {
        self.inflation
    }

    fn push(&mut self, key: EntryKey, size: u64, cost: f64, frequency: u64) {
        let h = self.inflation + frequency as f64 * cost / size.max(1) as f64;
        let generation = self.next_generation;
        self.next_generation += 1;
        self.entries.insert(
            key,
            Tracked {
                size,
                cost,
                frequency,
                generation,
            },
        );
        self.heap.push(Reverse((OrdF64(h), generation, key)));
    }
}

impl Default for GdsFrequency {
    fn default() -> Self {
        Self::new()
    }
}

impl ReplacementPolicy for GdsFrequency {
    fn name(&self) -> &'static str {
        "gdsf"
    }

    fn on_insert(&mut self, key: EntryKey, attrs: &EntryAttrs) {
        // A re-insert of a resident key keeps its earned frequency.
        let frequency = self.entries.get(&key).map(|t| t.frequency).unwrap_or(1);
        // Intermediate stage entries are rebuildable from any final read:
        // discount their cost so they lose ties against final versions.
        let cost = if attrs.pin_level == STAGE_PIN_LEVEL {
            attrs.cost * STAGE_COST_DISCOUNT
        } else {
            attrs.cost
        };
        self.push(key, attrs.size, cost, frequency);
    }

    fn on_hit(&mut self, key: EntryKey) {
        if let Some(t) = self.entries.get(&key) {
            let (size, cost, frequency) = (t.size, t.cost, t.frequency + 1);
            self.push(key, size, cost, frequency);
        }
    }

    fn on_remove(&mut self, key: EntryKey) {
        self.entries.remove(&key);
    }

    fn evict(&mut self) -> Option<EntryKey> {
        while let Some(Reverse((OrdF64(h), generation, key))) = self.heap.pop() {
            match self.entries.get(&key) {
                Some(t) if t.generation == generation => {
                    self.entries.remove(&key);
                    self.inflation = self.inflation.max(h);
                    return Some(key);
                }
                _ => continue,
            }
        }
        None
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use placeless_core::id::{DocumentId, UserId};

    fn key(i: u64) -> EntryKey {
        EntryKey::Version(DocumentId(i), UserId(1))
    }

    #[test]
    fn frequency_raises_credit() {
        let mut gdsf = GdsFrequency::new();
        gdsf.on_insert(key(1), &EntryAttrs::new(100, 100.0));
        gdsf.on_insert(key(2), &EntryAttrs::new(100, 100.0));
        // Hit key(1) three times: its credit triples.
        gdsf.on_hit(key(1));
        gdsf.on_hit(key(1));
        gdsf.on_hit(key(1));
        assert_eq!(gdsf.evict(), Some(key(2)), "unfrequented entry goes first");
        assert_eq!(gdsf.evict(), Some(key(1)));
    }

    #[test]
    fn frequency_can_outweigh_cost() {
        let mut gdsf = GdsFrequency::new();
        gdsf.on_insert(key(1), &EntryAttrs::new(100, 300.0)); // pricey, touched once: H = 3
        gdsf.on_insert(key(2), &EntryAttrs::new(100, 100.0)); // cheap, hot
        for _ in 0..4 {
            gdsf.on_hit(key(2)); // frequency 5: H = 5
        }
        assert_eq!(gdsf.evict(), Some(key(1)));
    }

    #[test]
    fn cost_still_matters_at_equal_frequency() {
        let mut gdsf = GdsFrequency::new();
        gdsf.on_insert(key(1), &EntryAttrs::new(100, 500.0));
        gdsf.on_insert(key(2), &EntryAttrs::new(100, 50.0));
        assert_eq!(gdsf.evict(), Some(key(2)));
    }

    #[test]
    fn inflation_is_monotone() {
        let mut gdsf = GdsFrequency::new();
        for i in 0..12 {
            gdsf.on_insert(key(i), &EntryAttrs::new(10, (i + 1) as f64 * 10.0));
            if i % 3 == 0 {
                gdsf.on_hit(key(i));
            }
        }
        let mut last = 0.0;
        while gdsf.evict().is_some() {
            assert!(gdsf.inflation() >= last);
            last = gdsf.inflation();
        }
        assert!(gdsf.is_empty());
    }

    #[test]
    fn reinsert_preserves_earned_frequency() {
        let mut gdsf = GdsFrequency::new();
        gdsf.on_insert(key(1), &EntryAttrs::new(100, 100.0));
        gdsf.on_hit(key(1));
        gdsf.on_hit(key(1)); // frequency 3
                             // Re-insert (e.g. verifier replaced the content): frequency kept.
        gdsf.on_insert(key(1), &EntryAttrs::new(100, 100.0));
        gdsf.on_insert(key(2), &EntryAttrs::new(100, 250.0)); // frequency 1, H = 2.5 < 3
        assert_eq!(gdsf.evict(), Some(key(2)));
    }
}
