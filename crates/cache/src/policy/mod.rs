//! Cache replacement policies.
//!
//! The prototype's policy is "a version of the Greedy-Dual-Size algorithm
//! [Cao & Irani 1997], based on the replacement cost supplied by the
//! properties and bit-provider, as well as on the size of the document and
//! the access frequency of the document at that cache" — implemented here
//! as [`gdsf::GdsFrequency`] (the full cost+size+frequency form) and
//! [`gds::GreedyDualSize`] (the frequency-free original). The classic
//! baselines (LRU, LFU, SIZE, FIFO, and cost-blind GD(1)) let the
//! replacement benchmark show what cost-awareness buys.

pub mod fifo;
pub mod gds;
pub mod gdsf;
pub mod lfu;
pub mod lru;
pub mod size;

pub use fifo::Fifo;
pub use gds::GreedyDualSize;
pub use gdsf::GdsFrequency;
pub use lfu::Lfu;
pub use lru::Lru;
pub use size::SizePolicy;

use placeless_core::digest::Signature;
use placeless_core::id::{DocumentId, UserId};
use std::sync::Arc;

/// The key a cache entry is stored under.
///
/// Final renditions are per-`(document, user)` pairs, because active
/// properties make content per-user. Intermediate stage outputs from the
/// staged transform pipeline are content-addressed by their stage
/// signature: user-independent by construction, so one entry serves every
/// user whose chain shares the prefix that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EntryKey {
    /// A final per-user rendition of a document.
    Version(DocumentId, UserId),
    /// An intermediate stage output, keyed by its stage signature.
    Stage(Signature),
}

impl EntryKey {
    /// Returns the document this entry renders, for [`EntryKey::Version`]
    /// keys. Stage entries return `None`: they are content-addressed and
    /// deliberately *not* tied to a document, so document-scoped
    /// invalidation passes over them (a stale stage entry is unreachable —
    /// its signature chain no longer resolves — rather than served).
    pub fn doc(&self) -> Option<DocumentId> {
        match self {
            EntryKey::Version(doc, _) => Some(*doc),
            EntryKey::Stage(_) => None,
        }
    }

    /// Returns `true` for intermediate stage entries.
    pub fn is_stage(&self) -> bool {
        matches!(self, EntryKey::Stage(_))
    }
}

/// The [`EntryAttrs::pin_level`] tagging intermediate stage entries, so
/// cost-aware policies can recognise them and trade them off against final
/// versions (they are cheaper to lose: any final read can rebuild them).
pub const STAGE_PIN_LEVEL: u8 = 1;

/// Cost discount the Greedy-Dual policies apply to entries tagged
/// [`STAGE_PIN_LEVEL`]. Losing an intermediate entry costs one partial
/// re-execution on the *next* miss, not a user-visible full-chain replay,
/// so at equal cost/size a stage entry should be evicted before a final
/// version.
pub const STAGE_COST_DISCOUNT: f64 = 0.5;

/// Attributes of an entry at insert time, as seen by a replacement policy.
///
/// Marked `#[non_exhaustive]` so new signals (e.g. QoS pin levels) can be
/// added without breaking policy implementations: construct via
/// [`EntryAttrs::new`] and read the fields you care about.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EntryAttrs {
    /// Content size in bytes.
    pub size: u64,
    /// Replacement cost: simulated microseconds to re-produce the content
    /// (bit-provider fetch plus active-property work).
    pub cost: f64,
    /// QoS pin level; 0 means unpinned. Reserved for collection-level
    /// quality-of-service: fully pinned entries never reach a policy, but
    /// intermediate levels may in the future bias eviction order.
    pub pin_level: u8,
}

impl EntryAttrs {
    /// Attributes for an unpinned entry of `size` bytes costing `cost`
    /// simulated microseconds to reproduce.
    pub fn new(size: u64, cost: f64) -> Self {
        Self {
            size,
            cost,
            pin_level: 0,
        }
    }

    /// Sets the QoS pin level.
    pub fn with_pin_level(mut self, level: u8) -> Self {
        self.pin_level = level;
        self
    }
}

/// A replacement policy tracks entry metadata and chooses eviction victims.
///
/// The cache manager drives it: `on_insert` when an entry is filled,
/// `on_hit` on every hit, `on_remove` when an entry is invalidated, and
/// `evict` when space must be reclaimed.
pub trait ReplacementPolicy: Send {
    /// Returns the policy's display name.
    fn name(&self) -> &'static str;

    /// Records a newly inserted entry with its attributes (size, cost, …).
    fn on_insert(&mut self, key: EntryKey, attrs: &EntryAttrs);

    /// Records a hit on an existing entry.
    fn on_hit(&mut self, key: EntryKey);

    /// Records that an entry left the cache for a non-eviction reason
    /// (invalidation).
    fn on_remove(&mut self, key: EntryKey);

    /// Chooses and removes a victim, or `None` if the policy is empty.
    fn evict(&mut self) -> Option<EntryKey>;

    /// Returns the number of tracked entries.
    fn len(&self) -> usize;

    /// Returns `true` if no entries are tracked.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Error returned by [`by_name`] for an unrecognised policy name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownPolicy {
    /// The name that failed to resolve.
    pub requested: String,
}

impl std::fmt::Display for UnknownPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown replacement policy `{}`; known policies: {}",
            self.requested,
            ALL_POLICIES.join(", ")
        )
    }
}

impl std::error::Error for UnknownPolicy {}

/// Builds a policy by name (case-insensitive); the bench harness sweeps
/// these. The error lists every known policy.
pub fn by_name(name: &str) -> Result<Box<dyn ReplacementPolicy>, UnknownPolicy> {
    match name.to_ascii_lowercase().as_str() {
        "gds" => Ok(Box::new(GreedyDualSize::new())),
        "gdsf" => Ok(Box::new(GdsFrequency::new())),
        "gd1" => Ok(Box::new(GreedyDualSize::cost_blind())),
        "lru" => Ok(Box::new(Lru::new())),
        "lfu" => Ok(Box::new(Lfu::new())),
        "size" => Ok(Box::new(SizePolicy::new())),
        "fifo" => Ok(Box::new(Fifo::new())),
        _ => Err(UnknownPolicy {
            requested: name.to_string(),
        }),
    }
}

/// All policy names, for sweeps.
pub const ALL_POLICIES: [&str; 7] = ["gdsf", "gds", "gd1", "lru", "lfu", "size", "fifo"];

/// A cloneable recipe for constructing [`ReplacementPolicy`] instances.
///
/// The sharded cache needs one policy instance per shard; a bare
/// `Box<dyn ReplacementPolicy>` can describe only one. A factory captures
/// the construction itself, so configuration stays a single value while
/// every shard gets an independent policy.
#[derive(Clone)]
pub struct PolicyFactory {
    name: Arc<str>,
    make: Arc<dyn Fn() -> Box<dyn ReplacementPolicy> + Send + Sync>,
}

impl PolicyFactory {
    /// Creates a factory from a display name and a constructor closure.
    pub fn new<F>(name: &str, make: F) -> Self
    where
        F: Fn() -> Box<dyn ReplacementPolicy> + Send + Sync + 'static,
    {
        Self {
            name: Arc::from(name),
            make: Arc::new(make),
        }
    }

    /// Resolves a factory by policy name (case-insensitive).
    pub fn by_name(name: &str) -> Result<Self, UnknownPolicy> {
        // Validate eagerly so the error surfaces at configuration time.
        by_name(name)?;
        let canonical = name.to_ascii_lowercase();
        let captured = canonical.clone();
        Ok(Self::new(&canonical, move || {
            by_name(&captured).expect("validated above")
        }))
    }

    /// Constructs a fresh policy instance.
    pub fn build(&self) -> Box<dyn ReplacementPolicy> {
        (self.make)()
    }

    /// Returns the factory's display name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl std::fmt::Debug for PolicyFactory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PolicyFactory")
            .field("name", &self.name)
            .finish()
    }
}

impl Default for PolicyFactory {
    /// The paper's choice: Greedy-Dual-Size over replacement cost.
    fn default() -> Self {
        Self::new("gds", || Box::new(GreedyDualSize::new()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_name_knows_all_policies() {
        for name in ALL_POLICIES {
            let policy = by_name(name).unwrap_or_else(|_| panic!("missing {name}"));
            assert!(policy.is_empty());
        }
        assert!(by_name("random").is_err());
    }

    #[test]
    fn by_name_is_case_insensitive() {
        assert_eq!(by_name("GDSF").unwrap().name(), "gdsf");
        assert_eq!(by_name("Lru").unwrap().name(), "lru");
    }

    #[test]
    fn unknown_policy_error_lists_alternatives() {
        let err = by_name("random").err().expect("unknown name must fail");
        assert_eq!(err.requested, "random");
        let message = err.to_string();
        for name in ALL_POLICIES {
            assert!(message.contains(name), "error should list {name}");
        }
    }

    #[test]
    fn factory_builds_independent_instances() {
        let factory = PolicyFactory::by_name("LRU").unwrap();
        assert_eq!(factory.name(), "lru");
        let mut a = factory.build();
        let b = factory.build();
        a.on_insert(
            EntryKey::Version(DocumentId(1), UserId(1)),
            &EntryAttrs::new(1, 1.0),
        );
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 0, "instances must not share state");
        assert!(PolicyFactory::by_name("nope").is_err());
    }

    #[test]
    fn entry_attrs_defaults_unpinned() {
        let attrs = EntryAttrs::new(64, 2.5);
        assert_eq!(attrs.size, 64);
        assert_eq!(attrs.cost, 2.5);
        assert_eq!(attrs.pin_level, 0);
        assert_eq!(attrs.with_pin_level(3).pin_level, 3);
    }

    /// Every policy must satisfy the basic contract: inserts are tracked,
    /// evictions drain exactly the tracked keys, removals are honored.
    #[test]
    fn contract_insert_evict_drains() {
        for name in ALL_POLICIES {
            let mut policy = by_name(name).unwrap();
            let keys: Vec<EntryKey> = (0..5)
                .map(|i| EntryKey::Version(DocumentId(i), UserId(1)))
                .collect();
            for (i, &k) in keys.iter().enumerate() {
                policy.on_insert(k, &EntryAttrs::new(100 + i as u64, 1_000.0));
            }
            assert_eq!(policy.len(), 5, "{name}");
            let mut evicted = Vec::new();
            while let Some(victim) = policy.evict() {
                evicted.push(victim);
            }
            assert_eq!(evicted.len(), 5, "{name}");
            let mut sorted = evicted.clone();
            sorted.sort();
            let mut expected = keys.clone();
            expected.sort();
            assert_eq!(sorted, expected, "{name} must evict exactly what it tracks");
        }
    }

    #[test]
    fn contract_remove_prevents_eviction() {
        for name in ALL_POLICIES {
            let mut policy = by_name(name).unwrap();
            let a = EntryKey::Version(DocumentId(1), UserId(1));
            let b = EntryKey::Version(DocumentId(2), UserId(1));
            policy.on_insert(a, &EntryAttrs::new(10, 1.0));
            policy.on_insert(b, &EntryAttrs::new(10, 1.0));
            policy.on_remove(a);
            assert_eq!(policy.len(), 1, "{name}");
            assert_eq!(policy.evict(), Some(b), "{name}");
            assert_eq!(policy.evict(), None, "{name}");
        }
    }
}
