//! Cache replacement policies.
//!
//! The prototype's policy is "a version of the Greedy-Dual-Size algorithm
//! [Cao & Irani 1997], based on the replacement cost supplied by the
//! properties and bit-provider, as well as on the size of the document and
//! the access frequency of the document at that cache" — implemented here
//! as [`gdsf::GdsFrequency`] (the full cost+size+frequency form) and
//! [`gds::GreedyDualSize`] (the frequency-free original). The classic
//! baselines (LRU, LFU, SIZE, FIFO, and cost-blind GD(1)) let the
//! replacement benchmark show what cost-awareness buys.

pub mod fifo;
pub mod gds;
pub mod gdsf;
pub mod lfu;
pub mod lru;
pub mod size;

pub use fifo::Fifo;
pub use gds::GreedyDualSize;
pub use gdsf::GdsFrequency;
pub use lfu::Lfu;
pub use lru::Lru;
pub use size::SizePolicy;

use placeless_core::id::{DocumentId, UserId};

/// The key a cache entry is stored under: one per `(document, user)` pair,
/// because active properties make content per-user.
pub type EntryKey = (DocumentId, UserId);

/// A replacement policy tracks entry metadata and chooses eviction victims.
///
/// The cache manager drives it: `on_insert` when an entry is filled,
/// `on_hit` on every hit, `on_remove` when an entry is invalidated, and
/// `evict` when space must be reclaimed.
pub trait ReplacementPolicy: Send {
    /// Returns the policy's display name.
    fn name(&self) -> &'static str;

    /// Records a newly inserted entry with its byte size and replacement
    /// cost (simulated microseconds to re-produce the content).
    fn on_insert(&mut self, key: EntryKey, size: u64, cost: f64);

    /// Records a hit on an existing entry.
    fn on_hit(&mut self, key: EntryKey);

    /// Records that an entry left the cache for a non-eviction reason
    /// (invalidation).
    fn on_remove(&mut self, key: EntryKey);

    /// Chooses and removes a victim, or `None` if the policy is empty.
    fn evict(&mut self) -> Option<EntryKey>;

    /// Returns the number of tracked entries.
    fn len(&self) -> usize;

    /// Returns `true` if no entries are tracked.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Builds a policy by name; the bench harness sweeps these.
pub fn by_name(name: &str) -> Option<Box<dyn ReplacementPolicy>> {
    match name {
        "gds" => Some(Box::new(GreedyDualSize::new())),
        "gdsf" => Some(Box::new(GdsFrequency::new())),
        "gd1" => Some(Box::new(GreedyDualSize::cost_blind())),
        "lru" => Some(Box::new(Lru::new())),
        "lfu" => Some(Box::new(Lfu::new())),
        "size" => Some(Box::new(SizePolicy::new())),
        "fifo" => Some(Box::new(Fifo::new())),
        _ => None,
    }
}

/// All policy names, for sweeps.
pub const ALL_POLICIES: [&str; 7] = ["gdsf", "gds", "gd1", "lru", "lfu", "size", "fifo"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_name_knows_all_policies() {
        for name in ALL_POLICIES {
            let policy = by_name(name).unwrap_or_else(|| panic!("missing {name}"));
            assert!(policy.is_empty());
        }
        assert!(by_name("random").is_none());
    }

    /// Every policy must satisfy the basic contract: inserts are tracked,
    /// evictions drain exactly the tracked keys, removals are honored.
    #[test]
    fn contract_insert_evict_drains() {
        for name in ALL_POLICIES {
            let mut policy = by_name(name).unwrap();
            let keys: Vec<EntryKey> = (0..5)
                .map(|i| (DocumentId(i), UserId(1)))
                .collect();
            for (i, &k) in keys.iter().enumerate() {
                policy.on_insert(k, 100 + i as u64, 1_000.0);
            }
            assert_eq!(policy.len(), 5, "{name}");
            let mut evicted = Vec::new();
            while let Some(victim) = policy.evict() {
                evicted.push(victim);
            }
            assert_eq!(evicted.len(), 5, "{name}");
            let mut sorted = evicted.clone();
            sorted.sort();
            let mut expected = keys.clone();
            expected.sort();
            assert_eq!(sorted, expected, "{name} must evict exactly what it tracks");
        }
    }

    #[test]
    fn contract_remove_prevents_eviction() {
        for name in ALL_POLICIES {
            let mut policy = by_name(name).unwrap();
            let a = (DocumentId(1), UserId(1));
            let b = (DocumentId(2), UserId(1));
            policy.on_insert(a, 10, 1.0);
            policy.on_insert(b, 10, 1.0);
            policy.on_remove(a);
            assert_eq!(policy.len(), 1, "{name}");
            assert_eq!(policy.evict(), Some(b), "{name}");
            assert_eq!(policy.evict(), None, "{name}");
        }
    }
}
