//! Greedy-Dual-Size [Cao & Irani 1997].
//!
//! Every resident entry carries a credit `H = L + cost / size`, where `L` is
//! the policy's inflation value. Eviction removes the entry with the lowest
//! `H` and raises `L` to that value, so recently accessed and
//! expensive-to-reproduce documents survive. With `cost ≡ 1` this degrades
//! to GD(1), the cost-blind variant used as an ablation baseline.
//!
//! Implementation: a binary heap with lazy deletion (each key has a
//! generation; stale heap nodes are skipped on pop), giving `O(log n)`
//! inserts/hits and amortized `O(log n)` evictions.

use super::{EntryAttrs, EntryKey, ReplacementPolicy, STAGE_COST_DISCOUNT, STAGE_PIN_LEVEL};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// An `f64` with total ordering for use in the heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

struct Tracked {
    size: u64,
    cost: f64,
    generation: u64,
}

/// The Greedy-Dual-Size replacement policy.
pub struct GreedyDualSize {
    entries: HashMap<EntryKey, Tracked>,
    heap: BinaryHeap<Reverse<(OrdF64, u64, EntryKey)>>,
    inflation: f64,
    next_generation: u64,
    cost_blind: bool,
}

impl GreedyDualSize {
    /// Creates a cost-aware GDS policy.
    pub fn new() -> Self {
        Self {
            entries: HashMap::new(),
            heap: BinaryHeap::new(),
            inflation: 0.0,
            next_generation: 0,
            cost_blind: false,
        }
    }

    /// Creates GD(1): every entry costs 1, isolating the size/recency terms.
    pub fn cost_blind() -> Self {
        Self {
            cost_blind: true,
            ..Self::new()
        }
    }

    /// Returns the current inflation value `L`.
    pub fn inflation(&self) -> f64 {
        self.inflation
    }

    fn credit(&self, size: u64, cost: f64) -> f64 {
        let cost = if self.cost_blind { 1.0 } else { cost };
        self.inflation + cost / size.max(1) as f64
    }

    fn push(&mut self, key: EntryKey, size: u64, cost: f64) {
        let h = self.credit(size, cost);
        let generation = self.next_generation;
        self.next_generation += 1;
        self.entries.insert(
            key,
            Tracked {
                size,
                cost,
                generation,
            },
        );
        self.heap.push(Reverse((OrdF64(h), generation, key)));
    }
}

impl Default for GreedyDualSize {
    fn default() -> Self {
        Self::new()
    }
}

impl ReplacementPolicy for GreedyDualSize {
    fn name(&self) -> &'static str {
        if self.cost_blind {
            "gd1"
        } else {
            "gds"
        }
    }

    fn on_insert(&mut self, key: EntryKey, attrs: &EntryAttrs) {
        // Intermediate stage entries are rebuildable from any final read:
        // discount their cost so they lose ties against final versions.
        let cost = if attrs.pin_level == STAGE_PIN_LEVEL {
            attrs.cost * STAGE_COST_DISCOUNT
        } else {
            attrs.cost
        };
        self.push(key, attrs.size, cost);
    }

    fn on_hit(&mut self, key: EntryKey) {
        // Restore the entry's credit to its full L + cost/size.
        if let Some(t) = self.entries.get(&key) {
            let (size, cost) = (t.size, t.cost);
            self.push(key, size, cost);
        }
    }

    fn on_remove(&mut self, key: EntryKey) {
        self.entries.remove(&key);
    }

    fn evict(&mut self) -> Option<EntryKey> {
        while let Some(Reverse((OrdF64(h), generation, key))) = self.heap.pop() {
            match self.entries.get(&key) {
                Some(t) if t.generation == generation => {
                    self.entries.remove(&key);
                    // Inflate L to the evicted credit; future entries start
                    // from here, which is what ages out stale residents.
                    self.inflation = self.inflation.max(h);
                    return Some(key);
                }
                // Stale heap node (entry re-pushed or removed): skip.
                _ => continue,
            }
        }
        None
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use placeless_core::id::{DocumentId, UserId};

    fn key(i: u64) -> EntryKey {
        EntryKey::Version(DocumentId(i), UserId(1))
    }

    #[test]
    fn evicts_lowest_credit_first() {
        let mut gds = GreedyDualSize::new();
        gds.on_insert(key(1), &EntryAttrs::new(100, 1_000.0)); // H = 10
        gds.on_insert(key(2), &EntryAttrs::new(100, 100.0)); // H = 1
        gds.on_insert(key(3), &EntryAttrs::new(100, 500.0)); // H = 5
        assert_eq!(gds.evict(), Some(key(2)));
        assert_eq!(gds.evict(), Some(key(3)));
        assert_eq!(gds.evict(), Some(key(1)));
        assert_eq!(gds.evict(), None);
    }

    #[test]
    fn size_divides_cost() {
        let mut gds = GreedyDualSize::new();
        gds.on_insert(key(1), &EntryAttrs::new(10, 100.0)); // H = 10: small and pricey
        gds.on_insert(key(2), &EntryAttrs::new(1_000, 100.0)); // H = 0.1: big
        assert_eq!(gds.evict(), Some(key(2)), "big documents go first");
    }

    #[test]
    fn hit_refreshes_credit() {
        let mut gds = GreedyDualSize::new();
        gds.on_insert(key(1), &EntryAttrs::new(100, 100.0));
        gds.on_insert(key(2), &EntryAttrs::new(100, 100.0));
        // Evicting key(1) raises L to 1.0.
        assert_eq!(gds.evict(), Some(key(1)));
        assert_eq!(gds.inflation(), 1.0);
        // Insert a new entry; its credit is L + 1 = 2.
        gds.on_insert(key(3), &EntryAttrs::new(100, 100.0));
        // key(2) still has its old credit 1.0 and goes first...
        // unless it is hit, which refreshes it to L + 1 = 2.
        gds.on_hit(key(2));
        gds.on_insert(key(4), &EntryAttrs::new(1_000_000, 1.0)); // essentially L
        assert_eq!(gds.evict(), Some(key(4)));
    }

    #[test]
    fn inflation_is_monotone() {
        let mut gds = GreedyDualSize::new();
        for i in 0..10 {
            gds.on_insert(key(i), &EntryAttrs::new(10, (i * 100) as f64 + 10.0));
        }
        let mut last = 0.0;
        while gds.evict().is_some() {
            assert!(gds.inflation() >= last);
            last = gds.inflation();
        }
    }

    #[test]
    fn cost_blind_ignores_cost() {
        let mut gd1 = GreedyDualSize::cost_blind();
        gd1.on_insert(key(1), &EntryAttrs::new(100, 1_000_000.0));
        gd1.on_insert(key(2), &EntryAttrs::new(10, 1.0));
        // Cost is ignored; only size matters: 1/100 < 1/10.
        assert_eq!(gd1.evict(), Some(key(1)));
        assert_eq!(gd1.name(), "gd1");
    }

    #[test]
    fn remove_then_evict_skips_stale_nodes() {
        let mut gds = GreedyDualSize::new();
        gds.on_insert(key(1), &EntryAttrs::new(100, 1.0));
        gds.on_insert(key(2), &EntryAttrs::new(100, 2.0));
        gds.on_remove(key(1));
        assert_eq!(gds.evict(), Some(key(2)));
        assert_eq!(gds.evict(), None);
        assert!(gds.is_empty());
    }

    #[test]
    fn reinsert_updates_metadata() {
        let mut gds = GreedyDualSize::new();
        gds.on_insert(key(1), &EntryAttrs::new(100, 1.0));
        gds.on_insert(key(2), &EntryAttrs::new(100, 50.0));
        // Re-insert key(1) with a much higher cost.
        gds.on_insert(key(1), &EntryAttrs::new(100, 10_000.0));
        assert_eq!(gds.len(), 2);
        assert_eq!(gds.evict(), Some(key(2)), "refreshed entry survives");
    }

    #[test]
    fn stage_entries_lose_ties_against_final_versions() {
        let mut gds = GreedyDualSize::new();
        let stage = EntryKey::Stage(placeless_core::digest::md5(b"stage"));
        gds.on_insert(key(1), &EntryAttrs::new(100, 1_000.0));
        gds.on_insert(
            stage,
            &EntryAttrs::new(100, 1_000.0).with_pin_level(STAGE_PIN_LEVEL),
        );
        assert_eq!(
            gds.evict(),
            Some(stage),
            "equal cost/size: stage goes first"
        );
        assert_eq!(gds.evict(), Some(key(1)));
    }

    #[test]
    fn zero_size_does_not_divide_by_zero() {
        let mut gds = GreedyDualSize::new();
        gds.on_insert(key(1), &EntryAttrs::new(0, 100.0));
        assert_eq!(gds.evict(), Some(key(1)));
    }
}
