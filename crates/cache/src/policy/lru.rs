//! Least-recently-used replacement.

use super::{EntryAttrs, EntryKey, ReplacementPolicy};
use std::collections::HashMap;

/// Classic LRU, tracked with a logical access clock.
#[derive(Default)]
pub struct Lru {
    stamps: HashMap<EntryKey, u64>,
    tick: u64,
}

impl Lru {
    /// Creates an empty LRU tracker.
    pub fn new() -> Self {
        Self::default()
    }

    fn touch(&mut self, key: EntryKey) {
        self.tick += 1;
        self.stamps.insert(key, self.tick);
    }
}

impl ReplacementPolicy for Lru {
    fn name(&self) -> &'static str {
        "lru"
    }

    fn on_insert(&mut self, key: EntryKey, _attrs: &EntryAttrs) {
        self.touch(key);
    }

    fn on_hit(&mut self, key: EntryKey) {
        // Hits on untracked keys are ignored; only inserts admit keys.
        if self.stamps.contains_key(&key) {
            self.touch(key);
        }
    }

    fn on_remove(&mut self, key: EntryKey) {
        self.stamps.remove(&key);
    }

    fn evict(&mut self) -> Option<EntryKey> {
        let victim = self
            .stamps
            .iter()
            .min_by_key(|(_, &stamp)| stamp)
            .map(|(&k, _)| k)?;
        self.stamps.remove(&victim);
        Some(victim)
    }

    fn len(&self) -> usize {
        self.stamps.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use placeless_core::id::{DocumentId, UserId};

    fn key(i: u64) -> EntryKey {
        EntryKey::Version(DocumentId(i), UserId(1))
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut lru = Lru::new();
        lru.on_insert(key(1), &EntryAttrs::new(1, 1.0));
        lru.on_insert(key(2), &EntryAttrs::new(1, 1.0));
        lru.on_insert(key(3), &EntryAttrs::new(1, 1.0));
        lru.on_hit(key(1));
        assert_eq!(lru.evict(), Some(key(2)));
        assert_eq!(lru.evict(), Some(key(3)));
        assert_eq!(lru.evict(), Some(key(1)));
    }

    #[test]
    fn hit_order_matters_not_insert_order() {
        let mut lru = Lru::new();
        lru.on_insert(key(1), &EntryAttrs::new(1, 1.0));
        lru.on_insert(key(2), &EntryAttrs::new(1, 1.0));
        lru.on_hit(key(1));
        lru.on_hit(key(2));
        lru.on_hit(key(1));
        assert_eq!(lru.evict(), Some(key(2)));
    }
}
