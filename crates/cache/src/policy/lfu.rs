//! Least-frequently-used replacement.

use super::{EntryAttrs, EntryKey, ReplacementPolicy};
use std::collections::HashMap;

/// LFU with an LRU tiebreak among equal frequencies.
#[derive(Default)]
pub struct Lfu {
    counts: HashMap<EntryKey, (u64, u64)>,
    tick: u64,
}

impl Lfu {
    /// Creates an empty LFU tracker.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ReplacementPolicy for Lfu {
    fn name(&self) -> &'static str {
        "lfu"
    }

    fn on_insert(&mut self, key: EntryKey, _attrs: &EntryAttrs) {
        self.tick += 1;
        self.counts.insert(key, (1, self.tick));
    }

    fn on_hit(&mut self, key: EntryKey) {
        self.tick += 1;
        let tick = self.tick;
        if let Some((count, stamp)) = self.counts.get_mut(&key) {
            *count += 1;
            *stamp = tick;
        }
    }

    fn on_remove(&mut self, key: EntryKey) {
        self.counts.remove(&key);
    }

    fn evict(&mut self) -> Option<EntryKey> {
        let victim = self
            .counts
            .iter()
            .min_by_key(|(_, &(count, stamp))| (count, stamp))
            .map(|(&k, _)| k)?;
        self.counts.remove(&victim);
        Some(victim)
    }

    fn len(&self) -> usize {
        self.counts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use placeless_core::id::{DocumentId, UserId};

    fn key(i: u64) -> EntryKey {
        EntryKey::Version(DocumentId(i), UserId(1))
    }

    #[test]
    fn evicts_least_frequent() {
        let mut lfu = Lfu::new();
        lfu.on_insert(key(1), &EntryAttrs::new(1, 1.0));
        lfu.on_insert(key(2), &EntryAttrs::new(1, 1.0));
        lfu.on_hit(key(1));
        lfu.on_hit(key(1));
        lfu.on_hit(key(2));
        assert_eq!(lfu.evict(), Some(key(2)));
        assert_eq!(lfu.evict(), Some(key(1)));
    }

    #[test]
    fn ties_break_by_recency() {
        let mut lfu = Lfu::new();
        lfu.on_insert(key(1), &EntryAttrs::new(1, 1.0));
        lfu.on_insert(key(2), &EntryAttrs::new(1, 1.0));
        lfu.on_hit(key(1));
        lfu.on_hit(key(2)); // both at count 2; key(1) older
        assert_eq!(lfu.evict(), Some(key(1)));
    }
}
