//! First-in first-out replacement.

use super::{EntryAttrs, EntryKey, ReplacementPolicy};
use std::collections::{HashSet, VecDeque};

/// FIFO: evicts in insertion order, ignoring hits entirely.
#[derive(Default)]
pub struct Fifo {
    order: VecDeque<EntryKey>,
    live: HashSet<EntryKey>,
}

impl Fifo {
    /// Creates an empty FIFO tracker.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ReplacementPolicy for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn on_insert(&mut self, key: EntryKey, _attrs: &EntryAttrs) {
        if self.live.insert(key) {
            self.order.push_back(key);
        }
    }

    fn on_hit(&mut self, _key: EntryKey) {}

    fn on_remove(&mut self, key: EntryKey) {
        self.live.remove(&key);
    }

    fn evict(&mut self) -> Option<EntryKey> {
        // Skip queue entries removed out of band.
        while let Some(key) = self.order.pop_front() {
            if self.live.remove(&key) {
                return Some(key);
            }
        }
        None
    }

    fn len(&self) -> usize {
        self.live.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use placeless_core::id::{DocumentId, UserId};

    fn key(i: u64) -> EntryKey {
        EntryKey::Version(DocumentId(i), UserId(1))
    }

    #[test]
    fn evicts_in_insertion_order() {
        let mut fifo = Fifo::new();
        fifo.on_insert(key(1), &EntryAttrs::new(1, 1.0));
        fifo.on_insert(key(2), &EntryAttrs::new(1, 1.0));
        fifo.on_hit(key(1)); // hits do not matter
        assert_eq!(fifo.evict(), Some(key(1)));
        assert_eq!(fifo.evict(), Some(key(2)));
        assert_eq!(fifo.evict(), None);
    }

    #[test]
    fn duplicate_insert_keeps_original_position() {
        let mut fifo = Fifo::new();
        fifo.on_insert(key(1), &EntryAttrs::new(1, 1.0));
        fifo.on_insert(key(2), &EntryAttrs::new(1, 1.0));
        fifo.on_insert(key(1), &EntryAttrs::new(1, 1.0));
        assert_eq!(fifo.evict(), Some(key(1)));
    }
}
