//! Single-flight miss coalescing and per-origin in-flight windows.
//!
//! Under heavy concurrent traffic the expensive event is not the miss
//! itself but the *redundant* miss: N threads observe the same key absent
//! and all N walk the property chain, so one cold popular document costs
//! N provider fetches and N transform executions. A [`FlightGroup`]
//! deduplicates that work: the first thread to miss a key becomes the
//! flight's **leader** and computes the result; every other thread that
//! misses the same key while the flight is open becomes a **waiter**,
//! blocks on the leader's condvar, and shares the leader's outcome — a
//! cloneable [`FlightResult`], so errors are shared exactly like bytes.
//!
//! The flight is removed from the table *before* its outcome is
//! published, so a thread arriving after completion starts a fresh
//! flight: a failed flight is never sticky, and the next read retries
//! against the origin.
//!
//! Both layers of the read path use the same group type:
//!
//! * **version flights**, keyed `EntryKey::Version(doc, user)`, wrap the
//!   whole resilient miss fetch;
//! * **stage flights**, keyed `EntryKey::Stage(signature)`, wrap one
//!   stage execution inside the compiled-plan walk, so concurrent misses
//!   on the same `(doc, stage)` signature — typically different users
//!   sharing a chain prefix — compute the intermediate exactly once.
//!
//! [`InflightWindow`] is the companion back-pressure mechanism: a bounded
//! count of concurrently in-flight fetches per origin, so a miss storm
//! that single-flight cannot coalesce (distinct keys, one origin) queues
//! at the cache instead of stampeding the origin.
//!
//! Locks here are `std::sync` primitives (the flight wait needs a
//! condvar) and are **leaves** in the manager's lock order: no shard lock
//! is ever taken while one is held, and the manager only joins flights
//! and acquires window slots while holding no shard lock. Waiting
//! threads hold no lock at all while blocked. Leader/waiter waits cannot
//! cycle: a version leader may wait on a stage flight, but a stage
//! leader only executes its transform — it never joins another flight.

use crate::policy::EntryKey;
use bytes::Bytes;
use placeless_core::error::PlacelessError;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// What a flight leader publishes to its waiters. Cloneable, so one
/// computation fans out to any number of waiters — including one
/// failure.
#[derive(Debug, Clone)]
pub(crate) enum FlightResult {
    /// The leader produced shareable bytes.
    Shared {
        /// The computed content.
        bytes: Bytes,
        /// Whether the read path demands per-read event forwarding
        /// (`CacheableWithEvents`): each waiter posts its own event.
        forward: bool,
    },
    /// The leader completed, but the result must not be shared
    /// (uncacheable content has to reach the origin on every read).
    /// Waiters fall back to their own fetch.
    Unshared,
    /// The leader's fetch failed; every waiter shares this error.
    Failed(PlacelessError),
}

enum FlightState {
    Pending,
    Done(FlightResult),
    /// The leader unwound without completing (panic in a transform).
    /// Waiters fall back to their own fetch rather than hanging.
    Abandoned,
}

struct Flight {
    state: Mutex<FlightState>,
    done: Condvar,
}

impl Flight {
    fn new() -> Self {
        Self {
            state: Mutex::new(FlightState::Pending),
            done: Condvar::new(),
        }
    }

    /// Blocks until the leader publishes; `None` means abandoned.
    fn wait(&self) -> Option<FlightResult> {
        let mut state = lock(&self.state);
        loop {
            match &*state {
                FlightState::Pending => {
                    state = self
                        .done
                        .wait(state)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                FlightState::Done(result) => return Some(result.clone()),
                FlightState::Abandoned => return None,
            }
        }
    }

    fn finish(&self, state: FlightState) {
        *lock(&self.state) = state;
        self.done.notify_all();
    }
}

/// A mutex lock that shrugs off poisoning: flight state transitions are
/// trivial stores, so state is coherent even if a panicking thread was
/// interrupted holding the lock.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// How [`FlightGroup::join`] classified the caller.
pub(crate) enum Join<'a> {
    /// First thread in: compute the result, then publish it through the
    /// guard. Dropping the guard without completing abandons the flight.
    Leader(FlightGuard<'a>),
    /// Another thread was already computing this key; this is its
    /// (cloned) outcome. `None` means the leader abandoned the flight —
    /// fall back to an independent fetch.
    Waited(Option<FlightResult>),
}

/// One in-flight computation per key; see the module docs.
#[derive(Default)]
pub(crate) struct FlightGroup {
    flights: Mutex<HashMap<EntryKey, Arc<Flight>>>,
    /// Threads currently blocked inside [`FlightGroup::join`] as waiters
    /// (a gauge, exposed for experiments and tests).
    waiting: AtomicU64,
}

impl FlightGroup {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Joins the flight for `key`, creating it if none is open.
    ///
    /// Waiters block (holding no lock) until the leader publishes.
    pub(crate) fn join(&self, key: EntryKey) -> Join<'_> {
        let flight = {
            let mut flights = lock(&self.flights);
            match flights.get(&key) {
                Some(flight) => Arc::clone(flight),
                None => {
                    let flight = Arc::new(Flight::new());
                    flights.insert(key, Arc::clone(&flight));
                    return Join::Leader(FlightGuard {
                        group: self,
                        key,
                        flight,
                        completed: false,
                    });
                }
            }
        };
        self.waiting.fetch_add(1, Ordering::SeqCst);
        let result = flight.wait();
        self.waiting.fetch_sub(1, Ordering::SeqCst);
        Join::Waited(result)
    }

    /// Returns how many threads are currently blocked waiting on some
    /// flight in this group.
    pub(crate) fn waiting(&self) -> u64 {
        self.waiting.load(Ordering::SeqCst)
    }

    fn remove(&self, key: EntryKey) {
        lock(&self.flights).remove(&key);
    }
}

/// The leader's obligation to publish; see [`Join::Leader`].
pub(crate) struct FlightGuard<'a> {
    group: &'a FlightGroup,
    key: EntryKey,
    flight: Arc<Flight>,
    completed: bool,
}

impl FlightGuard<'_> {
    /// Publishes the leader's outcome to every waiter and closes the
    /// flight. The flight leaves the table *before* the outcome lands,
    /// so later arrivals start a fresh flight (a failure is shared with
    /// the threads that waited on it, never with the next read).
    pub(crate) fn complete(mut self, result: FlightResult) {
        self.group.remove(self.key);
        self.flight.finish(FlightState::Done(result));
        self.completed = true;
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if !self.completed {
            self.group.remove(self.key);
            self.flight.finish(FlightState::Abandoned);
        }
    }
}

/// How [`InflightWindow::acquire_until`] resolved a slot request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Acquire {
    /// A slot was claimed; `queued_micros` is the virtual time spent
    /// parked before admission (0 when a slot was free on arrival).
    Admitted {
        /// Virtual microseconds spent queued before the slot freed.
        queued_micros: u64,
    },
    /// The request was shed: its remaining deadline budget could not
    /// cover the expected queue wait plus service time, or the deadline
    /// lapsed while parked. No slot is held.
    Shed {
        /// Virtual microseconds spent queued before giving up.
        queued_micros: u64,
    },
}

/// Per-origin slot accounting inside [`InflightWindow`].
#[derive(Default)]
struct OriginSlots {
    /// Fetches currently holding a slot.
    inflight: usize,
    /// Readers parked waiting for a slot (for admission math and the
    /// brownout pressure signal).
    queued: usize,
    /// AIMD override of the window width; `None` means the static
    /// default applies.
    limit: Option<usize>,
}

/// A bounded per-origin window of concurrently in-flight fetches.
///
/// `acquire` blocks (holding no other lock) while the origin's window is
/// already full; `release` frees the slot and wakes blocked threads.
/// Slots are held only for the duration of a single origin attempt,
/// never across a flight wait for another key's leader — so slot waits
/// always terminate.
///
/// Two extensions support the overload subsystem and change nothing
/// until used: [`InflightWindow::set_limit`] lets the AIMD controller
/// widen or shrink one origin's window at runtime, and
/// [`InflightWindow::acquire_until`] is the deadline-aware variant of
/// `acquire` that sheds doomed requests instead of queueing them (see
/// [`crate::overload`]).
pub(crate) struct InflightWindow {
    default_limit: usize,
    slots: Mutex<HashMap<String, OriginSlots>>,
    freed: Condvar,
    /// Total readers parked across all origins (brownout pressure
    /// gauge; kept atomic so sampling never takes the slot lock).
    queued: AtomicU64,
}

impl InflightWindow {
    /// How long a parked reader sleeps between deadline re-checks in
    /// [`InflightWindow::acquire_until`]. Wall-clock, not virtual: the
    /// virtual clock only moves when some thread advances it, so parked
    /// readers must poll it to notice a deadline that lapsed without a
    /// slot being freed.
    const QUEUE_POLL: std::time::Duration = std::time::Duration::from_millis(1);

    /// Creates a window admitting up to `limit` concurrent fetches per
    /// origin (`limit` is clamped to at least 1 — a zero-wide window
    /// would admit nothing and hang the first fetch).
    pub(crate) fn new(limit: usize) -> Self {
        Self {
            default_limit: limit.max(1),
            slots: Mutex::new(HashMap::new()),
            freed: Condvar::new(),
            queued: AtomicU64::new(0),
        }
    }

    fn effective_limit(&self, slots: &OriginSlots) -> usize {
        slots.limit.unwrap_or(self.default_limit)
    }

    /// Overrides `origin`'s window width (clamped ≥ 1). Raising the
    /// limit wakes parked readers so they can claim the new slots.
    pub(crate) fn set_limit(&self, origin: &str, limit: usize) {
        let mut slots = lock(&self.slots);
        let entry = slots.entry(origin.to_owned()).or_default();
        let limit = limit.max(1);
        let raised = limit > self.effective_limit(entry);
        entry.limit = Some(limit);
        drop(slots);
        if raised {
            self.freed.notify_all();
        }
    }

    /// Current window width for `origin`.
    #[cfg(test)]
    pub(crate) fn limit_for(&self, origin: &str) -> usize {
        let slots = lock(&self.slots);
        slots
            .get(origin)
            .map(|s| self.effective_limit(s))
            .unwrap_or(self.default_limit)
    }

    /// Total readers currently parked on any origin's window.
    pub(crate) fn queued_total(&self) -> u64 {
        self.queued.load(Ordering::SeqCst)
    }

    /// Blocks until a slot for `origin` is free, then claims it.
    pub(crate) fn acquire(&self, origin: &str) {
        let mut slots = lock(&self.slots);
        loop {
            let entry = slots.entry(origin.to_owned()).or_default();
            if entry.inflight < self.effective_limit(entry) {
                entry.inflight += 1;
                return;
            }
            slots = self
                .freed
                .wait(slots)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Deadline-aware [`InflightWindow::acquire`]: claims a slot for
    /// `origin` only if the caller can plausibly finish in time.
    ///
    /// On arrival, the expected completion time (queue depth ÷ window
    /// width × `expected_service_micros`, see
    /// [`crate::overload::expected_completion_micros`]) is compared
    /// against the budget remaining until `deadline_at`; a doomed
    /// request is shed immediately without queueing. While parked, the
    /// reader re-checks the virtual clock (woken by `release`, or every
    /// [`Self::QUEUE_POLL`] of wall time otherwise) and sheds the moment
    /// its deadline lapses — a reader whose deadline expires while
    /// queued is never served late. `deadline_at: None` never sheds and
    /// degrades to plain `acquire` with queue accounting.
    pub(crate) fn acquire_until(
        &self,
        origin: &str,
        clock: &placeless_simenv::VirtualClock,
        deadline_at: Option<placeless_simenv::Instant>,
        expected_service_micros: u64,
    ) -> Acquire {
        let started = clock.now();
        let mut slots = lock(&self.slots);
        {
            let entry = slots.entry(origin.to_owned()).or_default();
            let limit = self.effective_limit(entry);
            if entry.inflight < limit {
                entry.inflight += 1;
                return Acquire::Admitted { queued_micros: 0 };
            }
            if let Some(deadline_at) = deadline_at {
                let remaining = deadline_at.since(started);
                let expected = crate::overload::expected_completion_micros(
                    entry.queued as u64,
                    limit as u32,
                    expected_service_micros,
                );
                if remaining == 0 || expected > remaining {
                    return Acquire::Shed { queued_micros: 0 };
                }
            }
            entry.queued += 1;
        }
        self.queued.fetch_add(1, Ordering::SeqCst);
        let verdict = loop {
            let entry = slots.entry(origin.to_owned()).or_default();
            if entry.inflight < self.effective_limit(entry) {
                entry.inflight += 1;
                entry.queued -= 1;
                break Acquire::Admitted {
                    queued_micros: clock.now().since(started),
                };
            }
            if deadline_at.is_some_and(|d| clock.now() >= d) {
                entry.queued -= 1;
                break Acquire::Shed {
                    queued_micros: clock.now().since(started),
                };
            }
            slots = self
                .freed
                .wait_timeout(slots, Self::QUEUE_POLL)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        };
        self.queued.fetch_sub(1, Ordering::SeqCst);
        verdict
    }

    /// Releases a slot claimed by [`InflightWindow::acquire`] or
    /// [`InflightWindow::acquire_until`].
    pub(crate) fn release(&self, origin: &str) {
        let mut slots = lock(&self.slots);
        if let Some(entry) = slots.get_mut(origin) {
            entry.inflight = entry.inflight.saturating_sub(1);
            if entry.inflight == 0 && entry.queued == 0 && entry.limit.is_none() {
                slots.remove(origin);
            }
        }
        drop(slots);
        self.freed.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use placeless_core::id::{DocumentId, UserId};
    use std::sync::atomic::AtomicUsize;
    use std::thread;
    use std::time::Duration;

    fn key(n: u64) -> EntryKey {
        EntryKey::Version(DocumentId(n), UserId(1))
    }

    #[test]
    fn sole_joiner_is_leader() {
        let group = FlightGroup::new();
        match group.join(key(1)) {
            Join::Leader(guard) => guard.complete(FlightResult::Unshared),
            Join::Waited(_) => panic!("first joiner must lead"),
        }
        // The flight closed: the next joiner leads a fresh one.
        assert!(matches!(group.join(key(1)), Join::Leader(_)));
    }

    #[test]
    fn waiters_share_the_leaders_bytes() {
        let group = Arc::new(FlightGroup::new());
        let Join::Leader(guard) = group.join(key(7)) else {
            panic!("first joiner must lead");
        };
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let group = Arc::clone(&group);
                thread::spawn(move || match group.join(key(7)) {
                    Join::Waited(Some(FlightResult::Shared { bytes, .. })) => bytes,
                    _ => panic!("expected a shared outcome"),
                })
            })
            .collect();
        // All four must be blocked inside join before the leader lands.
        while group.waiting() < 4 {
            thread::sleep(Duration::from_millis(1));
        }
        guard.complete(FlightResult::Shared {
            bytes: Bytes::from_static(b"payload"),
            forward: false,
        });
        for waiter in waiters {
            assert_eq!(waiter.join().expect("no panic"), "payload");
        }
        assert_eq!(group.waiting(), 0);
    }

    #[test]
    fn waiters_share_the_leaders_error() {
        let group = Arc::new(FlightGroup::new());
        let Join::Leader(guard) = group.join(key(9)) else {
            panic!("first joiner must lead");
        };
        let waiter = {
            let group = Arc::clone(&group);
            thread::spawn(move || match group.join(key(9)) {
                Join::Waited(Some(FlightResult::Failed(error))) => error,
                _ => panic!("expected the shared failure"),
            })
        };
        while group.waiting() < 1 {
            thread::sleep(Duration::from_millis(1));
        }
        guard.complete(FlightResult::Failed(PlacelessError::Unavailable {
            source: "origin-x".into(),
            retry_after: None,
        }));
        let error = waiter.join().expect("no panic");
        assert!(matches!(error, PlacelessError::Unavailable { .. }));
    }

    #[test]
    fn dropped_guard_abandons_instead_of_hanging() {
        let group = Arc::new(FlightGroup::new());
        let guard = match group.join(key(3)) {
            Join::Leader(guard) => guard,
            Join::Waited(_) => panic!("first joiner must lead"),
        };
        let waiter = {
            let group = Arc::clone(&group);
            thread::spawn(move || matches!(group.join(key(3)), Join::Waited(None)))
        };
        while group.waiting() < 1 {
            thread::sleep(Duration::from_millis(1));
        }
        drop(guard);
        assert!(waiter.join().expect("no panic"), "waiter saw abandonment");
    }

    #[test]
    fn distinct_keys_fly_independently() {
        let group = FlightGroup::new();
        let a = match group.join(key(1)) {
            Join::Leader(guard) => guard,
            Join::Waited(_) => panic!("lead a"),
        };
        // A different key must not wait on key 1's flight.
        match group.join(key(2)) {
            Join::Leader(guard) => guard.complete(FlightResult::Unshared),
            Join::Waited(_) => panic!("key 2 must lead its own flight"),
        }
        a.complete(FlightResult::Unshared);
    }

    #[test]
    fn window_bounds_concurrency_per_origin() {
        let window = Arc::new(InflightWindow::new(2));
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let window = Arc::clone(&window);
                let running = Arc::clone(&running);
                let peak = Arc::clone(&peak);
                thread::spawn(move || {
                    window.acquire("origin-a");
                    let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    thread::sleep(Duration::from_millis(2));
                    running.fetch_sub(1, Ordering::SeqCst);
                    window.release("origin-a");
                })
            })
            .collect();
        for thread in threads {
            thread.join().expect("no panic");
        }
        assert!(peak.load(Ordering::SeqCst) <= 2, "window overshot");
    }

    #[test]
    fn window_is_per_origin() {
        let window = InflightWindow::new(1);
        window.acquire("origin-a");
        // A different origin is admitted immediately even though
        // origin-a's window is full.
        window.acquire("origin-b");
        window.release("origin-a");
        window.release("origin-b");
    }

    #[test]
    fn set_limit_overrides_one_origin_and_persists_when_idle() {
        let window = InflightWindow::new(1);
        window.set_limit("origin-a", 2);
        assert_eq!(window.limit_for("origin-a"), 2);
        assert_eq!(window.limit_for("origin-b"), 1, "others keep the default");
        window.acquire("origin-a");
        window.acquire("origin-a");
        window.release("origin-a");
        window.release("origin-a");
        // The override survives the origin going idle.
        assert_eq!(window.limit_for("origin-a"), 2);
    }

    #[test]
    fn acquire_until_sheds_doomed_arrivals_without_queueing() {
        use placeless_simenv::VirtualClock;
        let clock = VirtualClock::new();
        let window = InflightWindow::new(1);
        window.acquire("o");
        // Budget 1000µs, expected service 5000µs: doomed on arrival.
        let deadline = Some(clock.now().plus(1_000));
        assert_eq!(
            window.acquire_until("o", &clock, deadline, 5_000),
            Acquire::Shed { queued_micros: 0 }
        );
        assert_eq!(window.queued_total(), 0, "shed arrivals never park");
        // Without a deadline the same arrival would have queued; with a
        // generous budget and a free slot it is admitted instantly.
        window.release("o");
        assert_eq!(
            window.acquire_until("o", &clock, deadline, 5_000),
            Acquire::Admitted { queued_micros: 0 }
        );
        window.release("o");
    }

    #[test]
    fn queued_reader_sheds_when_virtual_deadline_lapses() {
        use placeless_simenv::VirtualClock;
        let clock = Arc::new(VirtualClock::new());
        let window = Arc::new(InflightWindow::new(1));
        window.acquire("o");
        let parked = {
            let clock = Arc::clone(&clock);
            let window = Arc::clone(&window);
            thread::spawn(move || {
                // Budget 10000µs covers one expected service, so the
                // reader queues rather than shedding on arrival.
                let deadline = Some(clock.now().plus(10_000));
                window.acquire_until("o", &clock, deadline, 5_000)
            })
        };
        while window.queued_total() < 1 {
            thread::sleep(Duration::from_millis(1));
        }
        // The slot never frees; the virtual clock passes the deadline.
        clock.advance(20_000);
        let verdict = parked.join().expect("no panic");
        let Acquire::Shed { queued_micros } = verdict else {
            panic!("expected a shed, got {verdict:?}");
        };
        assert!(queued_micros >= 10_000, "queue wait is accounted");
        window.release("o");
    }
}
