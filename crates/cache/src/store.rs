//! Concurrent, signature-deduplicated content storage.
//!
//! [`ConcurrentStore`] is the sharded cache's replacement for the
//! single-threaded [`crate::keys::SharedStore`]. It keeps the same
//! accounting model — content is stored once per MD5 [`Signature`] with a
//! reference count, so identical per-user renditions share physical bytes —
//! but distributes the `Signature → content` map over lock stripes and
//! maintains the physical/logical byte totals as atomic counters, so
//! readers never take a lock to answer [`ConcurrentStore::physical_bytes`].
//!
//! Unlike `SharedStore`, the `(document, user) → Signature` binding does
//! *not* live here: cache shards own their slice of that map (see
//! `crate::manager`), because key bindings must change atomically with the
//! shard's entry metadata. The store only counts references.
//!
//! # Lock ordering
//!
//! Stripe locks are leaves in the cache's lock hierarchy: a shard lock may
//! be held when a stripe lock is taken, never the reverse, and no two
//! stripe locks are ever held at once. See the deadlock argument in
//! `crate::manager`.

use crate::digest::{md5, Signature};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default number of lock stripes. More stripes than shards so that
/// content operations from different shards rarely contend.
const DEFAULT_STRIPES: usize = 32;

struct Stored {
    content: Bytes,
    refs: u64,
}

/// Error returned by [`ConcurrentStore::try_acquire`] when charging the
/// incoming bytes would push physical residency past the budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoRoom;

/// A thread-safe refcounted content store with atomic byte accounting.
pub struct ConcurrentStore {
    stripes: Box<[Mutex<HashMap<Signature, Stored>>]>,
    physical: AtomicU64,
    logical: AtomicU64,
}

impl ConcurrentStore {
    /// Creates a store with the default stripe count.
    pub fn new() -> Self {
        Self::with_stripes(DEFAULT_STRIPES)
    }

    /// Creates a store with `stripes` lock stripes (minimum 1).
    pub fn with_stripes(stripes: usize) -> Self {
        let stripes = stripes.max(1);
        Self {
            stripes: (0..stripes).map(|_| Mutex::new(HashMap::new())).collect(),
            physical: AtomicU64::new(0),
            logical: AtomicU64::new(0),
        }
    }

    /// Computes the signature the store would file `bytes` under.
    pub fn signature_of(bytes: &[u8]) -> Signature {
        md5(bytes)
    }

    fn stripe_of(&self, sig: &Signature) -> &Mutex<HashMap<Signature, Stored>> {
        // The signature is an MD5 digest: any byte slice is uniformly
        // distributed, so the first 8 bytes make a fine stripe selector
        // (and a deterministic one — no per-process hasher seeds).
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&sig.0[..8]);
        let index = u64::from_le_bytes(raw) as usize % self.stripes.len();
        &self.stripes[index]
    }

    /// Adds one reference to `bytes` under `sig`, charging physical bytes
    /// only if this signature is new, and failing if that charge would
    /// exceed `budget`. Returns whether the content was already resident
    /// (a shared fill).
    ///
    /// The capacity check and the insert are atomic with respect to other
    /// store operations on the same signature (stripe lock held), and the
    /// physical counter is raised with a compare-and-swap loop, so the
    /// budget can never be overshot by concurrent acquires.
    pub fn try_acquire(&self, sig: Signature, bytes: &Bytes, budget: u64) -> Result<bool, NoRoom> {
        let size = bytes.len() as u64;
        let mut stripe = self.stripe_of(&sig).lock();
        if let Some(stored) = stripe.get_mut(&sig) {
            stored.refs += 1;
            self.logical.fetch_add(size, Ordering::Relaxed);
            return Ok(true);
        }
        // New content: reserve the physical bytes before publishing.
        let mut current = self.physical.load(Ordering::Relaxed);
        loop {
            if current + size > budget {
                return Err(NoRoom);
            }
            match self.physical.compare_exchange_weak(
                current,
                current + size,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
        self.logical.fetch_add(size, Ordering::Relaxed);
        stripe.insert(
            sig,
            Stored {
                content: bytes.clone(),
                refs: 1,
            },
        );
        Ok(false)
    }

    /// Adds one reference to `bytes` under `sig` without a budget check.
    /// Used by the verifier replace path, which (as in the original
    /// single-lock cache) refreshes content in place and leaves capacity
    /// enforcement to the caller. Returns whether the content was shared.
    pub fn acquire(&self, sig: Signature, bytes: &Bytes) -> bool {
        let size = bytes.len() as u64;
        let mut stripe = self.stripe_of(&sig).lock();
        self.logical.fetch_add(size, Ordering::Relaxed);
        if let Some(stored) = stripe.get_mut(&sig) {
            stored.refs += 1;
            true
        } else {
            self.physical.fetch_add(size, Ordering::Relaxed);
            stripe.insert(
                sig,
                Stored {
                    content: bytes.clone(),
                    refs: 1,
                },
            );
            false
        }
    }

    /// Drops one reference to `sig`; the content is removed (and its
    /// physical bytes uncharged) when the last reference goes.
    pub fn release(&self, sig: Signature) {
        let mut stripe = self.stripe_of(&sig).lock();
        let Some(stored) = stripe.get_mut(&sig) else {
            debug_assert!(false, "release of untracked signature");
            return;
        };
        let size = stored.content.len() as u64;
        self.logical.fetch_sub(size, Ordering::Relaxed);
        stored.refs -= 1;
        if stored.refs == 0 {
            stripe.remove(&sig);
            self.physical.fetch_sub(size, Ordering::Relaxed);
        }
    }

    /// Returns the content filed under `sig`, if resident.
    pub fn get(&self, sig: Signature) -> Option<Bytes> {
        self.stripe_of(&sig)
            .lock()
            .get(&sig)
            .map(|s| s.content.clone())
    }

    /// Returns deduplicated resident bytes.
    pub fn physical_bytes(&self) -> u64 {
        self.physical.load(Ordering::Relaxed)
    }

    /// Returns resident bytes as if nothing were shared.
    pub fn logical_bytes(&self) -> u64 {
        self.logical.load(Ordering::Relaxed)
    }
}

impl Default for ConcurrentStore {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bytes(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn dedup_shares_physical_bytes() {
        let store = ConcurrentStore::new();
        let content = bytes("hello world");
        let sig = ConcurrentStore::signature_of(&content);
        assert_eq!(store.try_acquire(sig, &content, 1_000), Ok(false));
        assert_eq!(store.try_acquire(sig, &content, 1_000), Ok(true));
        assert_eq!(store.physical_bytes(), 11);
        assert_eq!(store.logical_bytes(), 22);
        store.release(sig);
        assert_eq!(store.physical_bytes(), 11);
        assert_eq!(store.get(sig).unwrap(), content);
        store.release(sig);
        assert_eq!(store.physical_bytes(), 0);
        assert_eq!(store.logical_bytes(), 0);
        assert!(store.get(sig).is_none());
    }

    #[test]
    fn try_acquire_respects_budget() {
        let store = ConcurrentStore::new();
        let a = bytes("aaaaaaaa");
        let sig_a = ConcurrentStore::signature_of(&a);
        assert_eq!(store.try_acquire(sig_a, &a, 10), Ok(false));
        let b = bytes("bbbbbbbb");
        let sig_b = ConcurrentStore::signature_of(&b);
        assert_eq!(store.try_acquire(sig_b, &b, 10), Err(NoRoom));
        // A shared acquire charges no physical bytes, so it always fits.
        assert_eq!(store.try_acquire(sig_a, &a, 10), Ok(true));
        store.release(sig_a);
        store.release(sig_a);
        assert_eq!(store.try_acquire(sig_b, &b, 10), Ok(false));
    }

    #[test]
    fn concurrent_acquires_never_overshoot() {
        use std::sync::Arc;
        let store = Arc::new(ConcurrentStore::new());
        let budget = 400u64;
        std::thread::scope(|scope| {
            for t in 0..8 {
                let store = Arc::clone(&store);
                scope.spawn(move || {
                    for i in 0..200 {
                        let content = bytes(&format!("content-{t}-{i}-padpadpad"));
                        let sig = ConcurrentStore::signature_of(&content);
                        if store.try_acquire(sig, &content, budget).is_ok() {
                            assert!(store.physical_bytes() <= budget);
                            store.release(sig);
                        }
                    }
                });
            }
        });
        assert_eq!(store.physical_bytes(), 0);
    }
}
