//! Collection prefetching.
//!
//! §5's "mechanisms that tailor caching for related documents (e.g.,
//! contained in a collection)": when a read misses on a document that
//! belongs to a collection, the cache can pull the sibling documents in the
//! same pass, so browsing a collection pays one cold start instead of one
//! per member. [`PrefetchConfig`] bounds how many siblings a single miss
//! may drag in.

/// How the cache handles collection siblings on a miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchConfig {
    /// Whether collection prefetch is enabled.
    pub enabled: bool,
    /// Maximum sibling documents fetched per triggering miss.
    pub max_per_miss: usize,
}

impl PrefetchConfig {
    /// Prefetch disabled.
    pub const OFF: PrefetchConfig = PrefetchConfig {
        enabled: false,
        max_per_miss: 0,
    };

    /// Prefetch up to `max_per_miss` siblings per miss.
    pub fn up_to(max_per_miss: usize) -> Self {
        Self {
            enabled: max_per_miss > 0,
            max_per_miss,
        }
    }
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        Self::OFF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_disabled() {
        let off = PrefetchConfig::OFF;
        assert!(!off.enabled);
        assert_eq!(PrefetchConfig::default(), off);
    }

    #[test]
    fn up_to_zero_is_disabled() {
        assert!(!PrefetchConfig::up_to(0).enabled);
        assert!(PrefetchConfig::up_to(4).enabled);
        assert_eq!(PrefetchConfig::up_to(4).max_per_miss, 4);
    }
}
