//! The document cache manager.
//!
//! A [`DocumentCache`] interposes between an application and the Placeless
//! middleware (the paper's "application-level cache"). It implements the
//! full §3 design:
//!
//! * entries are tagged `(document, user)` and deduplicated by MD5 content
//!   signature ([`crate::store::ConcurrentStore`]);
//! * **verifiers** shipped by the read path run on every hit, trading hit
//!   latency for consistency with conditions outside Placeless control;
//! * **notifiers** deliver invalidations through the
//!   [`placeless_core::notifier::InvalidationBus`] for changes inside
//!   Placeless control;
//! * the **cacheability indicator** is honored: `Uncacheable` content is
//!   never stored, and `CacheableWithEvents` hits forward the operation
//!   event so audit-like properties still fire;
//! * the replacement policy (Greedy-Dual-Size by default) consumes the
//!   **replacement costs** accumulated along the read path;
//! * writes run **write-through** or **write-back**; both route through
//!   the resilient write pipeline (retries, per-origin breakers shared
//!   with the read path, deadline), and write-back can journal every
//!   buffered write to stable storage for crash recovery
//!   ([`CacheConfig::builder`]'s `journal`, [`DocumentCache::recover`]).
//!
//! # Concurrency architecture
//!
//! The cache is sharded: entry state — the `(doc, user) → signature`
//! binding, entry metadata, the replacement-policy instance, and dirty
//! write-back data — is split over N [`Shard`]s, each behind its own
//! mutex, with the shard chosen by a *fixed* multiplicative hash of the
//! key (no per-process hasher seeds, so runs are reproducible). Content
//! bytes live outside the shards in one [`ConcurrentStore`], so identical
//! renditions are deduplicated **across** shards exactly as they were in
//! the single-lock design, and the global physical/logical byte totals
//! are plain atomic counters.
//!
//! Reads, writes, and user-scoped invalidations touch only the target
//! key's shard; document-scoped invalidations and flushes sweep the
//! shards one at a time. Statistics are relaxed atomics
//! ([`AtomicCacheStats`]), so no counter update ever takes a lock it
//! would not otherwise hold. With `shards: 1` the cache degenerates to
//! the original global-lock design and reproduces its statistics exactly.
//!
//! ## Capacity
//!
//! The byte budget is global. A fill *reserves* physical bytes in the
//! content store with a compare-and-swap bounded by the budget
//! ([`ConcurrentStore::try_acquire`]), and evicts until the reservation
//! succeeds — so concurrent fills can never overshoot the budget, unlike
//! an insert-then-evict scheme. Victims come from the filling shard's own
//! policy first; when that shard has nothing (more) to give, the fill
//! *steals* one eviction from a sibling shard. The one deliberate
//! exception is the verifier replace path, which (as in the original
//! design) refreshes content in place and reclaims any overshoot
//! immediately afterwards.
//!
//! ## Lock ordering (deadlock freedom)
//!
//! Three rules, checkable by inspection of this file:
//!
//! 1. a thread **blocks** on at most one shard lock, acquired while
//!    holding no other cache lock;
//! 2. a thread already holding a shard lock may probe sibling shards only
//!    via `try_lock` (work-stealing eviction), which never blocks;
//! 3. content-store stripe locks, the write-journal lock, and the
//!    parked-set lock are **leaves**: taken after any shard locks,
//!    released before returning, never two at once, and no shard lock is
//!    ever requested while one of them is held.
//!
//! Every blocking edge therefore points from "holding nothing" to a shard
//! lock, or from a shard lock to a stripe lock; the wait-for graph is
//! acyclic and no deadlock is possible. Miss fetches, flush writes, and
//! event forwarding run with **no** cache lock held, because the
//! middleware path may re-enter the cache through the invalidation bus.
//!
//! ## Single-flight coalescing
//!
//! Concurrent misses on the same key are deduplicated by two
//! [`crate::singleflight::FlightGroup`]s: one keyed by version key around
//! the whole resilient miss fetch, one keyed by stage signature around
//! each stage execution of the compiled-plan walk. The first thread in
//! leads and computes; the rest block (holding no cache lock) and share
//! the leader's cloneable outcome — bytes or error. Flight waits never
//! cycle: a version leader may wait on a stage flight, but a stage leader
//! only executes its transform. [`CacheConfig::max_inflight_per_origin`]
//! adds per-origin back-pressure for the misses coalescing cannot merge
//! (distinct keys, one origin). See the `singleflight` module docs for
//! the full argument.

use crate::entry::EntryMeta;
use crate::journal::{WriteJournal, NO_EPOCH};
use crate::merge::{MergePolicy, MergeReport};
use crate::overload::{BrownoutLevel, OverloadConfig, OverloadController, Priority};
use crate::policy::{EntryAttrs, EntryKey, PolicyFactory, ReplacementPolicy, STAGE_PIN_LEVEL};
use crate::prefetch::PrefetchConfig;
use crate::resilience::{
    Admission, BackoffSchedule, BreakerSet, BreakerState, ResilienceConfig, StalenessBound,
};
use crate::singleflight::{Acquire, FlightGroup, FlightResult, InflightWindow, Join};
use crate::stats::{AtomicCacheStats, CacheStats};
use crate::store::{ConcurrentStore, NoRoom};
use bytes::Bytes;
use parking_lot::Mutex;
use placeless_core::cacheability::Cacheability;
use placeless_core::error::{PlacelessError, Result};
use placeless_core::event::EventKind;
use placeless_core::id::{CacheId, DocumentId, UserId};
use placeless_core::notifier::{Invalidation, InvalidationSink};
use placeless_core::op::{apply_all, rebasable, DocOp};
use placeless_core::plan::{StagePipeline, TransformPlan};
use placeless_core::property::PathReport;
use placeless_core::space::{BaseChainLease, BatchWrite, DocumentSpace, Scope};
use placeless_core::streams::read_all_digest;
use placeless_core::verifier::{run_all, Validity, Verifier};
use placeless_simenv::{Instant, LatencyModel, Link, Stopwatch, VirtualClock};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

static NEXT_CACHE_ID: AtomicU64 = AtomicU64::new(0);

/// How writes reach the middleware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteMode {
    /// Forward every write immediately.
    Through,
    /// Buffer writes locally; [`DocumentCache::flush`] pushes them.
    Back,
}

/// What a [`DocumentCache::flush`] accomplished — the write-side sibling
/// of the read path's `PathReport`.
///
/// A flush only returns `Err` for infrastructure failures before any
/// write is attempted (currently never); per-entry failures are reported
/// here so one unreachable origin cannot hide the entries that *did*
/// flush, and nothing is silently dropped — which also makes the report
/// `#[must_use]`: dropping it unexamined loses the parked/requeued
/// entries it carries.
#[must_use = "inspect the report: it may carry parked or requeued writes"]
#[derive(Debug, Clone, Default)]
pub struct FlushReport {
    /// Dirty entries the flush attempted to write.
    pub attempted: u64,
    /// Entries whose origin write succeeded (and, with a journal, whose
    /// journal record was acknowledged and pruned).
    pub flushed: u64,
    /// Entries parked in the journal after exhausting retries against a
    /// transient failure: still dirty, still journaled, drained by a
    /// later flush once the origin's breaker admits probes again.
    /// Journal-configured caches only.
    pub parked: Vec<(DocumentId, UserId)>,
    /// Entries re-queued into the dirty maps with the error that stopped
    /// them: transient failures without a journal, and non-transient
    /// failures always.
    pub requeued: Vec<(DocumentId, UserId, PlacelessError)>,
    /// Per-origin groups the batched scheduler formed (one per distinct
    /// origin among the drained entries). Zero when batched flushing is
    /// disabled and every entry is written individually.
    pub batches: u64,
    /// Drained entries whose key was not an [`EntryKey::Version`] —
    /// an invariant violation (the dirty maps only ever buffer version
    /// keys). They are re-queued, never written, and counted here
    /// instead of in `attempted` so `attempted == flushed + parked.len()
    /// + requeued.len() + dropped.len()` always holds.
    pub skipped_non_version: u64,
    /// Entries deliberately dropped by an unmergeable-conflict
    /// `KeepTheirs` resolution (merge policy configured): the origin's
    /// newer version won, the journaled write was acknowledged and
    /// discarded. Empty without a [`crate::MergePolicy`].
    pub dropped: Vec<(DocumentId, UserId)>,
    /// What the merge policy did with flush-time write conflicts. Empty
    /// (all zeros) without a [`crate::MergePolicy`].
    pub merge: MergeReport,
}

impl FlushReport {
    /// Returns `true` if every attempted entry was resolved — written to
    /// the origin, or deliberately dropped by a `KeepTheirs` merge
    /// fallback — and nothing remains dirty.
    pub fn is_clean(&self) -> bool {
        self.parked.is_empty() && self.requeued.is_empty() && self.skipped_non_version == 0
    }

    /// Returns how many entries remain dirty after this flush.
    pub fn remaining(&self) -> u64 {
        (self.parked.len() + self.requeued.len()) as u64 + self.skipped_non_version
    }
}

impl std::fmt::Display for FlushReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "flushed {}/{} in {} batch(es); {} parked, {} requeued, {} dropped, {} skipped",
            self.flushed,
            self.attempted,
            self.batches,
            self.parked.len(),
            self.requeued.len(),
            self.dropped.len(),
            self.skipped_non_version,
        )?;
        if !self.merge.is_empty() {
            write!(f, "; merge: {}", self.merge)?;
        }
        Ok(())
    }
}

/// How [`DocumentCache::recover`] should resolve one write conflict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictResolution {
    /// Keep the journaled write: re-queue it dirty so the next flush
    /// pushes it over the newer origin version. The conflict is still
    /// reported — this is an informed overwrite, not last-writer-wins by
    /// omission.
    KeepMine,
    /// Keep the origin's version: drop the journaled write and
    /// acknowledge its record.
    KeepTheirs,
}

/// One recovered write whose base version no longer matches the origin:
/// the origin moved on while the write sat buffered across the crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteConflict {
    /// The conflicted document.
    pub doc: DocumentId,
    /// The user whose buffered write conflicts.
    pub user: UserId,
    /// Signature of the rendition the writer based the write on.
    pub journal_epoch: Signature,
    /// Signature of the origin's current rendition.
    pub origin_signature: Signature,
}

impl WriteConflict {
    /// Returns the conflict as the middleware error it surfaces as.
    pub fn error(&self) -> PlacelessError {
        PlacelessError::Conflict {
            doc: self.doc,
            user: self.user,
        }
    }
}

/// Resolution callback consulted by [`DocumentCache::recover`] for each
/// [`WriteConflict`]; `None` defaults to [`ConflictResolution::KeepMine`].
pub type ConflictHook = Arc<dyn Fn(&WriteConflict) -> ConflictResolution + Send + Sync>;

/// What [`DocumentCache::recover`] did with the journal's live records.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Intact journal records considered for replay.
    pub replayed: u64,
    /// Records re-queued into the dirty maps (flushed by the next flush).
    pub requeued: u64,
    /// Conflicts detected (journal epoch vs. origin signature), however
    /// they were resolved. Each surfaces as a non-fatal
    /// [`PlacelessError::Conflict`] via [`WriteConflict::error`].
    pub conflicts: Vec<WriteConflict>,
    /// Conflicts resolved by keeping the journaled write.
    pub kept_mine: u64,
    /// Conflicts resolved by keeping the origin's version.
    pub kept_theirs: u64,
    /// Records dropped because their document no longer exists (the
    /// write can never be applied).
    pub dropped: u64,
    /// What the merge policy did with recovery conflicts. Empty (all
    /// zeros) without a [`crate::MergePolicy`].
    pub merge: MergeReport,
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "replayed {}, requeued {}; {} conflict(s) ({} kept mine, {} kept theirs), {} dropped",
            self.replayed,
            self.requeued,
            self.conflicts.len(),
            self.kept_mine,
            self.kept_theirs,
            self.dropped,
        )?;
        if !self.merge.is_empty() {
            write!(f, "; merge: {}", self.merge)?;
        }
        Ok(())
    }
}

/// Returns one shard per available CPU (the `shards: 0` default).
pub fn default_shard_count() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Cache construction parameters.
///
/// All fields are public and `..CacheConfig::default()` keeps working;
/// [`CacheConfig::builder`] is the ergonomic front door.
#[derive(Clone)]
pub struct CacheConfig {
    /// Capacity in *physical* (deduplicated) bytes.
    pub capacity_bytes: u64,
    /// Replacement policy recipe; defaults to Greedy-Dual-Size. Each
    /// shard builds its own instance.
    pub policy: PolicyFactory,
    /// Whether to run verifiers on hits (disable to measure a
    /// notifier-only configuration).
    pub run_verifiers: bool,
    /// Write handling.
    pub write_mode: WriteMode,
    /// Cost of serving a hit from local storage.
    pub local_latency: LatencyModel,
    /// Collection prefetching (§5 related-documents mechanism).
    pub prefetch: PrefetchConfig,
    /// The network path between the application and this cache, if the
    /// cache is not co-located with the application — the prototype "also
    /// experimented with caches co-located with the Placeless server".
    /// Charged on every served read.
    pub access_link: Option<Link>,
    /// Number of lock shards; `0` means one per available CPU. `1`
    /// reproduces the original global-lock behaviour exactly.
    pub shards: usize,
    /// Resilient-fetch policy: retries, circuit breakers, serve-stale
    /// degradation. The default disables all of it, reproducing the
    /// fail-fast behaviour exactly.
    pub resilience: ResilienceConfig,
    /// Retain intermediate stage outputs from the compiled transform plan,
    /// content-addressed by stage signature, so the user-independent base
    /// prefix of a property chain is computed once and shared across
    /// users; later misses replay only the per-user reference suffix. Off
    /// by default: misses then execute the chain as one opaque stream,
    /// exactly as before.
    pub stage_cache: bool,
    /// Durable write-ahead journal for write-back writes. When set, every
    /// `WriteMode::Back` write is appended to the journal's stable medium
    /// *before* the dirty map is updated, flushes acknowledge records only
    /// after the origin write succeeds, and writes whose flush exhausts
    /// its retries are *parked* in the journal instead of erroring. `None`
    /// (the default) reproduces the unjournaled behaviour exactly.
    pub journal: Option<WriteJournal>,
    /// Coalesce concurrent misses on the same key into one computation
    /// (single-flight): the first thread fetches, the rest wait and share
    /// its result — or its error. On by default; single-threaded
    /// behaviour and statistics are identical either way, because a lone
    /// reader always leads its own flight.
    pub single_flight: bool,
    /// Bound the number of concurrently in-flight origin fetches per
    /// origin. Excess misses block at the cache until a slot frees,
    /// queueing a miss storm instead of stampeding the origin. `None`
    /// (the default) leaves fetch concurrency unbounded.
    pub max_inflight_per_origin: Option<u32>,
    /// Group drained dirty entries by origin and flush each group as one
    /// grouped origin operation: one breaker admission decision, one
    /// backoff schedule, and one in-flight-window slot cover the whole
    /// group, and the space charges its middleware hops once per group
    /// instead of once per entry. Park/requeue/journal semantics stay
    /// per entry — the batch write returns one result per entry. On by
    /// default; `false` restores the serial per-entry flush exactly.
    pub batched_flush: bool,
    /// Operation-based conflict resolution. When set, write conflicts
    /// detected during recovery *and* flush are routed through the merge
    /// policy first: a conflicted write whose journal record carries
    /// rebasable typed ops ([`placeless_core::op::DocOp`], via
    /// [`DocumentCache::write_op`]) is rebased onto the origin's current
    /// content — both sides' edits survive — and only unmergeable
    /// conflicts (plain full-body writes) fall back to the binary
    /// keep-mine/keep-theirs hooks. `None` (the default) preserves the
    /// binary PR-4 behaviour exactly: no origin probes, no rebases,
    /// byte-identical flush payloads.
    pub merge: Option<MergePolicy>,
    /// Overload control: deadline-aware admission against the per-origin
    /// in-flight windows, AIMD concurrency limits driven by observed
    /// fetch latency, priority-class shedding, and the brownout ladder
    /// (see [`crate::overload`]). Requires an in-flight window: when
    /// `max_inflight_per_origin` is unset, the window is created with
    /// the overload config's `max_inflight` ceiling. `None` (the
    /// default) reproduces the uncontrolled behaviour exactly.
    pub overload: Option<OverloadConfig>,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            capacity_bytes: 16 * 1024 * 1024,
            policy: PolicyFactory::default(),
            run_verifiers: true,
            write_mode: WriteMode::Through,
            local_latency: LatencyModel::new(50, 5),
            prefetch: PrefetchConfig::OFF,
            access_link: None,
            shards: 0,
            resilience: ResilienceConfig::default(),
            stage_cache: false,
            journal: None,
            single_flight: true,
            max_inflight_per_origin: None,
            batched_flush: true,
            merge: None,
            overload: None,
        }
    }
}

impl CacheConfig {
    /// Starts building a configuration from the defaults.
    pub fn builder() -> CacheConfigBuilder {
        CacheConfigBuilder {
            config: Self::default(),
        }
    }
}

/// Builder for [`CacheConfig`]; obtain via [`CacheConfig::builder`].
#[derive(Clone)]
pub struct CacheConfigBuilder {
    config: CacheConfig,
}

impl CacheConfigBuilder {
    /// Sets the capacity in physical (deduplicated) bytes.
    pub fn capacity_bytes(mut self, bytes: u64) -> Self {
        self.config.capacity_bytes = bytes;
        self
    }

    /// Sets the replacement-policy recipe.
    pub fn policy(mut self, policy: PolicyFactory) -> Self {
        self.config.policy = policy;
        self
    }

    /// Sets the replacement policy by name (case-insensitive); the error
    /// lists every known policy.
    pub fn policy_name(
        mut self,
        name: &str,
    ) -> std::result::Result<Self, crate::policy::UnknownPolicy> {
        self.config.policy = PolicyFactory::by_name(name)?;
        Ok(self)
    }

    /// Enables or disables verifier runs on hits.
    pub fn run_verifiers(mut self, run: bool) -> Self {
        self.config.run_verifiers = run;
        self
    }

    /// Sets the write mode.
    pub fn write_mode(mut self, mode: WriteMode) -> Self {
        self.config.write_mode = mode;
        self
    }

    /// Sets the local hit latency model.
    pub fn local_latency(mut self, latency: LatencyModel) -> Self {
        self.config.local_latency = latency;
        self
    }

    /// Sets the collection-prefetch configuration.
    pub fn prefetch(mut self, prefetch: PrefetchConfig) -> Self {
        self.config.prefetch = prefetch;
        self
    }

    /// Sets the application-to-cache network link.
    pub fn access_link(mut self, link: Link) -> Self {
        self.config.access_link = Some(link);
        self
    }

    /// Sets the shard count (`0` = one per available CPU).
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Sets the resilient-fetch policy (retries, circuit breakers,
    /// serve-stale degradation); see [`ResilienceConfig::builder`].
    pub fn resilience(mut self, resilience: ResilienceConfig) -> Self {
        self.config.resilience = resilience;
        self
    }

    /// Enables or disables intermediate-result (stage) caching on the miss
    /// path.
    pub fn stage_cache(mut self, on: bool) -> Self {
        self.config.stage_cache = on;
        self
    }

    /// Attaches a durable write-ahead journal for write-back writes (see
    /// [`CacheConfig::journal`]). Pass a journal opened over the same
    /// [`placeless_simenv::StableStore`] across restarts to recover
    /// buffered writes with [`DocumentCache::recover`].
    pub fn journal(mut self, journal: WriteJournal) -> Self {
        self.config.journal = Some(journal);
        self
    }

    /// Enables or disables single-flight miss coalescing (see
    /// [`CacheConfig::single_flight`]).
    pub fn single_flight(mut self, on: bool) -> Self {
        self.config.single_flight = on;
        self
    }

    /// Bounds concurrently in-flight origin fetches per origin (see
    /// [`CacheConfig::max_inflight_per_origin`]).
    pub fn max_inflight_per_origin(mut self, limit: u32) -> Self {
        self.config.max_inflight_per_origin = Some(limit);
        self
    }

    /// Enables or disables per-origin flush batching (see
    /// [`CacheConfig::batched_flush`]).
    pub fn batched_flush(mut self, on: bool) -> Self {
        self.config.batched_flush = on;
        self
    }

    /// Enables operation-based conflict resolution (see
    /// [`CacheConfig::merge`]).
    pub fn merge(mut self, policy: MergePolicy) -> Self {
        self.config.merge = Some(policy);
        self
    }

    /// Enables overload control (see [`CacheConfig::overload`]).
    pub fn overload(mut self, overload: OverloadConfig) -> Self {
        self.config.overload = Some(overload);
        self
    }

    /// Finishes the configuration.
    pub fn build(self) -> CacheConfig {
        self.config
    }
}

/// Per-read knobs for [`DocumentCache::read_with`].
///
/// `ReadOptions::default()` reproduces [`DocumentCache::read`] exactly.
/// The struct is `#[non_exhaustive]` so later PRs can add knobs without
/// breaking callers; construct it with [`ReadOptions::new`] (or
/// `default()`) and the chainable setters:
///
/// ```
/// use placeless_cache::ReadOptions;
///
/// let opts = ReadOptions::new().allow_stale(true).deadline_micros(5_000);
/// assert!(opts.allow_stale);
/// assert_eq!(opts.deadline_micros, Some(5_000));
/// ```
#[non_exhaustive]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadOptions {
    /// Overrides the configured fetch deadline
    /// ([`ResilienceConfig::fetch_deadline_micros`]) for this read only.
    /// Like the configured deadline it bounds retry *scheduling* — a
    /// backoff the remaining budget cannot cover fails the read with
    /// [`PlacelessError::Timeout`] instead of sleeping. With the no-op
    /// resilience default there are no retries to bound and the override
    /// has no effect.
    pub deadline_micros: Option<u64>,
    /// Permits serving resident-but-unverifiable bytes when the origin is
    /// unreachable, even if the cache has no configured
    /// [`ResilienceConfig::serve_stale`] bound (the per-read bound is
    /// [`StalenessBound::UNBOUNDED`]). A configured bound still applies
    /// to every read regardless of this flag.
    pub allow_stale: bool,
    /// Executes the property chain as one opaque stream for this read,
    /// skipping intermediate-result lookups *and* fills even when
    /// [`CacheConfig::stage_cache`] is on. For measuring the stage
    /// cache's contribution without rebuilding the cache.
    pub bypass_stage_cache: bool,
    /// Scheduling class for overload control: under pressure the cache
    /// sheds [`Priority::Prefetch`] first, [`Priority::Refresh`] next,
    /// and [`Priority::Foreground`] (the default) last. Without
    /// [`CacheConfig::overload`] the class is recorded but never acted
    /// on.
    pub priority: Priority,
}

impl ReadOptions {
    /// Returns the defaults ([`DocumentCache::read`] semantics).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the per-read fetch deadline override.
    pub fn deadline_micros(mut self, micros: u64) -> Self {
        self.deadline_micros = Some(micros);
        self
    }

    /// Sets the per-read stale-service opt-in.
    pub fn allow_stale(mut self, allow: bool) -> Self {
        self.allow_stale = allow;
        self
    }

    /// Sets the per-read stage-cache bypass.
    pub fn bypass_stage_cache(mut self, bypass: bool) -> Self {
        self.bypass_stage_cache = bypass;
        self
    }

    /// Sets the read's overload priority class.
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }
}

/// How a [`DocumentCache::read_with`] was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HitClass {
    /// Served from a resident entry (verifiers passed, or a verifier
    /// replaced the content in place), or from the reader's own buffered
    /// write-back data.
    Hit,
    /// A miss whose chain walk reused at least one cached intermediate
    /// stage (the paper's per-user suffix over a shared base prefix).
    PartialHit,
    /// Fetched through the full read path, including uncacheable reads.
    Miss,
    /// Joined another thread's in-flight miss on the same key and shared
    /// its bytes without fetching (counted under both `hits` and
    /// `coalesced_waits` in [`CacheStats`]).
    CoalescedWait,
    /// Resident bytes of unknown freshness served in place of an
    /// unreachable origin, within the staleness bound.
    StaleServed,
}

impl HitClass {
    /// A stable lowercase label for reports and JSON artifacts.
    pub fn label(&self) -> &'static str {
        match self {
            HitClass::Hit => "hit",
            HitClass::PartialHit => "partial_hit",
            HitClass::Miss => "miss",
            HitClass::CoalescedWait => "coalesced_wait",
            HitClass::StaleServed => "stale_served",
        }
    }
}

/// What [`DocumentCache::read_with`] returned: the bytes plus how they
/// were obtained, so callers classify service quality per read instead of
/// re-deriving it from [`CacheStats`] deltas. `#[must_use]`: dropping an
/// outcome unexamined silently discards the degraded/stale service
/// classification.
#[must_use = "inspect the outcome's class: it may be stale or degraded service"]
#[non_exhaustive]
#[derive(Debug, Clone)]
pub struct ReadOutcome {
    /// The document content.
    pub bytes: Bytes,
    /// How the read was served.
    pub class: HitClass,
    /// Virtual-clock microseconds this read observed, as charged by the
    /// latency models along its path. Under concurrent load the virtual
    /// clock advances globally, so per-read wall-clock timing belongs to
    /// the caller (the load engine times reads with a wall stopwatch).
    pub latency_micros: u64,
}

/// One buffered write-back write: the data plus (journal configured) the
/// sequence number of its journal record, so a flush acknowledges exactly
/// the record it pushed — never a newer one that superseded it while the
/// flush held no lock.
#[derive(Debug, Clone)]
struct DirtyEntry {
    data: Bytes,
    seq: Option<u64>,
    /// Typed ops accumulated since `epoch`, oldest first — the delta a
    /// merge can rebase. Empty for plain full-body writes.
    ops: Vec<DocOp>,
    /// Content signature of the base rendition the buffered write was
    /// authored against ([`NO_EPOCH`] when unknown). The flush-time
    /// conflict probe compares it against the origin's current rendition.
    epoch: Signature,
    /// Per-`(doc, user)` causal sequence; `0` for plain writes.
    writer_seq: u64,
}

/// One lock-striped slice of the cache's entry state. Content bytes live
/// outside, in the cache-wide [`ConcurrentStore`].
struct Shard {
    sigs: HashMap<EntryKey, Signature>,
    meta: HashMap<EntryKey, EntryMeta>,
    policy: Box<dyn ReplacementPolicy>,
    dirty: HashMap<EntryKey, DirtyEntry>,
}

use crate::digest::Signature;

/// Fast-path state for one document's staged read walk (see
/// [`DocumentCache::read_through_stages`]).
struct PlanLease {
    /// The space-issued compiled view of the base half of the property
    /// chain, validated against the base document's chain epoch on every
    /// use — reusing it saves one middleware hop per walk.
    chain: Arc<BaseChainLease>,
    /// The provider rendition last fetched through this lease, when the
    /// provider could hand out a verifier for it.
    root: Option<RootLease>,
}

/// A verifier-guarded root content signature: "the provider bytes still
/// digest to `sig`", as attested by `verifier`. The verifier is captured
/// *before* the bytes it covers are fetched, so a write landing between
/// capture and fetch reads as `Invalid` (a wasted refetch) — never as
/// `Valid` over stale bytes.
struct RootLease {
    sig: Signature,
    verifier: Box<dyn Verifier>,
}

/// Per-fetch overload context threaded from [`DocumentCache::read_with`]
/// through retries, window admission, and stage computation: the read's
/// priority class and the virtual instant its deadline budget expires.
/// `deadline_at` is only ever `Some` when overload control is configured
/// — without it the deadline keeps its original meaning (bounding retry
/// scheduling only) and no new check fires.
#[derive(Clone, Copy)]
struct FetchCtx {
    priority: Priority,
    deadline_at: Option<Instant>,
}

/// A claimed per-origin window slot plus when the fetch started, so
/// releasing it can feed the observed service time to the AIMD
/// controller.
struct OriginSlot {
    origin: String,
    started: Instant,
}

/// An application-level cache over a [`DocumentSpace`].
pub struct DocumentCache {
    id: CacheId,
    space: Arc<DocumentSpace>,
    capacity_bytes: u64,
    run_verifiers: bool,
    write_mode: WriteMode,
    local_latency: LatencyModel,
    prefetch: PrefetchConfig,
    access_link: Option<Link>,
    shards: Box<[Mutex<Shard>]>,
    store: ConcurrentStore,
    stats: AtomicCacheStats,
    resilience: ResilienceConfig,
    stage_cache: bool,
    breakers: BreakerSet,
    journal: Option<WriteJournal>,
    /// Keys whose flush exhausted its retries and now sit in the journal
    /// awaiting a breaker probe. Bookkeeping only (stats and reports);
    /// the data itself stays in the dirty maps and the journal. Leaf lock.
    parked: Mutex<HashSet<EntryKey>>,
    /// Highest invalidation-bus sequence number seen; `0` until the first
    /// delivery. Gaps mean dropped notifications (see
    /// [`DocumentCache::note_sequence`]).
    last_seq: AtomicU64,
    /// Single-flight coalescing enabled (see [`CacheConfig::single_flight`]).
    single_flight: bool,
    /// Per-origin flush batching enabled (see [`CacheConfig::batched_flush`]).
    batched_flush: bool,
    /// Open miss fetches keyed by version key.
    version_flights: FlightGroup,
    /// Open stage executions keyed by stage signature.
    stage_flights: FlightGroup,
    /// Per-origin fetch back-pressure, when configured.
    window: Option<InflightWindow>,
    /// Overload control (deadline-aware admission, AIMD limits, brownout
    /// ladder), when configured. Always paired with a `window`.
    overload: Option<OverloadController>,
    /// Origin fetches currently running (gauge feeding `inflight_peak`).
    inflight: AtomicU64,
    /// Buffered write-back writes across all shards, maintained at every
    /// dirty-map mutation so [`DocumentCache::dirty_count`] does not
    /// sweep the shard locks.
    dirty_gauge: AtomicU64,
    /// Mirror of `parked.len()`, so [`DocumentCache::parked_count`] does
    /// not take the parked lock.
    parked_gauge: AtomicU64,
    /// Operation-based conflict resolution, when configured (see
    /// [`CacheConfig::merge`]).
    merge: Option<MergePolicy>,
    /// Per-`(doc, user)` causal sequence counters for op-based writes,
    /// seeded from replayed journal records on recovery. Leaf lock.
    writer_seqs: Mutex<HashMap<(DocumentId, UserId), u64>>,
    /// Per-document staged-read leases (see [`PlanLease`]). Leaf lock; the
    /// root verifier runs under it, but verifiers touch only provider
    /// internals, never cache state.
    leases: Mutex<HashMap<DocumentId, PlanLease>>,
}

impl DocumentCache {
    /// Creates a cache over `space` and subscribes it to the space's
    /// invalidation bus.
    pub fn new(space: Arc<DocumentSpace>, config: CacheConfig) -> Arc<Self> {
        let shard_count = if config.shards == 0 {
            default_shard_count()
        } else {
            config.shards
        };
        let shards = (0..shard_count)
            .map(|_| {
                Mutex::new(Shard {
                    sigs: HashMap::new(),
                    meta: HashMap::new(),
                    policy: config.policy.build(),
                    dirty: HashMap::new(),
                })
            })
            .collect();
        let cache = Arc::new(Self {
            id: CacheId(NEXT_CACHE_ID.fetch_add(1, Ordering::Relaxed)),
            space,
            capacity_bytes: config.capacity_bytes,
            run_verifiers: config.run_verifiers,
            write_mode: config.write_mode,
            local_latency: config.local_latency,
            prefetch: config.prefetch,
            access_link: config.access_link,
            shards,
            store: ConcurrentStore::new(),
            stats: AtomicCacheStats::default(),
            resilience: config.resilience,
            stage_cache: config.stage_cache,
            breakers: BreakerSet::new(),
            journal: config.journal,
            parked: Mutex::new(HashSet::new()),
            last_seq: AtomicU64::new(0),
            single_flight: config.single_flight,
            batched_flush: config.batched_flush,
            version_flights: FlightGroup::new(),
            stage_flights: FlightGroup::new(),
            window: {
                // Overload control needs a window to meter admission
                // through; fall back to its ceiling when no static
                // per-origin bound was configured.
                let limit = config.max_inflight_per_origin.or_else(|| {
                    config
                        .overload
                        .as_ref()
                        .map(|overload| overload.max_inflight)
                });
                limit.map(|limit| InflightWindow::new(limit as usize))
            },
            overload: config.overload.map(OverloadController::new),
            inflight: AtomicU64::new(0),
            dirty_gauge: AtomicU64::new(0),
            parked_gauge: AtomicU64::new(0),
            merge: config.merge,
            writer_seqs: Mutex::new(HashMap::new()),
            leases: Mutex::new(HashMap::new()),
        });
        cache.space.bus().subscribe(Arc::new(CacheSink {
            cache: Arc::downgrade(&cache),
            id: cache.id,
        }));
        cache
    }

    /// Creates a cache with the default configuration.
    pub fn with_defaults(space: Arc<DocumentSpace>) -> Arc<Self> {
        Self::new(space, CacheConfig::default())
    }

    /// Creates a cache after a crash, replaying the journal configured in
    /// `config` into the dirty queue (warm restart).
    ///
    /// Open the journal over the surviving [`placeless_simenv::StableStore`]
    /// first — [`WriteJournal::open`] truncates any torn tail the crash
    /// left — then pass it in `config.journal`. Each intact record is
    /// checked against the origin: if the record carries a base-version
    /// epoch and the origin's current rendition no longer matches it, the
    /// origin changed while the write sat buffered across the crash. That
    /// is a [`WriteConflict`], resolved through `hook` (default:
    /// [`ConflictResolution::KeepMine`]) and *reported*, never silently
    /// last-writer-wins. Records whose origin is unreachable during
    /// recovery are re-queued unchecked — the conflict check re-runs
    /// implicitly when a human inspects the report, and the write itself
    /// is preserved either way. Records whose document no longer exists
    /// are dropped and acknowledged.
    ///
    /// Without a journal in `config`, this is exactly [`Self::new`] plus
    /// an empty report.
    pub fn recover(
        space: Arc<DocumentSpace>,
        config: CacheConfig,
        hook: Option<ConflictHook>,
    ) -> (Arc<Self>, RecoveryReport) {
        let cache = Self::new(space, config);
        let mut report = RecoveryReport::default();
        let Some(journal) = cache.journal.clone() else {
            return (cache, report);
        };
        for record in journal.live_records() {
            report.replayed += 1;
            AtomicCacheStats::bump(&cache.stats.journal_replays);
            // Seed the causal counter so post-recovery ops continue this
            // writer's sequence instead of restarting it.
            if record.writer_seq > 0 {
                let mut seqs = cache.writer_seqs.lock();
                let counter = seqs.entry((record.doc, record.user)).or_insert(0);
                *counter = (*counter).max(record.writer_seq);
            }
            let mut origin_bytes: Option<Bytes> = None;
            let conflict = if record.epoch == NO_EPOCH {
                // The writer never read the document: no base version is
                // known, so there is nothing to compare against.
                None
            } else {
                match cache.space.read_document(record.user, record.doc) {
                    Ok((bytes, _)) => {
                        let origin_sig = ConcurrentStore::signature_of(&bytes);
                        let conflict = (origin_sig != record.epoch).then_some(WriteConflict {
                            doc: record.doc,
                            user: record.user,
                            journal_epoch: record.epoch,
                            origin_signature: origin_sig,
                        });
                        origin_bytes = Some(bytes);
                        conflict
                    }
                    Err(
                        PlacelessError::NoSuchDocument(_) | PlacelessError::NoSuchReference(..),
                    ) => {
                        // The write's target is gone; it can never be
                        // applied. Drop and acknowledge.
                        journal.ack(record.seq);
                        report.dropped += 1;
                        continue;
                    }
                    // Origin unreachable (or any other read failure):
                    // re-queue unchecked — losing the write would be worse
                    // than flushing it unverified.
                    Err(_) => None,
                }
            };
            let mut entry = DirtyEntry {
                data: record.data.clone(),
                seq: Some(record.seq),
                ops: record.ops.clone(),
                epoch: record.epoch,
                writer_seq: record.writer_seq,
            };
            if let Some(conflict) = conflict {
                AtomicCacheStats::bump(&cache.stats.write_conflicts);
                if cache.merge.is_some() {
                    report.merge.examined += 1;
                }
                if cache.merge.is_some() && record.rebasable() {
                    // Operation-based resolution: re-apply the writer's
                    // typed ops onto the origin's *current* content, so
                    // both the crashed writer's edits and whatever landed
                    // at the origin meanwhile survive. The re-queued
                    // entry's epoch advances to the rebased base so the
                    // flush does not re-detect the same conflict.
                    let origin = origin_bytes
                        .clone()
                        .expect("a conflict implies a successful origin read");
                    entry.data = apply_all(&origin, &record.ops);
                    entry.epoch = conflict.origin_signature;
                    AtomicCacheStats::bump(&cache.stats.conflicts_merged);
                    for _ in &record.ops {
                        AtomicCacheStats::bump(&cache.stats.merge_rebases);
                    }
                    report.merge.merged += 1;
                    report.merge.rebases += record.ops.len() as u64;
                    report.conflicts.push(conflict);
                } else {
                    // Unmergeable (or no merge policy): fall back to the
                    // binary hooks — the call-site hook first, then the
                    // policy's fallback, then keep-mine.
                    let resolution = match (&hook, &cache.merge) {
                        (Some(hook), _) => hook(&conflict),
                        (None, Some(policy)) => policy.resolve_unmergeable(&conflict),
                        (None, None) => ConflictResolution::KeepMine,
                    };
                    report.conflicts.push(conflict);
                    match resolution {
                        ConflictResolution::KeepMine => {
                            report.kept_mine += 1;
                            if cache.merge.is_some() {
                                report.merge.kept_mine += 1;
                            }
                        }
                        ConflictResolution::KeepTheirs => {
                            report.kept_theirs += 1;
                            if cache.merge.is_some() {
                                report.merge.kept_theirs += 1;
                            }
                            journal.ack(record.seq);
                            continue;
                        }
                    }
                }
            }
            let key = EntryKey::Version(record.doc, record.user);
            let mut shard = cache.shard(key).lock();
            let inserted = shard.dirty.insert(key, entry).is_none();
            drop(shard);
            if inserted {
                cache.dirty_gauge.fetch_add(1, Ordering::Relaxed);
            }
            report.requeued += 1;
        }
        (cache, report)
    }

    /// Returns this cache's id.
    pub fn id(&self) -> CacheId {
        self.id
    }

    /// Returns the number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Returns a snapshot of the statistics. Exact when the cache is
    /// quiescent; a moment-in-time approximation under concurrent load.
    pub fn stats(&self) -> CacheStats {
        self.stats.snapshot()
    }

    /// Returns the circuit-breaker state for an origin key (as reported
    /// by [`placeless_core::bitprovider::BitProvider::origin_key`]);
    /// `Closed` if the origin has never failed.
    pub fn breaker_state(&self, origin: &str) -> BreakerState {
        self.breakers.state(origin)
    }

    /// Returns the number of resident entries — final `(document, user)`
    /// versions plus (with stage caching) intermediate stage entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().meta.len()).sum()
    }

    /// Returns the number of resident intermediate stage entries.
    pub fn stage_entry_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().meta.keys().filter(|k| k.is_stage()).count())
            .sum()
    }

    /// Returns `true` if no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `(physical, logical)` resident bytes; the gap is what
    /// signature sharing saved. Lock-free.
    pub fn resident_bytes(&self) -> (u64, u64) {
        (self.store.physical_bytes(), self.store.logical_bytes())
    }

    /// Returns `true` if `(doc, user)` is resident.
    pub fn contains(&self, user: UserId, doc: DocumentId) -> bool {
        let key = EntryKey::Version(doc, user);
        self.shard(key).lock().meta.contains_key(&key)
    }

    /// Picks the shard for a key with a fixed multiplicative hash, so
    /// placement is identical across runs and machines (std's default
    /// hasher is randomly seeded and would break reproducibility).
    fn shard_index(&self, key: EntryKey) -> usize {
        let mixed = match key {
            EntryKey::Version(DocumentId(doc), UserId(user)) => {
                doc.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ user.wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
            }
            // A stage signature is an MD5 digest: hash its two halves with
            // the same mixers for identical distribution properties.
            EntryKey::Stage(sig) => {
                let lo = u64::from_le_bytes(sig.0[..8].try_into().expect("8 bytes"));
                let hi = u64::from_le_bytes(sig.0[8..].try_into().expect("8 bytes"));
                lo.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ hi.wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
            }
        };
        // Use the high bits: multiplicative hashing mixes upward.
        (mixed >> 32) as usize % self.shards.len()
    }

    fn shard(&self, key: EntryKey) -> &Mutex<Shard> {
        &self.shards[self.shard_index(key)]
    }

    /// Removes an entry for a non-eviction reason (invalidation), telling
    /// the policy. Returns `true` if the entry existed.
    fn drop_entry(&self, shard: &mut Shard, key: EntryKey) -> bool {
        let existed = match shard.sigs.remove(&key) {
            Some(sig) => {
                self.store.release(sig);
                true
            }
            None => false,
        };
        if let Some(meta) = shard.meta.remove(&key) {
            if key.is_stage() {
                AtomicCacheStats::sub(&self.stats.stage_bytes, meta.size);
            }
        }
        shard.policy.on_remove(key);
        existed
    }

    /// Removes an entry the policy already chose (and forgot) as an
    /// eviction victim.
    fn drop_victim(&self, shard: &mut Shard, victim: EntryKey) {
        if let Some(sig) = shard.sigs.remove(&victim) {
            self.store.release(sig);
        }
        if let Some(meta) = shard.meta.remove(&victim) {
            if victim.is_stage() {
                AtomicCacheStats::sub(&self.stats.stage_bytes, meta.size);
            }
        }
    }

    /// Evicts one entry from some *other* shard to make room, probing
    /// with `try_lock` only (rule 2 of the lock order: a blocking
    /// acquisition here could deadlock with a concurrent steal in the
    /// opposite direction). Returns `true` if an entry was evicted.
    fn steal_one(&self, skip: usize) -> bool {
        for offset in 1..self.shards.len() {
            let index = (skip + offset) % self.shards.len();
            let Some(mut shard) = self.shards[index].try_lock() else {
                continue;
            };
            if let Some(victim) = shard.policy.evict() {
                self.drop_victim(&mut shard, victim);
                AtomicCacheStats::bump(&self.stats.evictions);
                return true;
            }
        }
        false
    }

    /// Reads a document for `user`, serving from the cache when possible.
    ///
    /// Equivalent to [`Self::read_with`] with default [`ReadOptions`],
    /// discarding the [`ReadOutcome`] classification.
    pub fn read(&self, user: UserId, doc: DocumentId) -> Result<Bytes> {
        self.read_with(user, doc, ReadOptions::default())
            .map(|outcome| outcome.bytes)
    }

    /// Reads a document for `user` under per-read [`ReadOptions`],
    /// reporting how the read was served.
    pub fn read_with(
        &self,
        user: UserId,
        doc: DocumentId,
        opts: ReadOptions,
    ) -> Result<ReadOutcome> {
        let key = EntryKey::Version(doc, user);
        let clock = self.space.clock().clone();
        let watch = Stopwatch::start(&clock);

        enum Outcome {
            Dirty(Bytes),
            Serve(Bytes, bool),
            Miss,
            /// The entry's freshness could not be checked (origin
            /// unreachable): go to the origin for a fresh copy, keeping
            /// these bytes as the stale-service candidate.
            MissWithStale {
                bytes: Bytes,
                filled_at: Instant,
                forward: bool,
            },
        }
        let index = self.shard_index(key);
        let outcome = {
            let mut shard = self.shards[index].lock();
            // Dirty write-back data is the freshest view for its writer.
            if let Some(dirty) = shard.dirty.get(&key) {
                Outcome::Dirty(dirty.data.clone())
            } else if shard.meta.contains_key(&key) {
                let meta = shard.meta.get(&key).expect("checked above");
                // `force_verify` (set after an invalidation gap) overrides
                // a notifier-only configuration: the notifier guarantee is
                // void for this entry until a verification passes.
                let verdict = if self.run_verifiers || meta.force_verify {
                    let (verdict, probe_cost) = run_all(&meta.verifiers, &clock);
                    clock.advance(probe_cost);
                    AtomicCacheStats::add(&self.stats.verify_micros, probe_cost);
                    verdict
                } else {
                    Validity::Valid
                };
                match verdict {
                    Validity::Valid => {
                        let sig = *shard.sigs.get(&key).expect("meta implies content");
                        let bytes = self.store.get(sig).expect("binding implies content");
                        let meta = shard.meta.get_mut(&key).expect("checked above");
                        meta.hits += 1;
                        meta.force_verify = false;
                        let was_prefetched = meta.prefetched;
                        let forward = meta.cacheability.requires_event_forwarding();
                        shard.policy.on_hit(key);
                        if was_prefetched {
                            AtomicCacheStats::bump(&self.stats.prefetch_hits);
                        }
                        self.local_latency.charge(&clock, bytes.len() as u64);
                        AtomicCacheStats::bump(&self.stats.hits);
                        AtomicCacheStats::add(&self.stats.hit_micros, watch.elapsed_micros());
                        Outcome::Serve(bytes, forward)
                    }
                    Validity::Replace(bytes) => {
                        // Refresh the entry in place and serve.
                        let size = bytes.len() as u64;
                        if let Some(old) = shard.sigs.remove(&key) {
                            self.store.release(old);
                        }
                        let sig = ConcurrentStore::signature_of(&bytes);
                        if self.store.acquire(sig, &bytes) {
                            AtomicCacheStats::bump(&self.stats.shared_fills);
                        }
                        shard.sigs.insert(key, sig);
                        let forward = {
                            let meta = shard.meta.get_mut(&key).expect("checked above");
                            meta.size = size;
                            meta.filled_at = clock.now();
                            meta.hits += 1;
                            meta.force_verify = false;
                            meta.cacheability.requires_event_forwarding()
                        };
                        shard.policy.on_hit(key);
                        // The replacement may have grown the content past
                        // the budget; reclaim, sparing the fresh entry.
                        self.reclaim_over_budget(index, &mut shard, Some(key));
                        self.local_latency.charge(&clock, size);
                        AtomicCacheStats::bump(&self.stats.verifier_replacements);
                        AtomicCacheStats::bump(&self.stats.hits);
                        AtomicCacheStats::add(&self.stats.hit_micros, watch.elapsed_micros());
                        Outcome::Serve(bytes, forward)
                    }
                    Validity::Invalid => {
                        self.drop_entry(&mut shard, key);
                        AtomicCacheStats::bump(&self.stats.verifier_invalidations);
                        Outcome::Miss
                    }
                    Validity::Unverifiable => {
                        // Neither fresh nor refuted. Keep the entry; the
                        // miss path decides whether the staleness bound
                        // lets it stand in for an unreachable origin.
                        let sig = *shard.sigs.get(&key).expect("meta implies content");
                        let bytes = self.store.get(sig).expect("binding implies content");
                        let meta = shard.meta.get(&key).expect("checked above");
                        Outcome::MissWithStale {
                            bytes,
                            filled_at: meta.filled_at,
                            forward: meta.cacheability.requires_event_forwarding(),
                        }
                    }
                }
            } else {
                Outcome::Miss
            }
        };

        let stale = match outcome {
            Outcome::Dirty(bytes) => {
                let latency_micros = watch.elapsed_micros();
                return Ok(ReadOutcome {
                    bytes,
                    class: HitClass::Hit,
                    latency_micros,
                });
            }
            Outcome::Serve(bytes, forward) => {
                if forward {
                    self.space
                        .post_cache_event(user, doc, EventKind::CacheRead)?;
                    AtomicCacheStats::bump(&self.stats.events_forwarded);
                }
                if let Some(link) = &self.access_link {
                    link.transfer(&clock, bytes.len() as u64);
                }
                let latency_micros = watch.elapsed_micros();
                return Ok(ReadOutcome {
                    bytes,
                    class: HitClass::Hit,
                    latency_micros,
                });
            }
            Outcome::Miss => None,
            Outcome::MissWithStale {
                bytes,
                filled_at,
                forward,
            } => Some((bytes, filled_at, forward)),
        };

        // Overload gates on the miss path: feed the brownout ladder one
        // pressure sample, then apply its rungs before any fetch work.
        if let Some(controller) = &self.overload {
            let level = self.observe_overload_pressure(&clock);
            // Rung 4: reject background misses outright — only
            // foreground reads still compete for origin capacity (each
            // remains subject to deadline-aware admission below).
            if level.rejects_background() && opts.priority < Priority::Foreground {
                self.count_shed(opts.priority);
                return Err(PlacelessError::Overloaded {
                    retry_after: controller.config().retry_after_micros,
                });
            }
            // Rung 1: serve the resident stale candidate without
            // fetching at all, within the brownout staleness bound (or
            // the resilience bound when none is configured). A hit the
            // origin never sees is capacity reclaimed.
            if level.widens_stale() {
                if let Some((bytes, filled_at, forward)) = &stale {
                    let bound = controller
                        .config()
                        .brownout_stale
                        .or(self.resilience.serve_stale);
                    if bound.is_some_and(|bound| bound.permits(*filled_at, clock.now())) {
                        return self.serve_stale_candidate(
                            bytes.clone(),
                            *forward,
                            user,
                            doc,
                            &clock,
                            &watch,
                        );
                    }
                }
            }
        }

        // Miss path. Coalesce concurrent misses on this key into one
        // flight: the first thread fetches, the rest wait (holding no
        // cache lock) and share its outcome.
        let guard = if self.single_flight {
            match self.version_flights.join(key) {
                Join::Leader(guard) => Some(guard),
                Join::Waited(Some(FlightResult::Shared { bytes, forward, .. })) => {
                    // Another thread's miss computed these bytes while we
                    // waited; the read was served locally without touching
                    // the origin, so it counts as a hit — plus the
                    // coalescing counter that explains *why* it hit.
                    AtomicCacheStats::bump(&self.stats.hits);
                    AtomicCacheStats::bump(&self.stats.coalesced_waits);
                    self.local_latency.charge(&clock, bytes.len() as u64);
                    AtomicCacheStats::add(&self.stats.hit_micros, watch.elapsed_micros());
                    if forward {
                        // `CacheableWithEvents` demands an event per read:
                        // every waiter posts its own.
                        self.space
                            .post_cache_event(user, doc, EventKind::CacheRead)?;
                        AtomicCacheStats::bump(&self.stats.events_forwarded);
                    }
                    if let Some(link) = &self.access_link {
                        link.transfer(&clock, bytes.len() as u64);
                    }
                    let latency_micros = watch.elapsed_micros();
                    return Ok(ReadOutcome {
                        bytes,
                        class: HitClass::CoalescedWait,
                        latency_micros,
                    });
                }
                Join::Waited(Some(FlightResult::Failed(error))) => {
                    // The flight's one fetch failed; every waiter shares
                    // the error (and its own stale fallback, if any).
                    AtomicCacheStats::bump(&self.stats.coalesced_waits);
                    return self.stale_or_degraded(error, stale, user, doc, &clock, &opts, &watch);
                }
                // The leader's result may not be shared (uncacheable
                // content must reach the origin per read) or the leader
                // unwound without publishing: fetch independently.
                Join::Waited(Some(FlightResult::Unshared)) | Join::Waited(None) => None,
            }
        } else {
            None
        };

        // Execute the full read path with no shard lock held — the path
        // may dispatch events that invalidate entries in this cache
        // (lock-order rule: no cache lock across middleware calls).
        let fetched = self.fetch_with_resilience(user, doc, &clock, &opts);
        if let Some(guard) = guard {
            guard.complete(match &fetched {
                Ok((bytes, report, _, _)) => {
                    if report.cacheability == Cacheability::Uncacheable {
                        FlightResult::Unshared
                    } else {
                        FlightResult::Shared {
                            bytes: bytes.clone(),
                            forward: report.cacheability.requires_event_forwarding(),
                        }
                    }
                }
                Err(error) => FlightResult::Failed(error.clone()),
            });
        }
        let (bytes, report, stage_partial, content_sig) = match fetched {
            Ok(fetched) => fetched,
            Err(error) => {
                return self.stale_or_degraded(error, stale, user, doc, &clock, &opts, &watch)
            }
        };
        if report.cacheability == Cacheability::Uncacheable {
            AtomicCacheStats::bump(&self.stats.uncacheable_reads);
            let latency_micros = watch.elapsed_micros();
            return Ok(ReadOutcome {
                bytes,
                class: HitClass::Miss,
                latency_micros,
            });
        }
        AtomicCacheStats::bump(&self.stats.misses);
        {
            let mut shard = self.shards[index].lock();
            self.fill_locked(
                index,
                &mut shard,
                key,
                bytes.clone(),
                report,
                false,
                content_sig,
            );
        }
        AtomicCacheStats::add(&self.stats.miss_micros, watch.elapsed_micros());
        if self.prefetch.enabled {
            // Brownout rung 3: sibling prefetch is the most speculative
            // work in the cache, so it is the first whole feature shed.
            if self.brownout_level().sheds_prefetch() {
                self.count_shed(Priority::Prefetch);
            } else {
                self.prefetch_collection_siblings(user, doc);
            }
        }
        if let Some(link) = &self.access_link {
            link.transfer(&clock, bytes.len() as u64);
        }
        let latency_micros = watch.elapsed_micros();
        Ok(ReadOutcome {
            bytes,
            class: if stage_partial {
                HitClass::PartialHit
            } else {
                HitClass::Miss
            },
            latency_micros,
        })
    }

    /// Terminal miss-path failure handling: a transient error may still
    /// be served stale — resident bytes whose freshness is merely
    /// *unknown* stand in for the unreachable origin within the effective
    /// staleness bound (the configured [`ResilienceConfig::serve_stale`],
    /// or an unbounded per-read window when `opts.allow_stale` is set).
    /// Verifier-rejected entries were dropped before the fetch and can
    /// never be served here. Everything else propagates the error.
    #[allow(clippy::too_many_arguments)]
    fn stale_or_degraded(
        &self,
        error: PlacelessError,
        stale: Option<(Bytes, Instant, bool)>,
        user: UserId,
        doc: DocumentId,
        clock: &VirtualClock,
        opts: &ReadOptions,
        watch: &Stopwatch,
    ) -> Result<ReadOutcome> {
        if error.is_transient() {
            let bound = self
                .resilience
                .serve_stale
                .or_else(|| opts.allow_stale.then_some(StalenessBound::UNBOUNDED));
            if let (Some(bound), Some((bytes, filled_at, forward))) = (bound, stale) {
                if bound.permits(filled_at, clock.now()) {
                    return self.serve_stale_candidate(bytes, forward, user, doc, clock, watch);
                }
            }
            AtomicCacheStats::bump(&self.stats.degraded_errors);
        }
        Err(error)
    }

    /// Serves resident stale bytes in place of a fetch: counts the stale
    /// service, charges local latency and the access link, and forwards
    /// the read event when the entry's cacheability demands one per
    /// read. Callers have already checked the applicable staleness
    /// bound.
    fn serve_stale_candidate(
        &self,
        bytes: Bytes,
        forward: bool,
        user: UserId,
        doc: DocumentId,
        clock: &VirtualClock,
        watch: &Stopwatch,
    ) -> Result<ReadOutcome> {
        AtomicCacheStats::bump(&self.stats.stale_served);
        self.local_latency.charge(clock, bytes.len() as u64);
        if forward {
            self.space
                .post_cache_event(user, doc, EventKind::CacheRead)?;
            AtomicCacheStats::bump(&self.stats.events_forwarded);
        }
        if let Some(link) = &self.access_link {
            link.transfer(clock, bytes.len() as u64);
        }
        let latency_micros = watch.elapsed_micros();
        Ok(ReadOutcome {
            bytes,
            class: HitClass::StaleServed,
            latency_micros,
        })
    }

    /// Executes the middleware read under the configured resilience
    /// policy: circuit-breaker admission before every attempt, bounded
    /// retries with deterministic exponential backoff charged to the
    /// virtual clock, and an overall fetch deadline (`opts` may override
    /// the configured deadline per read). With the no-op default config
    /// this is exactly one plain read — bit-identical to the
    /// pre-resilience cache.
    ///
    /// Returns the bytes, the path report, and whether the chain walk
    /// reused at least one cached stage. Runs with no cache lock held
    /// (the middleware path may re-enter this cache through the
    /// invalidation bus).
    fn fetch_with_resilience(
        &self,
        user: UserId,
        doc: DocumentId,
        clock: &VirtualClock,
        opts: &ReadOptions,
    ) -> Result<(Bytes, PathReport, bool, Option<Signature>)> {
        let use_stages = self.stage_cache && !opts.bypass_stage_cache;
        let deadline = opts
            .deadline_micros
            .or(self.resilience.fetch_deadline_micros);
        let ctx = FetchCtx {
            priority: opts.priority,
            // The budget instant exists only under overload control;
            // without it the deadline keeps bounding retry scheduling
            // alone, exactly as before.
            deadline_at: if self.overload.is_some() {
                deadline.map(|budget| clock.now().plus(budget))
            } else {
                None
            },
        };
        if self.resilience.is_noop() {
            // A per-read deadline bounds retry scheduling; without
            // retries there is nothing to bound, so the shortcut stands
            // (overload admission still applies inside `fetch_once`).
            return self.fetch_once(user, doc, clock, use_stages, ctx);
        }
        let origin = self
            .space
            .origin_of(doc)
            .unwrap_or_else(|| format!("doc:{}", doc.0));
        let started = clock.now();
        // Salting the jitter stream with the key keeps concurrent fetches
        // from sharing one schedule while staying deterministic per key.
        let mut backoff = BackoffSchedule::new(&self.resilience, doc.0 ^ user.0.rotate_left(32));
        let mut attempt = 0u32;
        loop {
            if let Some(config) = &self.resilience.breaker {
                if let Admission::Reject { retry_after } =
                    self.breakers.admit(config, &origin, clock.now())
                {
                    // Fast-fail without contacting the origin at all.
                    return Err(PlacelessError::Unavailable {
                        source: origin,
                        retry_after: Some(retry_after),
                    });
                }
            }
            match self.fetch_once(user, doc, clock, use_stages, ctx) {
                Ok(fetched) => {
                    if let Some(config) = &self.resilience.breaker {
                        self.breakers.record_success(config, &origin);
                    }
                    return Ok(fetched);
                }
                Err(error) if error.is_transient() => {
                    if let Some(config) = &self.resilience.breaker {
                        if self.breakers.record_failure(config, &origin, clock.now()) {
                            AtomicCacheStats::bump(&self.stats.breaker_trips);
                        }
                    }
                    if attempt >= self.resilience.max_retries {
                        return Err(error);
                    }
                    // A provider `retry_after` hint floors the backoff:
                    // retrying sooner than the origin said it could
                    // recover is a wasted attempt. A hint beyond the
                    // schedule's own horizon means no wait this loop is
                    // prepared to make can reach recovery — give up now.
                    let floor = crate::resilience::retry_floor(&error);
                    if floor > self.resilience.hint_horizon_micros() {
                        return Err(error);
                    }
                    let delay = backoff.delay_micros(attempt).max(floor);
                    if let Some(budget) = deadline {
                        // Don't start a backoff the deadline can't cover.
                        // The caller still waited out the rest of its
                        // budget discovering that, so charge the
                        // truncated wait to the clock before reporting —
                        // `elapsed_micros` then covers the backoff that
                        // overran, not just the attempts before it.
                        let elapsed = clock.now().since(started);
                        if elapsed + delay > budget {
                            clock.advance(budget.saturating_sub(elapsed));
                            return Err(PlacelessError::Timeout {
                                source: origin,
                                elapsed_micros: clock.now().since(started),
                            });
                        }
                    }
                    clock.advance(delay);
                    AtomicCacheStats::bump(&self.stats.retries);
                    attempt += 1;
                }
                Err(error) => return Err(error),
            }
        }
    }

    /// Executes one middleware read attempt: the plain opaque-stream read,
    /// or — with `use_stages` — the compiled-plan walk with
    /// intermediate-result lookups. Every attempt claims a per-origin
    /// window slot first (when configured) and is counted in the
    /// in-flight gauge behind `inflight_peak`; with overload control the
    /// claim is deadline-aware and may shed the attempt with
    /// [`PlacelessError::Overloaded`]. Runs with no cache lock held.
    fn fetch_once(
        &self,
        user: UserId,
        doc: DocumentId,
        clock: &VirtualClock,
        use_stages: bool,
        ctx: FetchCtx,
    ) -> Result<(Bytes, PathReport, bool, Option<Signature>)> {
        let slot = self.begin_origin_fetch(doc, clock, ctx)?;
        let result = if use_stages {
            self.read_through_stages(user, doc, clock, ctx)
        } else {
            self.space
                .read_document(user, doc)
                .map(|(bytes, report)| (bytes, report, false, None))
        };
        self.end_origin_fetch(slot, clock);
        result
    }

    /// Claims a per-origin window slot (when a window is configured) and
    /// bumps the in-flight gauge feeding `inflight_peak`. Without
    /// overload control the claim blocks until a slot frees, exactly as
    /// before. With overload control the claim is deadline-aware
    /// ([`InflightWindow::acquire_until`]): a request whose remaining
    /// budget cannot cover the expected queue wait plus service time —
    /// or whose deadline lapses while parked — is shed with
    /// [`PlacelessError::Overloaded`] and counted against its priority
    /// class. Called holding no cache lock; the window wait blocks
    /// holding no lock either.
    fn begin_origin_fetch(
        &self,
        doc: DocumentId,
        clock: &VirtualClock,
        ctx: FetchCtx,
    ) -> Result<Option<OriginSlot>> {
        let slot = match &self.window {
            None => None,
            Some(window) => {
                let origin = self
                    .space
                    .origin_of(doc)
                    .unwrap_or_else(|| format!("doc:{}", doc.0));
                match &self.overload {
                    None => window.acquire(&origin),
                    Some(controller) => {
                        let expected = controller.expected_service_micros(&origin);
                        match window.acquire_until(&origin, clock, ctx.deadline_at, expected) {
                            Acquire::Admitted { queued_micros } => {
                                AtomicCacheStats::add(&self.stats.queue_wait_micros, queued_micros);
                            }
                            Acquire::Shed { queued_micros } => {
                                AtomicCacheStats::add(&self.stats.queue_wait_micros, queued_micros);
                                self.count_shed(ctx.priority);
                                return Err(PlacelessError::Overloaded {
                                    retry_after: controller.config().retry_after_micros,
                                });
                            }
                        }
                    }
                }
                Some(OriginSlot {
                    origin,
                    started: clock.now(),
                })
            }
        };
        let now = self.inflight.fetch_add(1, Ordering::Relaxed) + 1;
        AtomicCacheStats::maximize(&self.stats.inflight_peak, now);
        Ok(slot)
    }

    /// Releases what [`Self::begin_origin_fetch`] claimed and, with
    /// overload control, feeds the observed fetch latency to the AIMD
    /// controller — the returned width immediately resizes this origin's
    /// window. The observation is virtual-clock time, which under
    /// concurrency includes advances charged by other threads; AIMD only
    /// needs the signal to rise under load and fall when it drains, and
    /// it does.
    fn end_origin_fetch(&self, slot: Option<OriginSlot>, clock: &VirtualClock) {
        self.inflight.fetch_sub(1, Ordering::Relaxed);
        if let (Some(window), Some(slot)) = (&self.window, slot) {
            window.release(&slot.origin);
            if let Some(controller) = &self.overload {
                let observed = clock.now().since(slot.started);
                let width = controller.observe_fetch(&slot.origin, observed);
                window.set_limit(&slot.origin, width as usize);
            }
        }
    }

    /// Bumps the shed counter for `priority`.
    fn count_shed(&self, priority: Priority) {
        AtomicCacheStats::bump(match priority {
            Priority::Foreground => &self.stats.sheds_foreground,
            Priority::Refresh => &self.stats.sheds_refresh,
            Priority::Prefetch => &self.stats.sheds_prefetch,
        });
    }

    /// Current brownout rung ([`BrownoutLevel::Normal`] without overload
    /// control).
    fn brownout_level(&self) -> BrownoutLevel {
        self.overload
            .as_ref()
            .map(|controller| controller.level())
            .unwrap_or(BrownoutLevel::Normal)
    }

    /// Feeds the brownout ladder one pressure sample (readers parked on
    /// origin windows plus readers blocked on miss flights) and records
    /// any transition in the stats. Returns the post-sample level.
    fn observe_overload_pressure(&self, clock: &VirtualClock) -> BrownoutLevel {
        let Some(controller) = &self.overload else {
            return BrownoutLevel::Normal;
        };
        let waiters = self
            .window
            .as_ref()
            .map(|window| window.queued_total())
            .unwrap_or(0)
            + self.version_flights.waiting();
        if let Some((_, to)) = controller.observe_pressure(clock.now(), waiters) {
            AtomicCacheStats::bump(&self.stats.brownout_shifts);
            AtomicCacheStats::set(&self.stats.brownout_level, u64::from(to.rung()));
        }
        controller.level()
    }

    /// Budget check before each expensive stage step (fires only when
    /// overload control supplied a deadline instant): a walk whose
    /// budget already lapsed is shed instead of computing doomed stages.
    fn check_stage_budget(&self, ctx: FetchCtx, clock: &VirtualClock) -> Result<()> {
        let Some(controller) = &self.overload else {
            return Ok(());
        };
        if ctx
            .deadline_at
            .is_some_and(|deadline| clock.now() >= deadline)
        {
            self.count_shed(ctx.priority);
            return Err(PlacelessError::Overloaded {
                retry_after: controller.config().retry_after_micros,
            });
        }
        Ok(())
    }

    /// Walks the compiled [`TransformPlan`] through a
    /// [`StagePipeline`], streaming each executed stage in one chunked
    /// pass (output digest folded as the chunks flow) and skipping stages
    /// whose output is already resident under its stage signature.
    ///
    /// Two leases make the repeat walk cheap. The **chain lease** is the
    /// space's compiled view of the base half of the property chain,
    /// validated against the base document's chain epoch inside
    /// [`DocumentSpace::read_plan_cached`] — reusing it saves one
    /// middleware hop. The **root lease** is the provider content
    /// signature captured at the last fetch, guarded by the provider's
    /// own verifier: the verifier runs on *every* use (this is the
    /// lease's soundness condition, not `run_verifiers` freshness
    /// policy), and only `Valid` lets the walk anchor its signature chain
    /// on the leased digest without refetching the provider bytes at all.
    /// A walk that never executes a stage — every signed stage hits —
    /// then never materializes the root. Stale intermediates are never
    /// served either way: a stage hit is *proof* that the resident
    /// intermediate was derived from exactly the attested source bytes by
    /// exactly this transform prefix. Skipped stages do not charge the
    /// virtual clock (that is the saving) but still accrue their
    /// replacement cost and still register their path metadata (votes,
    /// verifiers, pins) via a lazy dummy wrap.
    ///
    /// With single-flight on, a stage that is neither resident nor being
    /// computed opens a **stage flight** keyed by its signature; threads
    /// that miss the same `(doc, stage)` signature while it is open wait
    /// for the leader and account the shared output as a stage hit plus a
    /// coalesced wait. Identical signatures imply identical input bytes
    /// and transform prefix, so the leader's output is byte-for-byte what
    /// every waiter's walk would have computed.
    ///
    /// Returns the bytes, the report, whether any stage hit (resident or
    /// coalesced), and the final content digest when the walk knows it
    /// (spares the install path a full re-hash).
    fn read_through_stages(
        &self,
        user: UserId,
        doc: DocumentId,
        clock: &VirtualClock,
        ctx: FetchCtx,
    ) -> Result<(Bytes, PathReport, bool, Option<Signature>)> {
        // Lease probe. The root half is consumed only if its verifier —
        // charged to this walk — still vouches for the leased signature.
        let (chain_lease, root_sig) = {
            let mut leases = self.leases.lock();
            match leases.get_mut(&doc) {
                Some(lease) => {
                    let chain = Arc::clone(&lease.chain);
                    let root = lease.root.as_ref().and_then(|root| {
                        let cost = root.verifier.cost_micros();
                        clock.advance(cost);
                        AtomicCacheStats::add(&self.stats.verify_micros, cost);
                        (root.verifier.check(clock) == Validity::Valid).then_some(root.sig)
                    });
                    if root.is_none() {
                        lease.root = None;
                    }
                    (Some(chain), root)
                }
                None => (None, None),
            }
        };
        let (plan, chain_lease, _chain_reused) =
            self.space
                .read_plan_cached(user, doc, chain_lease.as_ref())?;
        let mut report = plan.seed_report(clock);
        // The walk anchors either on the verified root signature (no
        // fetch, no bytes until a stage actually needs them) or on freshly
        // fetched provider bytes, their digest folded in the same pass.
        let mut fetched_root: Option<Signature> = None;
        let mut root_verifier: Option<Box<dyn Verifier>> = None;
        let mut pipeline = match root_sig {
            Some(sig) => {
                AtomicCacheStats::bump(&self.stats.root_reuses);
                StagePipeline::from_signature(&plan, sig)
            }
            None => {
                // Capture the verifier before the bytes it vouches for: a
                // write landing in between reads as Invalid next time (a
                // wasted refetch), never as Valid over stale bytes.
                root_verifier = plan.provider.make_verifier(clock);
                let mut stream = plan.provider.open_input(clock)?;
                let (bytes, sig) = read_all_digest(stream.as_mut())?;
                drop(stream);
                fetched_root = Some(sig);
                StagePipeline::from_root(&plan, bytes, sig)
            }
        };
        let mut any_hit = false;
        for index in 0..plan.len() {
            // Every expensive step checks remaining budget first: a walk
            // whose deadline lapsed mid-chain is shed before executing
            // (or even looking up) the next stage.
            self.check_stage_budget(ctx, clock)?;
            match pipeline.stage_signature(index) {
                Some(stage_sig) => {
                    if let Some((cached, content_sig)) = self.stage_lookup(stage_sig) {
                        pipeline.adopt_hit(
                            clock,
                            index,
                            &mut report,
                            stage_sig,
                            cached,
                            Some(content_sig),
                        )?;
                        AtomicCacheStats::bump(&self.stats.stage_hits);
                        any_hit = true;
                    } else if self.single_flight {
                        match self.stage_flights.join(EntryKey::Stage(stage_sig)) {
                            Join::Leader(guard) => {
                                // Re-check residency under leadership: a
                                // previous flight may have filled this
                                // signature between our lookup and now.
                                if let Some((cached, content_sig)) = self.stage_lookup(stage_sig) {
                                    pipeline.adopt_hit(
                                        clock,
                                        index,
                                        &mut report,
                                        stage_sig,
                                        cached.clone(),
                                        Some(content_sig),
                                    )?;
                                    AtomicCacheStats::bump(&self.stats.stage_hits);
                                    any_hit = true;
                                    guard.complete(FlightResult::Shared {
                                        bytes: cached,
                                        forward: false,
                                    });
                                } else {
                                    match self.run_and_fill_stage(
                                        &plan,
                                        &mut pipeline,
                                        clock,
                                        index,
                                        &mut report,
                                        &mut fetched_root,
                                        &mut root_verifier,
                                    ) {
                                        Ok((output, executed_sig)) => {
                                            guard.complete(
                                                if report.cacheability == Cacheability::Uncacheable
                                                    || executed_sig != stage_sig
                                                {
                                                    // Uncacheable content
                                                    // must execute per read;
                                                    // a rebased walk (stale
                                                    // root lease) computed
                                                    // something else than
                                                    // this flight promised.
                                                    // Waiters run their own.
                                                    FlightResult::Unshared
                                                } else {
                                                    FlightResult::Shared {
                                                        bytes: output,
                                                        forward: false,
                                                    }
                                                },
                                            );
                                        }
                                        Err(error) => {
                                            guard.complete(FlightResult::Failed(error.clone()));
                                            return Err(error);
                                        }
                                    }
                                }
                            }
                            Join::Waited(Some(FlightResult::Shared { bytes: shared, .. })) => {
                                pipeline.adopt_hit(
                                    clock,
                                    index,
                                    &mut report,
                                    stage_sig,
                                    shared,
                                    None,
                                )?;
                                AtomicCacheStats::bump(&self.stats.stage_hits);
                                AtomicCacheStats::bump(&self.stats.coalesced_waits);
                                any_hit = true;
                            }
                            Join::Waited(Some(FlightResult::Failed(error))) => {
                                // Same signature, same computation: the
                                // leader's failure is this walk's failure
                                // (the resilience loop above may retry it).
                                AtomicCacheStats::bump(&self.stats.coalesced_waits);
                                return Err(error);
                            }
                            Join::Waited(Some(FlightResult::Unshared)) | Join::Waited(None) => {
                                self.run_and_fill_stage(
                                    &plan,
                                    &mut pipeline,
                                    clock,
                                    index,
                                    &mut report,
                                    &mut fetched_root,
                                    &mut root_verifier,
                                )?;
                            }
                        }
                    } else {
                        self.run_and_fill_stage(
                            &plan,
                            &mut pipeline,
                            clock,
                            index,
                            &mut report,
                            &mut fetched_root,
                            &mut root_verifier,
                        )?;
                    }
                }
                None => {
                    // Opaque stage: executes on every read; the pipeline
                    // restarts the signature chain from its actual output
                    // digest, so downstream stages stay cacheable.
                    self.materialize_root(
                        &plan,
                        &mut pipeline,
                        clock,
                        &mut fetched_root,
                        &mut root_verifier,
                    )?;
                    pipeline.execute(clock, index, &mut report)?;
                }
            }
        }
        if any_hit {
            AtomicCacheStats::bump(&self.stats.stage_partial_hits);
        }
        // A walk whose every stage hit never needed the root — until now:
        // the caller wants the final content.
        self.materialize_root(
            &plan,
            &mut pipeline,
            clock,
            &mut fetched_root,
            &mut root_verifier,
        )?;
        let (bytes, content_sig) = pipeline.finish();
        let bytes = bytes.expect("pipeline bytes materialized after the walk");
        // Refresh the lease for the next walk: the chain half always (it
        // is epoch-validated on use), the root half only when this walk
        // fetched the provider bytes and could capture a verifier over
        // them (a fetch with no verifier clears any stale root lease).
        {
            let mut leases = self.leases.lock();
            let lease = leases.entry(doc).or_insert_with(|| PlanLease {
                chain: Arc::clone(&chain_lease),
                root: None,
            });
            lease.chain = chain_lease;
            if let Some(sig) = fetched_root {
                lease.root = root_verifier
                    .take()
                    .map(|verifier| RootLease { sig, verifier });
            }
        }
        Ok((bytes, report, any_hit, content_sig))
    }

    /// Ensures the pipeline holds real bytes, fetching the provider root
    /// when a lease-anchored walk reaches a point that needs content. The
    /// pipeline can only be byteless at the chain head (every processed
    /// stage leaves bytes behind), so when the fetched digest contradicts
    /// the leased signature — the lease lost its race with a writer
    /// between the verifier probe and this fetch — rebasing the pipeline
    /// on the real root is a clean restart of the walk, not a mid-chain
    /// splice.
    fn materialize_root<'p>(
        &self,
        plan: &'p TransformPlan,
        pipeline: &mut StagePipeline<'p>,
        clock: &VirtualClock,
        fetched_root: &mut Option<Signature>,
        root_verifier: &mut Option<Box<dyn Verifier>>,
    ) -> Result<()> {
        if pipeline.has_bytes() {
            return Ok(());
        }
        *root_verifier = plan.provider.make_verifier(clock);
        let mut stream = plan.provider.open_input(clock)?;
        let (bytes, sig) = read_all_digest(stream.as_mut())?;
        drop(stream);
        *fetched_root = Some(sig);
        if sig == pipeline.chain_signature() {
            pipeline.supply_root(bytes);
        } else {
            *pipeline = StagePipeline::from_root(plan, bytes, sig);
        }
        Ok(())
    }

    /// Executes one signed stage through the pipeline and retains its
    /// output — the plain, uncoalesced stage miss path. Returns the bytes
    /// and the signature the stage actually executed under; the latter
    /// differs from the caller's expectation only when materializing the
    /// root rebased the walk onto a newer provider rendition.
    #[allow(clippy::too_many_arguments)]
    fn run_and_fill_stage<'p>(
        &self,
        plan: &'p TransformPlan,
        pipeline: &mut StagePipeline<'p>,
        clock: &VirtualClock,
        index: usize,
        report: &mut PathReport,
        fetched_root: &mut Option<Signature>,
        root_verifier: &mut Option<Box<dyn Verifier>>,
    ) -> Result<(Bytes, Signature)> {
        self.materialize_root(plan, pipeline, clock, fetched_root, root_verifier)?;
        let stage_sig = pipeline
            .stage_signature(index)
            .expect("run_and_fill_stage is only called for signed stages");
        let output = pipeline.execute(clock, index, report)?;
        if report.cacheability != Cacheability::Uncacheable {
            // Replacement cost = everything it would take to rebuild this
            // intermediate: provider fetch plus the chain prefix up to and
            // including this stage.
            self.fill_stage(
                stage_sig,
                output.bytes.clone(),
                Some(output.content_sig),
                report.cost.effective_micros(),
            );
        }
        Ok((output.bytes, stage_sig))
    }

    /// Looks up an intermediate stage entry, registering the hit with the
    /// entry's shard policy. Briefly takes one shard lock. Returns the
    /// bytes together with their stored content digest, so the pipeline
    /// can carry the digest forward without re-hashing.
    fn stage_lookup(&self, sig: Signature) -> Option<(Bytes, Signature)> {
        let key = EntryKey::Stage(sig);
        let mut shard = self.shard(key).lock();
        let content_sig = *shard.sigs.get(&key)?;
        let bytes = self.store.get(content_sig)?;
        if let Some(meta) = shard.meta.get_mut(&key) {
            meta.hits += 1;
        }
        shard.policy.on_hit(key);
        Some((bytes, content_sig))
    }

    /// Inserts an intermediate stage output under its stage signature,
    /// competing for residency like any other entry but tagged
    /// [`STAGE_PIN_LEVEL`] so cost-aware policies discount it.
    /// `content_sig` is the output's already-computed digest (the
    /// streaming executor folds it as the chunks flow), sparing the
    /// install a second full pass over the bytes.
    fn fill_stage(&self, sig: Signature, bytes: Bytes, content_sig: Option<Signature>, cost: f64) {
        // Brownout rung 2: under sustained pressure the output is still
        // computed and served, but not persisted — stage-cache churn is
        // pure overhead when the cache is fighting for its life.
        if self.brownout_level().skips_stage_fills() {
            return;
        }
        let key = EntryKey::Stage(sig);
        let index = self.shard_index(key);
        let mut shard = self.shards[index].lock();
        // Content-addressed: an existing binding is already this content.
        if shard.sigs.contains_key(&key) {
            return;
        }
        let meta = EntryMeta::new(
            Vec::new(),
            Cacheability::Unrestricted,
            cost,
            bytes.len() as u64,
            self.space.clock().now(),
        );
        self.install_locked(
            index,
            &mut shard,
            key,
            bytes,
            meta,
            STAGE_PIN_LEVEL,
            content_sig,
        );
    }

    /// Records an invalidation-bus sequence number and reacts to gaps.
    ///
    /// Sequence numbers are dense over every bus post; a jump of more
    /// than one means notifications were lost, and *any* resident entry
    /// might have been covered by one of them. The notifier consistency
    /// guarantee is void, so every entry is demoted to verifier
    /// revalidation: entries with verifiers are flagged `force_verify`
    /// (checked on their next hit even in notifier-only configurations),
    /// and entries with no verifier — nothing could ever catch their
    /// staleness — are dropped outright.
    ///
    /// The first delivery after subscribing (`prev == 0`) establishes the
    /// baseline and is never treated as a gap.
    fn note_sequence(&self, seq: u64) {
        let prev = self.last_seq.swap(seq, Ordering::AcqRel);
        if prev == 0 || seq <= prev + 1 {
            return;
        }
        AtomicCacheStats::bump(&self.stats.notifier_gaps);
        for mutex in self.shards.iter() {
            let mut shard = mutex.lock();
            let keys: Vec<EntryKey> = shard.meta.keys().copied().collect();
            for key in keys {
                // Stage entries are exempt: they are content-addressed, so a
                // lost invalidation can never make one serve stale data —
                // the lookup key itself stops resolving.
                if key.is_stage() {
                    continue;
                }
                let has_verifiers = shard
                    .meta
                    .get(&key)
                    .is_some_and(|meta| !meta.verifiers.is_empty());
                if has_verifiers {
                    if let Some(meta) = shard.meta.get_mut(&key) {
                        meta.force_verify = true;
                    }
                } else {
                    self.drop_entry(&mut shard, key);
                }
            }
        }
    }

    /// Inserts a filled entry, updating sharing stats, pinning, the
    /// policy, and enforcing the global byte budget. Caller holds the
    /// shard lock for `index`.
    ///
    /// Room is *reserved* before the content is published
    /// ([`ConcurrentStore::try_acquire`]), evicting until the reservation
    /// succeeds — the budget is never overshot. Victim order matches the
    /// classic insert-then-evict loop: the incoming entry enters its
    /// shard's policy first, so it competes for residency like any other
    /// entry; if the policy nominates *it*, the fill tries to steal room
    /// from a sibling shard and otherwise gives the entry up (with
    /// `shards: 1` that reproduces the original "evict the entry just
    /// inserted" behaviour, statistics included).
    #[allow(clippy::too_many_arguments)]
    fn fill_locked(
        &self,
        index: usize,
        shard: &mut Shard,
        key: EntryKey,
        bytes: Bytes,
        report: PathReport,
        prefetched: bool,
        content_sig: Option<Signature>,
    ) {
        let clock = self.space.clock();
        let mut meta = EntryMeta::new(
            report.verifiers,
            report.cacheability,
            report.cost.effective_micros(),
            bytes.len() as u64,
            clock.now(),
        );
        meta.pinned = report.pinned;
        meta.prefetched = prefetched;
        self.install_locked(index, shard, key, bytes, meta, 0, content_sig);
    }

    /// The shared insert-with-reservation loop behind [`Self::fill_locked`]
    /// (final versions) and [`Self::fill_stage`] (intermediates). Caller
    /// holds the shard lock for `index`. `known_sig` is the content digest
    /// when the read path already computed it in-stream; the store is
    /// content-addressed, so a wrong digest would corrupt sharing —
    /// debug builds re-hash and compare.
    #[allow(clippy::too_many_arguments)]
    fn install_locked(
        &self,
        index: usize,
        shard: &mut Shard,
        key: EntryKey,
        bytes: Bytes,
        meta: EntryMeta,
        pin_level: u8,
        known_sig: Option<Signature>,
    ) {
        let size = meta.size;
        let cost = meta.cost_micros;
        let pinned = meta.pinned;
        // A re-fill over an existing binding releases the old content.
        if let Some(old) = shard.sigs.remove(&key) {
            self.store.release(old);
            if key.is_stage() {
                if let Some(old_meta) = shard.meta.get(&key) {
                    AtomicCacheStats::sub(&self.stats.stage_bytes, old_meta.size);
                }
            }
        }
        shard.meta.insert(key, meta);
        let attrs = EntryAttrs::new(size, cost).with_pin_level(pin_level);
        if pinned {
            // Pinned entries never enter the policy, so they can never be
            // chosen as eviction victims.
            AtomicCacheStats::bump(&self.stats.pinned_fills);
        } else {
            shard.policy.on_insert(key, &attrs);
        }
        let sig = match known_sig {
            Some(sig) => {
                debug_assert_eq!(
                    sig,
                    ConcurrentStore::signature_of(&bytes),
                    "known content signature must match the bytes being installed"
                );
                sig
            }
            None => ConcurrentStore::signature_of(&bytes),
        };
        loop {
            match self.store.try_acquire(sig, &bytes, self.capacity_bytes) {
                Ok(shared) => {
                    if shared {
                        AtomicCacheStats::bump(&self.stats.shared_fills);
                    }
                    shard.sigs.insert(key, sig);
                    if key.is_stage() {
                        AtomicCacheStats::add(&self.stats.stage_bytes, size);
                    }
                    return;
                }
                Err(NoRoom) => {
                    if let Some(victim) = shard.policy.evict() {
                        if victim == key {
                            // The incoming entry is its own shard's
                            // minimum; prefer room from a sibling shard.
                            if self.steal_one(index) {
                                shard.policy.on_insert(key, &attrs);
                                continue;
                            }
                            shard.meta.remove(&key);
                            AtomicCacheStats::bump(&self.stats.evictions);
                            return;
                        }
                        self.drop_victim(shard, victim);
                        AtomicCacheStats::bump(&self.stats.evictions);
                    } else if !self.steal_one(index) {
                        // Nothing evictable anywhere (everything pinned):
                        // serve without caching rather than overshoot.
                        shard.meta.remove(&key);
                        return;
                    }
                }
            }
        }
    }

    /// Evicts until the store fits the budget again, sparing `spare`
    /// (re-entered into the policy if nominated). Used after in-place
    /// verifier replacements, the one path that can overshoot. Caller
    /// holds the shard lock for `index`.
    fn reclaim_over_budget(&self, index: usize, shard: &mut Shard, spare: Option<EntryKey>) {
        while self.store.physical_bytes() > self.capacity_bytes {
            if let Some(victim) = shard.policy.evict() {
                if spare == Some(victim) {
                    if let Some(meta) = shard.meta.get(&victim) {
                        shard
                            .policy
                            .on_insert(victim, &EntryAttrs::new(meta.size, meta.cost_micros));
                    }
                    if !self.steal_one(index) {
                        return;
                    }
                    continue;
                }
                self.drop_victim(shard, victim);
                AtomicCacheStats::bump(&self.stats.evictions);
            } else if !self.steal_one(index) {
                return;
            }
        }
    }

    /// Pulls collection siblings of `doc` into the cache after a miss.
    ///
    /// Sibling fetches carry [`Priority::Prefetch`], so with overload
    /// control they are the first work deadline-aware admission sheds —
    /// and one `Overloaded` verdict abandons the rest of the batch
    /// rather than hammering a window that just refused speculative
    /// work.
    fn prefetch_collection_siblings(&self, user: UserId, doc: DocumentId) {
        let ctx = FetchCtx {
            priority: Priority::Prefetch,
            // Speculative work gets the configured fetch budget as its
            // deadline: a prefetch the origin cannot serve inside the
            // budget a demand read would get is not worth queueing for.
            deadline_at: if self.overload.is_some() {
                self.resilience
                    .fetch_deadline_micros
                    .map(|budget| self.space.clock().now().plus(budget))
            } else {
                None
            },
        };
        let mut budget = self.prefetch.max_per_miss;
        for collection in self.space.collections_of(doc) {
            for sibling in self.space.collection_members(&collection) {
                if budget == 0 {
                    return;
                }
                if sibling == doc
                    || self.contains(user, sibling)
                    || !self.space.has_reference(user, sibling)
                {
                    continue;
                }
                // Fetch through the full property path, as a miss would.
                let clock = self.space.clock().clone();
                let fetched = self.fetch_once(user, sibling, &clock, self.stage_cache, ctx);
                if matches!(&fetched, Err(PlacelessError::Overloaded { .. })) {
                    return;
                }
                let Ok((bytes, report, _, content_sig)) = fetched else {
                    continue;
                };
                if report.cacheability == Cacheability::Uncacheable {
                    continue;
                }
                let key = EntryKey::Version(sibling, user);
                let index = self.shard_index(key);
                let mut shard = self.shards[index].lock();
                self.fill_locked(index, &mut shard, key, bytes, report, true, content_sig);
                AtomicCacheStats::bump(&self.stats.prefetches);
                budget -= 1;
            }
        }
    }

    /// Writes a document for `user` according to the configured
    /// [`WriteMode`].
    pub fn write(&self, user: UserId, doc: DocumentId, data: &[u8]) -> Result<()> {
        let clock = self.space.clock().clone();
        match self.write_mode {
            WriteMode::Through => {
                self.write_with_resilience(user, doc, data, &clock)?;
                AtomicCacheStats::bump(&self.stats.writes);
                // The source changed: every locally cached version of this
                // document is stale, whatever notifiers may also say.
                self.invalidate_doc(doc);
                Ok(())
            }
            WriteMode::Back => {
                {
                    let key = EntryKey::Version(doc, user);
                    let mut shard = self.shard(key).lock();
                    // The epoch is the signature of the rendition this
                    // writer last saw resident — recovery and the
                    // flush-time merge probe compare it against the
                    // origin to detect conflicts.
                    let epoch = shard.sigs.get(&key).copied().unwrap_or(NO_EPOCH);
                    let seq = self.journal.as_ref().map(|journal| {
                        // Write-ahead: the record reaches stable storage
                        // before the dirty map changes, so a crash between
                        // the two loses nothing.
                        let seq = journal.append(doc, user, epoch, data);
                        AtomicCacheStats::bump(&self.stats.journal_appends);
                        seq
                    });
                    // A full-body write supersedes any accumulated op
                    // delta: the entry reverts to an opaque snapshot.
                    let inserted = shard
                        .dirty
                        .insert(
                            key,
                            DirtyEntry {
                                data: Bytes::copy_from_slice(data),
                                seq,
                                ops: Vec::new(),
                                epoch,
                                writer_seq: 0,
                            },
                        )
                        .is_none();
                    drop(shard);
                    if inserted {
                        self.dirty_gauge.fetch_add(1, Ordering::Relaxed);
                    }
                }
                AtomicCacheStats::bump(&self.stats.writes);
                // §3: write-path properties register their own cacheability
                // requirements; forward the operation event when any of
                // them must see every write.
                let forward = self
                    .space
                    .write_cacheability(user, doc)?
                    .requires_event_forwarding();
                if forward {
                    self.space
                        .post_cache_event(user, doc, EventKind::CacheWrite)?;
                    AtomicCacheStats::bump(&self.stats.events_forwarded);
                }
                Ok(())
            }
        }
    }

    /// Applies one typed operation ([`DocOp`]) to a document — the
    /// op-based write API that makes buffered writes *mergeable*.
    ///
    /// In write-through mode the op is applied to the origin's current
    /// content and written immediately ([`DocOp::SetProperty`] attaches
    /// the property directly). In write-back mode the op is folded into
    /// the entry's accumulated delta: the dirty entry keeps both the
    /// materialized view (what a read of the buffered write returns, and
    /// what a binary keep-mine resolution would flush) *and* the op list
    /// since the base epoch, journaled together via
    /// [`WriteJournal::append_op`], so crash recovery and flush can
    /// rebase the delta onto a origin that moved on concurrently — see
    /// [`CacheConfig::merge`].
    pub fn write_op(&self, user: UserId, doc: DocumentId, op: DocOp) -> Result<()> {
        if self.write_mode == WriteMode::Through {
            if let DocOp::SetProperty { name, value } = &op {
                self.space
                    .attach_static(Scope::Personal(user), doc, name, value.clone())?;
                AtomicCacheStats::bump(&self.stats.writes);
                return Ok(());
            }
            let (base, _) = self.space.read_document(user, doc)?;
            return self.write(user, doc, &op.apply(&base));
        }
        let key = EntryKey::Version(doc, user);
        // Resolve the base view without holding the shard lock across a
        // middleware read: if neither a buffered write nor a resident
        // rendition provides the base, read the origin first and re-take
        // the lock (a buffered write that lands in between wins).
        let mut origin_base: Option<(Bytes, Signature)> = None;
        loop {
            let mut shard = self.shard(key).lock();
            let (base, epoch, prior_ops, prior_writer_seq) =
                if let Some(entry) = shard.dirty.get(&key) {
                    // A pending plain write is an opaque snapshot: represent
                    // it as a full-body op so the combined delta stays honest
                    // (it pins the body and is therefore unmergeable, exactly
                    // like the plain write itself).
                    let prior = if entry.ops.is_empty() {
                        vec![DocOp::Replace(entry.data.clone())]
                    } else {
                        entry.ops.clone()
                    };
                    (entry.data.clone(), entry.epoch, prior, entry.writer_seq)
                } else if let Some((sig, bytes)) = shard
                    .sigs
                    .get(&key)
                    .and_then(|sig| self.store.get(*sig).map(|bytes| (*sig, bytes)))
                {
                    (bytes, sig, Vec::new(), 0)
                } else if let Some((bytes, sig)) = origin_base.take() {
                    (bytes, sig, Vec::new(), 0)
                } else {
                    drop(shard);
                    origin_base = Some(match self.space.read_document(user, doc) {
                        Ok((bytes, _)) => {
                            let sig = ConcurrentStore::signature_of(&bytes);
                            (bytes, sig)
                        }
                        Err(
                            error @ (PlacelessError::NoSuchDocument(_)
                            | PlacelessError::NoSuchReference(..)),
                        ) => return Err(error),
                        // Origin unreachable: the op must still not be lost.
                        // Start the delta from an empty base with no epoch;
                        // the flush applies the ops server-side onto whatever
                        // the origin holds by then.
                        Err(_) => (Bytes::new(), NO_EPOCH),
                    });
                    continue;
                };
            let view = op.apply(&base);
            let mut ops = prior_ops;
            ops.push(op.clone());
            let writer_seq = {
                let mut seqs = self.writer_seqs.lock();
                let counter = seqs.entry((doc, user)).or_insert(0);
                // Monotone past both this cache's counter and whatever a
                // recovered entry carried.
                *counter = (*counter).max(prior_writer_seq) + 1;
                *counter
            };
            let seq = self.journal.as_ref().map(|journal| {
                let seq = journal.append_op(doc, user, epoch, &view, ops.clone(), writer_seq);
                AtomicCacheStats::bump(&self.stats.journal_appends);
                seq
            });
            let inserted = shard
                .dirty
                .insert(
                    key,
                    DirtyEntry {
                        data: view,
                        seq,
                        ops,
                        epoch,
                        writer_seq,
                    },
                )
                .is_none();
            drop(shard);
            if inserted {
                self.dirty_gauge.fetch_add(1, Ordering::Relaxed);
            }
            break;
        }
        AtomicCacheStats::bump(&self.stats.writes);
        // Same write-path event forwarding as a plain write-back write.
        let forward = self
            .space
            .write_cacheability(user, doc)?
            .requires_event_forwarding();
        if forward {
            self.space
                .post_cache_event(user, doc, EventKind::CacheWrite)?;
            AtomicCacheStats::bump(&self.stats.events_forwarded);
        }
        Ok(())
    }

    /// Executes one middleware write under the configured resilience
    /// policy: breaker admission before every attempt, bounded retries
    /// with deterministic backoff, and the fetch deadline. Successes and
    /// failures are recorded on the *same* per-origin breakers the read
    /// path uses, so a write-through storm of failures opens the breaker
    /// for reads too (and vice versa). With the no-op default config this
    /// is exactly one plain write — bit-identical to the pre-resilience
    /// cache.
    ///
    /// Runs with no cache lock held.
    fn write_with_resilience(
        &self,
        user: UserId,
        doc: DocumentId,
        data: &[u8],
        clock: &VirtualClock,
    ) -> Result<()> {
        if self.resilience.is_noop() {
            return self.space.write_document(user, doc, data);
        }
        let origin = self
            .space
            .origin_of(doc)
            .unwrap_or_else(|| format!("doc:{}", doc.0));
        let started = clock.now();
        let deadline = self.resilience.fetch_deadline_micros;
        let mut backoff = BackoffSchedule::new(&self.resilience, doc.0 ^ user.0.rotate_left(32));
        let mut attempt = 0u32;
        loop {
            if let Some(config) = &self.resilience.breaker {
                if let Admission::Reject { retry_after } =
                    self.breakers.admit(config, &origin, clock.now())
                {
                    return Err(PlacelessError::Unavailable {
                        source: origin,
                        retry_after: Some(retry_after),
                    });
                }
            }
            match self.space.write_document(user, doc, data) {
                Ok(()) => {
                    if let Some(config) = &self.resilience.breaker {
                        self.breakers.record_success(config, &origin);
                    }
                    return Ok(());
                }
                Err(error) if error.is_transient() => {
                    if let Some(config) = &self.resilience.breaker {
                        if self.breakers.record_failure(config, &origin, clock.now()) {
                            AtomicCacheStats::bump(&self.stats.breaker_trips);
                        }
                    }
                    if attempt >= self.resilience.max_retries {
                        return Err(error);
                    }
                    // As on the read path, a provider `retry_after` hint
                    // floors the backoff wait, and a hint beyond the
                    // schedule's horizon fails the write at once.
                    let floor = crate::resilience::retry_floor(&error);
                    if floor > self.resilience.hint_horizon_micros() {
                        return Err(error);
                    }
                    let delay = backoff.delay_micros(attempt).max(floor);
                    if let Some(budget) = deadline {
                        // As on the read path: a backoff the budget
                        // cannot cover fails the write, but the truncated
                        // wait is still charged to the clock first so the
                        // reported elapsed time includes it.
                        let elapsed = clock.now().since(started);
                        if elapsed + delay > budget {
                            clock.advance(budget.saturating_sub(elapsed));
                            return Err(PlacelessError::Timeout {
                                source: origin,
                                elapsed_micros: clock.now().since(started),
                            });
                        }
                    }
                    clock.advance(delay);
                    AtomicCacheStats::bump(&self.stats.flush_retries);
                    attempt += 1;
                }
                Err(error) => return Err(error),
            }
        }
    }

    /// Pushes all buffered write-back data to the middleware.
    ///
    /// Dirty data is drained holding one shard lock at a time, sorted
    /// into a deterministic order, and written with no cache lock held.
    /// With [`CacheConfig::batched_flush`] (the default) the drained
    /// entries are grouped by origin and each group is written as one
    /// grouped origin operation — one breaker admission decision, one
    /// backoff schedule, and one pair of middleware hops per group
    /// attempt instead of per entry — while every per-entry outcome
    /// below still holds, because the batch write returns one result per
    /// entry. A failed write no longer abandons the remaining entries: the
    /// failed entry and every entry not yet attempted are re-queued into
    /// their shards' dirty maps (a concurrent newer write for the same
    /// key wins over the re-queue), and the returned [`FlushReport`]
    /// names exactly what remains dirty.
    ///
    /// With a journal configured, a flushed record is acknowledged (and
    /// the journal pruned) only after its origin write succeeded, and an
    /// entry whose write exhausted its retries on a transient failure is
    /// *parked*: it stays dirty and journaled, without failing the flush,
    /// until a later flush finds the origin's breaker admitting probes
    /// again. Non-transient failures are re-queued and reported either
    /// way.
    pub fn flush(&self) -> Result<FlushReport> {
        let mut dirty: Vec<(EntryKey, DirtyEntry)> = Vec::new();
        for mutex in self.shards.iter() {
            dirty.extend(mutex.lock().dirty.drain());
        }
        self.dirty_gauge
            .fetch_sub(dirty.len() as u64, Ordering::Relaxed);
        // HashMap drain order depends on the process hasher seed; sorting
        // by the full key (derived `Ord`: every version key before every
        // stage key, no ties between distinct keys) keeps flush outcomes
        // (which entry hit the outage window first) reproducible for
        // same-seed replays.
        dirty.sort_by_key(|(key, _)| *key);
        let mut report = FlushReport::default();
        let clock = self.space.clock().clone();
        let mut entries: Vec<(DocumentId, UserId, DirtyEntry)> = Vec::with_capacity(dirty.len());
        for (key, entry) in dirty {
            match key {
                EntryKey::Version(doc, user) => entries.push((doc, user, entry)),
                EntryKey::Stage(_) => {
                    // Dirty data is only ever buffered under version keys;
                    // a stage key here is an invariant violation. Don't
                    // drop the bytes on the floor: put the entry back and
                    // surface the skip in the report.
                    debug_assert!(false, "non-version key {key:?} in a dirty map");
                    self.requeue_dirty(key, entry);
                    report.skipped_non_version += 1;
                }
            }
        }
        if self.batched_flush {
            // Group by origin, preserving the sorted entry order inside
            // each group; BTreeMap keeps the group order itself
            // deterministic too.
            let mut groups: BTreeMap<String, Vec<(DocumentId, UserId, DirtyEntry)>> =
                BTreeMap::new();
            for (doc, user, entry) in entries {
                let origin = self
                    .space
                    .origin_of(doc)
                    .unwrap_or_else(|| format!("doc:{}", doc.0));
                groups.entry(origin).or_default().push((doc, user, entry));
            }
            for (origin, group) in groups {
                self.flush_group(&origin, group, &clock, &mut report);
            }
        } else {
            for (doc, user, entry) in entries {
                self.flush_one(doc, user, entry, &clock, &mut report);
            }
        }
        debug_assert_eq!(
            report.attempted,
            report.flushed
                + (report.parked.len() + report.requeued.len() + report.dropped.len()) as u64,
            "flush accounting must be non-lossy"
        );
        Ok(report)
    }

    /// Writes one drained dirty entry through [`Self::write_with_resilience`]
    /// and settles the outcome — the pre-batching per-entry flush path,
    /// kept verbatim for [`CacheConfig::batched_flush`]` = false`.
    fn flush_one(
        &self,
        doc: DocumentId,
        user: UserId,
        mut entry: DirtyEntry,
        clock: &VirtualClock,
        report: &mut FlushReport,
    ) {
        report.attempted += 1;
        if self.merge.is_some() && !self.settle_conflict_per_entry(doc, user, &mut entry, report) {
            return; // the conflict was resolved by dropping the entry
        }
        match self.write_with_resilience(user, doc, &entry.data, clock) {
            Ok(()) => {
                AtomicCacheStats::bump(&self.stats.flushes);
                report.flushed += 1;
                if let (Some(journal), Some(seq)) = (&self.journal, entry.seq) {
                    // Ack precisely this record; a newer write that
                    // superseded it mid-flush keeps its own record.
                    journal.ack(seq);
                }
                let key = EntryKey::Version(doc, user);
                if self.parked.lock().remove(&key) {
                    self.parked_gauge.fetch_sub(1, Ordering::Relaxed);
                }
                self.invalidate_doc(doc);
            }
            Err(error) => self.settle_flush_failure(doc, user, entry, error, report),
        }
    }

    /// Flushes one per-origin group of drained dirty entries as grouped
    /// origin operations.
    ///
    /// One breaker admission decision, one origin-salted backoff
    /// schedule, and one in-flight-window slot cover each *attempt* on
    /// the whole group; the group write itself goes through
    /// [`DocumentSpace::write_documents`], which returns one result per
    /// entry. Outcomes stay per entry: successes are acknowledged in the
    /// journal as a batch (one compaction), transient failures stay
    /// pending for the group's next retry, and non-transient failures
    /// are re-queued immediately. Entries still pending when the retry
    /// budget (or deadline, or breaker) gives out are parked or
    /// re-queued exactly as the per-entry path would have done.
    fn flush_group(
        &self,
        origin: &str,
        group: Vec<(DocumentId, UserId, DirtyEntry)>,
        clock: &VirtualClock,
        report: &mut FlushReport,
    ) {
        report.attempted += group.len() as u64;
        report.batches += 1;
        let mut pending = group;
        if self.merge.is_some() {
            pending = self.route_conflicts_through_merge(pending, report);
            if pending.is_empty() {
                return;
            }
        }
        let started = clock.now();
        let deadline = self.resilience.fetch_deadline_micros;
        let mut backoff = BackoffSchedule::for_origin(&self.resilience, origin);
        let mut attempt = 0u32;
        loop {
            // One admission decision covers the whole group.
            if let Some(config) = &self.resilience.breaker {
                if let Admission::Reject { retry_after } =
                    self.breakers.admit(config, origin, clock.now())
                {
                    let error = PlacelessError::Unavailable {
                        source: origin.to_owned(),
                        retry_after: Some(retry_after),
                    };
                    for (doc, user, entry) in pending {
                        self.settle_flush_failure(doc, user, entry, error.clone(), report);
                    }
                    return;
                }
            }
            // One grouped origin operation per attempt, behind one
            // per-origin window slot (when configured).
            AtomicCacheStats::bump(&self.stats.flush_batches);
            let writes: Vec<BatchWrite> = pending
                .iter()
                .map(|(doc, user, entry)| BatchWrite {
                    user: *user,
                    doc: *doc,
                    data: entry.data.clone(),
                    // With a merge policy, rebasable deltas travel as ops
                    // and are applied server-side onto the origin's
                    // current content — concurrent writers through other
                    // caches are merged, not clobbered. Without one,
                    // payloads are byte-identical to the pre-merge cache.
                    ops: if self.merge.is_some() && rebasable(&entry.ops) {
                        entry.ops.clone()
                    } else {
                        Vec::new()
                    },
                })
                .collect();
            if let Some(window) = &self.window {
                window.acquire(origin);
            }
            let results = self.space.write_documents(&writes);
            if let Some(window) = &self.window {
                window.release(origin);
            }
            debug_assert_eq!(results.len(), pending.len());
            let mut acks: Vec<u64> = Vec::new();
            let mut transient: Vec<(DocumentId, UserId, DirtyEntry, PlacelessError)> = Vec::new();
            for ((doc, user, entry), result) in pending.drain(..).zip(results) {
                match result {
                    Ok(()) => {
                        AtomicCacheStats::bump(&self.stats.flushes);
                        AtomicCacheStats::bump(&self.stats.batched_writes);
                        report.flushed += 1;
                        if self.journal.is_some() {
                            if let Some(seq) = entry.seq {
                                acks.push(seq);
                            }
                        }
                        let key = EntryKey::Version(doc, user);
                        if self.parked.lock().remove(&key) {
                            self.parked_gauge.fetch_sub(1, Ordering::Relaxed);
                        }
                        self.invalidate_doc(doc);
                    }
                    Err(error) if error.is_transient() => {
                        transient.push((doc, user, entry, error));
                    }
                    Err(error) => self.settle_flush_failure(doc, user, entry, error, report),
                }
            }
            if let Some(journal) = &self.journal {
                if !acks.is_empty() {
                    // Acks are seq-precise exactly like the per-entry
                    // path, but the medium compacts once per batch.
                    journal.ack_batch(&acks);
                }
            }
            // One breaker record covers the batch attempt: the origin
            // either answered for the group or dropped (part of) it.
            if let Some(config) = &self.resilience.breaker {
                if transient.is_empty() {
                    self.breakers.record_success(config, origin);
                } else if self.breakers.record_failure(config, origin, clock.now()) {
                    AtomicCacheStats::bump(&self.stats.breaker_trips);
                }
            }
            if transient.is_empty() {
                return;
            }
            if attempt >= self.resilience.max_retries {
                for (doc, user, entry, error) in transient {
                    self.settle_flush_failure(doc, user, entry, error, report);
                }
                return;
            }
            // The largest `retry_after` hint among the group's transient
            // failures floors the backoff: the group retries as one, so
            // it waits for the slowest origin-reported recovery. Beyond
            // the schedule's horizon the group settles its failures now
            // instead of waiting out an advertised outage.
            let floor = transient
                .iter()
                .map(|(_, _, _, error)| crate::resilience::retry_floor(error))
                .max()
                .unwrap_or(0);
            if floor > self.resilience.hint_horizon_micros() {
                for (doc, user, entry, error) in transient {
                    self.settle_flush_failure(doc, user, entry, error, report);
                }
                return;
            }
            let delay = backoff.delay_micros(attempt).max(floor);
            if let Some(budget) = deadline {
                // Same deadline accounting as the per-entry retry loops:
                // the truncated wait is charged before reporting.
                let elapsed = clock.now().since(started);
                if elapsed + delay > budget {
                    clock.advance(budget.saturating_sub(elapsed));
                    let error = PlacelessError::Timeout {
                        source: origin.to_owned(),
                        elapsed_micros: clock.now().since(started),
                    };
                    for (doc, user, entry, _) in transient {
                        self.settle_flush_failure(doc, user, entry, error.clone(), report);
                    }
                    return;
                }
            }
            clock.advance(delay);
            AtomicCacheStats::bump(&self.stats.flush_retries);
            attempt += 1;
            pending = transient
                .into_iter()
                .map(|(doc, user, entry, _)| (doc, user, entry))
                .collect();
        }
    }

    /// Probes each entry's base epoch against the origin's current
    /// rendition and routes every conflict through the merge policy
    /// (merge configured; the grouped-flush path). Returns the entries
    /// that should still be written:
    ///
    /// * rebasable conflicts stay — their ops travel server-side and are
    ///   rebased onto the origin's current content by `write_documents`;
    /// * unmergeable conflicts resolved `KeepMine` stay as full-body
    ///   writes (the informed PR-4 overwrite);
    /// * unmergeable conflicts resolved `KeepTheirs` are dropped: their
    ///   journal record is acknowledged and the drop is reported.
    ///
    /// Entries with no base epoch, and entries whose origin is currently
    /// unreachable, pass through unassessed — the write attempt itself
    /// will surface any failure, and ops still rebase server-side.
    fn route_conflicts_through_merge(
        &self,
        entries: Vec<(DocumentId, UserId, DirtyEntry)>,
        report: &mut FlushReport,
    ) -> Vec<(DocumentId, UserId, DirtyEntry)> {
        let Some(policy) = &self.merge else {
            return entries;
        };
        let mut sigs: HashMap<(DocumentId, UserId), Option<Signature>> = HashMap::new();
        let mut kept = Vec::with_capacity(entries.len());
        for (doc, user, entry) in entries {
            if entry.epoch == NO_EPOCH {
                kept.push((doc, user, entry));
                continue;
            }
            // One probe per (doc, user) rendition, shared across retries
            // of the same flush via the memo map.
            let probed = *sigs.entry((doc, user)).or_insert_with(|| {
                self.space
                    .read_document(user, doc)
                    .ok()
                    .map(|(bytes, _)| ConcurrentStore::signature_of(&bytes))
            });
            let Some(origin_sig) = probed else {
                kept.push((doc, user, entry));
                continue;
            };
            if origin_sig == entry.epoch {
                kept.push((doc, user, entry));
                continue;
            }
            // The origin moved on while the write sat buffered: a flush-
            // time write conflict.
            AtomicCacheStats::bump(&self.stats.write_conflicts);
            report.merge.examined += 1;
            if rebasable(&entry.ops) {
                AtomicCacheStats::bump(&self.stats.conflicts_merged);
                for _ in &entry.ops {
                    AtomicCacheStats::bump(&self.stats.merge_rebases);
                }
                report.merge.merged += 1;
                report.merge.rebases += entry.ops.len() as u64;
                kept.push((doc, user, entry));
                continue;
            }
            let conflict = WriteConflict {
                doc,
                user,
                journal_epoch: entry.epoch,
                origin_signature: origin_sig,
            };
            match policy.resolve_unmergeable(&conflict) {
                ConflictResolution::KeepMine => {
                    report.merge.kept_mine += 1;
                    kept.push((doc, user, entry));
                }
                ConflictResolution::KeepTheirs => {
                    report.merge.kept_theirs += 1;
                    if let (Some(journal), Some(seq)) = (&self.journal, entry.seq) {
                        journal.ack(seq);
                    }
                    report.dropped.push((doc, user));
                }
            }
        }
        kept
    }

    /// The per-entry sibling of [`Self::route_conflicts_through_merge`]
    /// for the legacy unbatched flush path. The per-entry path has no
    /// grouped op write, so a rebasable conflict is rebased *cache-side*:
    /// the entry's data becomes the origin's current content with the
    /// ops folded in, and its epoch advances to match. Returns `false`
    /// when the entry was resolved by dropping it (`KeepTheirs`).
    fn settle_conflict_per_entry(
        &self,
        doc: DocumentId,
        user: UserId,
        entry: &mut DirtyEntry,
        report: &mut FlushReport,
    ) -> bool {
        let Some(policy) = &self.merge else {
            return true;
        };
        if entry.epoch == NO_EPOCH {
            return true;
        }
        let Ok((origin, _)) = self.space.read_document(user, doc) else {
            return true; // unreachable origin: the write attempt decides
        };
        let origin_sig = ConcurrentStore::signature_of(&origin);
        if origin_sig == entry.epoch {
            return true;
        }
        AtomicCacheStats::bump(&self.stats.write_conflicts);
        report.merge.examined += 1;
        if rebasable(&entry.ops) {
            entry.data = apply_all(&origin, &entry.ops);
            entry.epoch = origin_sig;
            AtomicCacheStats::bump(&self.stats.conflicts_merged);
            for _ in &entry.ops {
                AtomicCacheStats::bump(&self.stats.merge_rebases);
            }
            report.merge.merged += 1;
            report.merge.rebases += entry.ops.len() as u64;
            return true;
        }
        let conflict = WriteConflict {
            doc,
            user,
            journal_epoch: entry.epoch,
            origin_signature: origin_sig,
        };
        match policy.resolve_unmergeable(&conflict) {
            ConflictResolution::KeepMine => {
                report.merge.kept_mine += 1;
                true
            }
            ConflictResolution::KeepTheirs => {
                report.merge.kept_theirs += 1;
                if let (Some(journal), Some(seq)) = (&self.journal, entry.seq) {
                    journal.ack(seq);
                }
                report.dropped.push((doc, user));
                false
            }
        }
    }

    /// Settles one failed flush entry: re-queues the data (a concurrent
    /// newer write wins) and either parks it (journal configured and the
    /// failure transient — it stays journaled and dirty until a later
    /// flush finds the origin's breaker admitting probes again) or
    /// reports it re-queued with the error.
    fn settle_flush_failure(
        &self,
        doc: DocumentId,
        user: UserId,
        entry: DirtyEntry,
        error: PlacelessError,
        report: &mut FlushReport,
    ) {
        let key = EntryKey::Version(doc, user);
        self.requeue_dirty(key, entry);
        if self.journal.is_some() && error.is_transient() {
            if self.parked.lock().insert(key) {
                self.parked_gauge.fetch_add(1, Ordering::Relaxed);
                AtomicCacheStats::bump(&self.stats.writes_parked);
            }
            report.parked.push((doc, user));
        } else {
            report.requeued.push((doc, user, error));
        }
    }

    /// Puts a drained dirty entry back without clobbering a newer write
    /// that landed while the flush held no lock.
    fn requeue_dirty(&self, key: EntryKey, entry: DirtyEntry) {
        let mut shard = self.shard(key).lock();
        let vacant = !shard.dirty.contains_key(&key);
        if vacant {
            shard.dirty.insert(key, entry);
        }
        drop(shard);
        if vacant {
            self.dirty_gauge.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Returns how many writes are buffered (write-back mode).
    ///
    /// Reads an atomic gauge maintained at every dirty-map mutation —
    /// no shard lock is taken, so a sampling thread (the load engine's)
    /// never perturbs readers. Like [`Self::stats`], a moment-in-time
    /// approximation under concurrency, exact at quiescence.
    pub fn dirty_count(&self) -> usize {
        self.dirty_gauge.load(Ordering::Relaxed) as usize
    }

    /// Returns how many dirty entries are currently parked (their last
    /// flush exhausted its retries against an unreachable origin).
    /// Lock-free; see [`Self::dirty_count`] for the precision contract.
    pub fn parked_count(&self) -> usize {
        self.parked_gauge.load(Ordering::Relaxed) as usize
    }

    /// Returns how many reads are currently blocked waiting on another
    /// thread's in-flight computation (version and stage flights
    /// together). Zero whenever the cache is quiescent.
    pub fn waiting_reads(&self) -> u64 {
        self.version_flights.waiting() + self.stage_flights.waiting()
    }

    /// Returns how many origin fetch attempts are running right now (the
    /// gauge whose high-water mark is `CacheStats::inflight_peak`).
    pub fn inflight_fetches(&self) -> u64 {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Returns how many readers are currently parked waiting for a
    /// per-origin window slot — the brownout ladder's pressure gauge.
    /// Zero without a configured [`CacheConfigBuilder::max_inflight_per_origin`]
    /// window, and zero whenever the cache is quiescent.
    pub fn queued_fetches(&self) -> u64 {
        self.window
            .as_ref()
            .map(|window| window.queued_total())
            .unwrap_or(0)
    }

    /// Returns the configured write journal, if any.
    pub fn journal(&self) -> Option<&WriteJournal> {
        self.journal.as_ref()
    }

    /// Drops every resident version of `doc`, sweeping the shards one at
    /// a time (no two shard locks are ever held together).
    fn invalidate_doc(&self, doc: DocumentId) {
        // Hygiene, not correctness: both lease halves self-validate on use
        // (chain epoch, root verifier), but a doc-wide invalidation makes
        // them unlikely to validate again — free the memory now.
        self.leases.lock().remove(&doc);
        for mutex in self.shards.iter() {
            let mut shard = mutex.lock();
            let keys: Vec<EntryKey> = shard
                .sigs
                .keys()
                .filter(|key| key.doc() == Some(doc))
                .copied()
                .collect();
            for key in keys {
                self.drop_entry(&mut shard, key);
            }
        }
    }

    fn handle_invalidation(&self, invalidation: &Invalidation) {
        match *invalidation {
            // User-scoped invalidations resolve to exactly one key, so
            // only that key's shard is locked.
            Invalidation::UserDocument(doc, user) => {
                let key = EntryKey::Version(doc, user);
                let mut shard = self.shard(key).lock();
                if self.drop_entry(&mut shard, key) {
                    AtomicCacheStats::bump(&self.stats.notifier_invalidations);
                }
            }
            Invalidation::Document(doc) => {
                self.leases.lock().remove(&doc);
                for mutex in self.shards.iter() {
                    let mut shard = mutex.lock();
                    let keys: Vec<EntryKey> = shard
                        .sigs
                        .keys()
                        .filter(|key| key.doc() == Some(doc))
                        .copied()
                        .collect();
                    for key in keys {
                        if self.drop_entry(&mut shard, key) {
                            AtomicCacheStats::bump(&self.stats.notifier_invalidations);
                        }
                    }
                }
            }
        }
    }
}

/// Bus subscription adapter holding a weak handle so dropping the cache
/// tears down the subscription naturally.
struct CacheSink {
    cache: Weak<DocumentCache>,
    id: CacheId,
}

impl InvalidationSink for CacheSink {
    fn cache_id(&self) -> CacheId {
        self.id
    }

    fn invalidate(&self, invalidation: &Invalidation) {
        if let Some(cache) = self.cache.upgrade() {
            cache.handle_invalidation(invalidation);
        }
    }

    fn invalidate_seq(&self, seq: u64, invalidation: &Invalidation) {
        if let Some(cache) = self.cache.upgrade() {
            cache.note_sequence(seq);
            cache.handle_invalidation(invalidation);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use placeless_core::prelude::*;
    use placeless_simenv::VirtualClock;

    const ALICE: UserId = UserId(1);
    const BOB: UserId = UserId(2);

    fn setup(
        content: &str,
        fetch_cost: u64,
    ) -> (Arc<DocumentSpace>, Arc<MemoryProvider>, DocumentId) {
        let clock = VirtualClock::new();
        let space = DocumentSpace::with_middleware_cost(clock, LatencyModel::FREE);
        let provider = MemoryProvider::new("t", content.to_owned(), fetch_cost);
        let doc = space.create_document(ALICE, provider.clone());
        (space, provider, doc)
    }

    fn quiet_config() -> CacheConfig {
        CacheConfig {
            local_latency: LatencyModel::FREE,
            ..CacheConfig::default()
        }
    }

    #[test]
    fn miss_then_hit() {
        let (space, _provider, doc) = setup("content", 1_000);
        let cache = DocumentCache::new(space, quiet_config());
        assert_eq!(
            cache.read(ALICE, doc).expect("read must succeed"),
            "content"
        );
        assert_eq!(
            cache.read(ALICE, doc).expect("read must succeed"),
            "content"
        );
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.hits), (1, 1));
        assert!(cache.contains(ALICE, doc));
    }

    #[test]
    fn hits_are_much_faster_than_misses() {
        let (space, _provider, doc) = setup("content", 50_000);
        let clock = space.clock().clone();
        let cache = DocumentCache::new(space, quiet_config());
        let t0 = clock.now();
        cache.read(ALICE, doc).expect("read must succeed");
        let miss_time = clock.now().since(t0);
        let t1 = clock.now();
        cache.read(ALICE, doc).expect("read must succeed");
        let hit_time = clock.now().since(t1);
        assert!(
            hit_time * 10 < miss_time,
            "hit {hit_time}µs vs miss {miss_time}µs"
        );
    }

    #[test]
    fn verifier_catches_out_of_band_change() {
        let (space, provider, doc) = setup("v1", 100);
        let cache = DocumentCache::new(space, quiet_config());
        assert_eq!(cache.read(ALICE, doc).expect("read must succeed"), "v1");
        provider.set_out_of_band("v2");
        assert_eq!(
            cache.read(ALICE, doc).expect("read must succeed"),
            "v2",
            "stale entry refilled"
        );
        let stats = cache.stats();
        assert_eq!(stats.verifier_invalidations, 1);
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn verifiers_can_be_disabled() {
        let (space, provider, doc) = setup("v1", 100);
        let cache = DocumentCache::new(
            space,
            CacheConfig {
                run_verifiers: false,
                local_latency: LatencyModel::FREE,
                ..CacheConfig::default()
            },
        );
        cache.read(ALICE, doc).expect("read must succeed");
        provider.set_out_of_band("v2");
        // Without verifiers (and no notifier for out-of-band changes) the
        // stale content is served — the consistency/latency trade-off.
        assert_eq!(cache.read(ALICE, doc).expect("read must succeed"), "v1");
    }

    #[test]
    fn bus_invalidation_drops_entries() {
        let (space, _provider, doc) = setup("v1", 100);
        let cache = DocumentCache::new(space.clone(), quiet_config());
        cache.read(ALICE, doc).expect("read must succeed");
        assert!(cache.contains(ALICE, doc));
        space.bus().post(Invalidation::Document(doc));
        assert!(!cache.contains(ALICE, doc));
        assert_eq!(cache.stats().notifier_invalidations, 1);
    }

    #[test]
    fn user_scoped_invalidation_spares_others() {
        let (space, _provider, doc) = setup("v1", 100);
        space
            .add_reference(BOB, doc)
            .expect("reference must attach");
        let cache = DocumentCache::new(space.clone(), quiet_config());
        cache.read(ALICE, doc).expect("read must succeed");
        cache.read(BOB, doc).expect("read must succeed");
        space.bus().post(Invalidation::UserDocument(doc, ALICE));
        assert!(!cache.contains(ALICE, doc));
        assert!(cache.contains(BOB, doc));
    }

    #[test]
    fn identical_chains_share_bytes() {
        let (space, _provider, doc) = setup("shared content", 100);
        space
            .add_reference(BOB, doc)
            .expect("reference must attach");
        let cache = DocumentCache::new(space, quiet_config());
        cache.read(ALICE, doc).expect("read must succeed");
        cache.read(BOB, doc).expect("read must succeed");
        let (physical, logical) = cache.resident_bytes();
        assert_eq!(physical, 14);
        assert_eq!(logical, 28);
        assert_eq!(cache.stats().shared_fills, 1);
    }

    #[test]
    fn sharing_crosses_shard_boundaries() {
        // Same bytes for many users land in different shards but are
        // stored once: the content store is global.
        let (space, _provider, doc) = setup("cross-shard bytes", 100);
        let users: Vec<UserId> = (2..=9).map(UserId).collect();
        for &user in &users {
            space
                .add_reference(user, doc)
                .expect("reference must attach");
        }
        let cache = DocumentCache::new(
            space,
            CacheConfig {
                shards: 8,
                local_latency: LatencyModel::FREE,
                ..CacheConfig::default()
            },
        );
        cache.read(ALICE, doc).expect("read must succeed");
        for &user in &users {
            cache.read(user, doc).expect("read must succeed");
        }
        let (physical, logical) = cache.resident_bytes();
        assert_eq!(physical, 17);
        assert_eq!(logical, 17 * 9);
        assert_eq!(cache.stats().shared_fills, 8);
    }

    #[test]
    fn shard_placement_is_deterministic() {
        let (space, _provider, doc) = setup("x", 0);
        let cache_a = DocumentCache::new(
            space.clone(),
            CacheConfig {
                shards: 8,
                ..quiet_config()
            },
        );
        let cache_b = DocumentCache::new(
            space,
            CacheConfig {
                shards: 8,
                ..quiet_config()
            },
        );
        for d in 0..64u64 {
            for u in 1..4u64 {
                let key = EntryKey::Version(DocumentId(d), UserId(u));
                assert_eq!(cache_a.shard_index(key), cache_b.shard_index(key));
            }
        }
        let spread: std::collections::HashSet<usize> = (0..64u64)
            .map(|d| cache_a.shard_index(EntryKey::Version(DocumentId(d), UserId(1))))
            .collect();
        assert!(
            spread.len() >= 4,
            "64 docs hit only {} of 8 shards",
            spread.len()
        );
        let _ = doc;
    }

    #[test]
    fn capacity_forces_evictions() {
        let clock = VirtualClock::new();
        let space = DocumentSpace::with_middleware_cost(clock, LatencyModel::FREE);
        let mut docs = Vec::new();
        for i in 0..10u8 {
            // Distinct bodies, or signature sharing would dedup them all.
            let mut body = vec![b'x'; 100];
            body[0] = b'0' + i;
            let provider = MemoryProvider::new(&format!("d{i}"), body, 100);
            docs.push(space.create_document(ALICE, provider));
        }
        let cache = DocumentCache::new(
            space,
            CacheConfig {
                capacity_bytes: 350,
                local_latency: LatencyModel::FREE,
                ..CacheConfig::default()
            },
        );
        for &doc in &docs {
            cache.read(ALICE, doc).expect("read must succeed");
        }
        let (physical, _) = cache.resident_bytes();
        assert!(physical <= 350, "capacity respected, got {physical}");
        assert!(cache.stats().evictions >= 7);
        assert_eq!(cache.len() as u64 * 100, physical);
    }

    #[test]
    fn write_through_updates_source_and_invalidates() {
        let (space, provider, doc) = setup("old", 100);
        let cache = DocumentCache::new(space, quiet_config());
        cache.read(ALICE, doc).expect("read must succeed");
        cache
            .write(ALICE, doc, b"new")
            .expect("write-through must succeed");
        assert_eq!(provider.content(), "new");
        assert!(!cache.contains(ALICE, doc), "own entry invalidated");
        assert_eq!(cache.read(ALICE, doc).expect("read must succeed"), "new");
    }

    #[test]
    fn write_back_buffers_until_flush() {
        let (space, provider, doc) = setup("old", 100);
        let cache = DocumentCache::new(
            space,
            CacheConfig {
                write_mode: WriteMode::Back,
                local_latency: LatencyModel::FREE,
                ..CacheConfig::default()
            },
        );
        cache
            .write(ALICE, doc, b"buffered")
            .expect("write-back must buffer");
        assert_eq!(provider.content(), "old", "not yet flushed");
        assert_eq!(cache.dirty_count(), 1);
        // The writer reads their own buffered data.
        assert_eq!(
            cache.read(ALICE, doc).expect("read must succeed"),
            "buffered"
        );
        let _ = cache.flush().expect("flush must push every dirty entry");
        assert_eq!(provider.content(), "buffered");
        assert_eq!(cache.dirty_count(), 0);
        assert_eq!(cache.stats().flushes, 1);
    }

    #[test]
    fn journal_records_writes_and_flush_acks_prune_it() {
        let (space, provider, doc) = setup("v0", 100);
        let journal = WriteJournal::new(placeless_simenv::StableStore::new());
        let cache = DocumentCache::new(
            space,
            CacheConfig {
                write_mode: WriteMode::Back,
                journal: Some(journal.clone()),
                ..quiet_config()
            },
        );
        cache
            .write(ALICE, doc, b"draft")
            .expect("write must buffer");
        assert_eq!(cache.stats().journal_appends, 1);
        assert_eq!(journal.len(), 1, "journaled before the flush");
        assert!(!journal.store().is_empty());
        let report = cache.flush().expect("flush must succeed");
        assert!(report.is_clean());
        assert_eq!((report.attempted, report.flushed), (1, 1));
        assert!(journal.is_empty(), "ack prunes the flushed record");
        assert!(journal.store().is_empty(), "ack compacts the medium");
        assert_eq!(provider.content(), "draft");
    }

    #[test]
    fn recover_replays_journal_into_dirty_queue() {
        let (space, provider, doc) = setup("v0", 100);
        let medium = placeless_simenv::StableStore::new();
        {
            let cache = DocumentCache::new(
                space.clone(),
                CacheConfig {
                    write_mode: WriteMode::Back,
                    journal: Some(WriteJournal::new(medium.clone())),
                    ..quiet_config()
                },
            );
            cache
                .write(ALICE, doc, b"buffered")
                .expect("write must buffer");
            // Crash: every in-memory structure dies unflushed; only the
            // stable medium survives.
        }
        let (journal, outcome) = WriteJournal::open(medium);
        assert_eq!(outcome.records.len(), 1);
        let (cache, report) = DocumentCache::recover(
            space,
            CacheConfig {
                write_mode: WriteMode::Back,
                journal: Some(journal),
                ..quiet_config()
            },
            None,
        );
        assert_eq!((report.replayed, report.requeued), (1, 1));
        assert!(report.conflicts.is_empty());
        assert_eq!(cache.dirty_count(), 1);
        assert_eq!(cache.stats().journal_replays, 1);
        assert_eq!(
            cache.read(ALICE, doc).expect("read must succeed"),
            "buffered",
            "the recovered write is the writer's view again"
        );
        let _ = cache.flush().expect("flush must succeed");
        assert_eq!(provider.content(), "buffered");
    }

    #[test]
    fn uncacheable_content_is_never_stored() {
        struct LiveProvider;
        impl BitProvider for LiveProvider {
            fn describe(&self) -> String {
                "live".into()
            }
            fn open_input(&self, clock: &VirtualClock) -> Result<Box<dyn InputStream>> {
                Ok(Box::new(MemoryInput::new(Bytes::from(format!(
                    "frame@{}",
                    clock.advance(1).as_micros()
                )))))
            }
            fn open_output(&self, _clock: &VirtualClock) -> Result<Box<dyn OutputStream>> {
                Err(PlacelessError::ReadOnly(DocumentId(0)))
            }
            fn make_verifier(
                &self,
                _clock: &VirtualClock,
            ) -> Option<Box<dyn placeless_core::verifier::Verifier>> {
                None
            }
            fn fetch_cost_micros(&self) -> u64 {
                10
            }
            fn cacheability_vote(&self) -> Cacheability {
                Cacheability::Uncacheable
            }
        }
        let clock = VirtualClock::new();
        let space = DocumentSpace::with_middleware_cost(clock, LatencyModel::FREE);
        let doc = space.create_document(ALICE, Arc::new(LiveProvider));
        let cache = DocumentCache::new(space, quiet_config());
        let a = cache.read(ALICE, doc).expect("read must succeed");
        let b = cache.read(ALICE, doc).expect("read must succeed");
        assert_ne!(a, b, "every read reaches the live source");
        assert!(cache.is_empty());
        assert_eq!(cache.stats().uncacheable_reads, 2);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn latency_and_verifier_accounting() {
        let (space, _provider, doc) = setup("abcdef", 10_000);
        let clock = space.clock().clone();
        let cache = DocumentCache::new(space, quiet_config());
        cache.read(ALICE, doc).expect("read must succeed");
        cache.read(ALICE, doc).expect("read must succeed");
        cache.read(ALICE, doc).expect("read must succeed");
        let stats = cache.stats();
        // The provider's mtime verifier costs 2 µs per hit.
        assert_eq!(stats.verify_micros, 4);
        assert!(stats.mean_miss_ms().expect("misses were recorded") >= 10.0);
        assert!(stats.mean_hit_ms().expect("hits were recorded") < 1.0);
        assert!(clock.now().as_micros() >= 10_000);
    }

    #[test]
    fn writes_are_counted_per_mode() {
        let (space, _provider, doc) = setup("x", 0);
        let through = DocumentCache::new(space.clone(), quiet_config());
        through
            .write(ALICE, doc, b"a")
            .expect("write-through must succeed");
        through
            .write(ALICE, doc, b"b")
            .expect("write-through must succeed");
        assert_eq!(through.stats().writes, 2);
        assert_eq!(through.stats().flushes, 0);

        let back = DocumentCache::new(
            space,
            CacheConfig {
                write_mode: WriteMode::Back,
                local_latency: LatencyModel::FREE,
                ..CacheConfig::default()
            },
        );
        back.write(ALICE, doc, b"c")
            .expect("write-back must buffer");
        back.write(ALICE, doc, b"d")
            .expect("write-back must buffer");
        let _ = back.flush().expect("flush must push every dirty entry");
        let stats = back.stats();
        assert_eq!(stats.writes, 2);
        assert_eq!(stats.flushes, 1, "coalesced into one flush");
    }

    /// A minimal signed tagging transform for the plan-lease tests.
    struct LeaseTag;
    impl ActiveProperty for LeaseTag {
        fn name(&self) -> &str {
            "lease-tag"
        }
        fn interests(&self) -> Interests {
            Interests::of(&[EventKind::GetInputStream])
        }
        fn execution_cost_micros(&self) -> u64 {
            50
        }
        fn wrap_input(
            &self,
            _ctx: &PathCtx<'_>,
            _report: &mut PathReport,
            inner: Box<dyn InputStream>,
        ) -> Result<Box<dyn InputStream>> {
            Ok(Box::new(TransformingInput::new(
                inner,
                Box::new(|b| {
                    let mut v = b.to_vec();
                    v.extend_from_slice(b"[t]");
                    Ok(Bytes::from(v))
                }),
            )))
        }
        fn transform_token(&self, _ctx: &PathCtx<'_>) -> Option<Vec<u8>> {
            Some(b"t".to_vec())
        }
    }

    fn lease_setup() -> (
        Arc<DocumentSpace>,
        Arc<MemoryProvider>,
        DocumentId,
        VirtualClock,
    ) {
        let clock = VirtualClock::new();
        let space = DocumentSpace::with_middleware_cost(clock.clone(), LatencyModel::new(300, 0));
        let provider = MemoryProvider::new("t", "body", 1_000);
        let doc = space.create_document(ALICE, provider.clone());
        space.add_reference(BOB, doc).expect("reference");
        space
            .attach_active(Scope::Universal, doc, Arc::new(LeaseTag))
            .expect("attach");
        (space, provider, doc, clock)
    }

    fn lease_config() -> CacheConfig {
        CacheConfig {
            local_latency: LatencyModel::FREE,
            stage_cache: true,
            ..CacheConfig::default()
        }
    }

    #[test]
    fn plan_lease_serves_later_staged_walks_without_refetching() {
        let (space, _provider, doc, clock) = lease_setup();
        let cache = DocumentCache::new(space, lease_config());

        assert_eq!(cache.read(ALICE, doc).expect("first read"), "body[t]");
        assert_eq!(cache.stats().root_reuses, 0, "cold walk must fetch");

        // Bob's first read is a version miss, but the whole staged walk is
        // served off the leases: the chain lease saves one hop, the
        // verified root signature elides the provider fetch, and the tag
        // stage is adopted from the intermediate store.
        let t0 = clock.now();
        assert_eq!(cache.read(BOB, doc).expect("later read"), "body[t]");
        let later = clock.now().since(t0);
        let stats = cache.stats();
        assert_eq!(stats.root_reuses, 1, "root fetch elided via the lease");
        assert_eq!(stats.stage_hits, 1, "tag stage adopted, not executed");
        assert!(
            later < 1_000,
            "later walk ({later} us) must not pay the 1000 us provider fetch"
        );
    }

    #[test]
    fn stale_root_lease_refetches_fresh_provider_bytes() {
        let (space, provider, doc, _clock) = lease_setup();
        space.add_reference(UserId(3), doc).expect("reference");
        let cache = DocumentCache::new(space, lease_config());

        assert_eq!(cache.read(ALICE, doc).expect("first read"), "body[t]");
        assert_eq!(cache.read(BOB, doc).expect("leased read"), "body[t]");
        assert_eq!(cache.stats().root_reuses, 1);

        // An out-of-band provider change fires no events; only the lease's
        // verifier can catch it — and must, on the very next walk.
        provider.set_out_of_band("body2");
        assert_eq!(
            cache.read(UserId(3), doc).expect("post-change read"),
            "body2[t]",
            "stale root lease must never anchor a walk on old bytes"
        );
        let stats = cache.stats();
        assert_eq!(
            stats.root_reuses, 1,
            "the invalidated root lease is not reused"
        );
    }

    #[test]
    fn cacheable_with_events_forwards_cache_reads() {
        use parking_lot::Mutex as PMutex;
        struct Audit {
            reads: Arc<PMutex<u64>>,
        }
        impl ActiveProperty for Audit {
            fn name(&self) -> &str {
                "audit"
            }
            fn interests(&self) -> Interests {
                Interests::of(&[EventKind::GetInputStream, EventKind::CacheRead])
            }
            fn wrap_input(
                &self,
                _ctx: &PathCtx<'_>,
                report: &mut PathReport,
                inner: Box<dyn InputStream>,
            ) -> Result<Box<dyn InputStream>> {
                report.vote(Cacheability::CacheableWithEvents);
                *self.reads.lock() += 1;
                Ok(inner)
            }
            fn on_event(&self, _ctx: &EventCtx<'_>, _event: &DocumentEvent) -> Result<()> {
                *self.reads.lock() += 1;
                Ok(())
            }
        }
        let (space, _provider, doc) = setup("audited", 100);
        let reads = Arc::new(PMutex::new(0u64));
        space
            .attach_active(
                Scope::Universal,
                doc,
                Arc::new(Audit {
                    reads: reads.clone(),
                }),
            )
            .expect("property must attach to an existing document");
        let cache = DocumentCache::new(space, quiet_config());
        cache.read(ALICE, doc).expect("read must succeed"); // miss: wrap_input counts 1
        cache.read(ALICE, doc).expect("read must succeed"); // hit: forwarded event counts 1
        cache.read(ALICE, doc).expect("read must succeed"); // hit: forwarded event counts 1
        assert_eq!(*reads.lock(), 3, "audit saw every read despite caching");
        assert_eq!(cache.stats().events_forwarded, 2);
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn builder_mirrors_struct_config() {
        let config = CacheConfig::builder()
            .capacity_bytes(4_096)
            .policy_name("LFU")
            .expect("LFU is a known policy")
            .run_verifiers(false)
            .write_mode(WriteMode::Back)
            .local_latency(LatencyModel::FREE)
            .prefetch(PrefetchConfig::up_to(3))
            .shards(2)
            .merge(MergePolicy::new())
            .build();
        assert_eq!(config.capacity_bytes, 4_096);
        assert_eq!(config.policy.name(), "lfu");
        assert!(!config.run_verifiers);
        assert_eq!(config.write_mode, WriteMode::Back);
        assert_eq!(config.shards, 2);
        assert!(config.prefetch.enabled);
        assert!(config.merge.is_some());
        assert!(CacheConfig::default().merge.is_none(), "merge defaults off");
        assert!(CacheConfig::builder().policy_name("bogus").is_err());

        let (space, _provider, doc) = setup("built", 100);
        let cache = DocumentCache::new(space, config);
        assert_eq!(cache.shard_count(), 2);
        cache
            .write(ALICE, doc, b"dirty")
            .expect("write-back must buffer");
        assert_eq!(
            cache.read(ALICE, doc).expect("read must succeed"),
            "dirty",
            "write-back took"
        );
    }

    #[test]
    fn write_op_buffers_a_mergeable_delta_and_flushes_it() {
        use placeless_core::op::DocOp;
        let (space, provider, doc) = setup("base;", 100);
        let journal = WriteJournal::new(placeless_simenv::StableStore::new());
        let cache = DocumentCache::new(
            space,
            CacheConfig {
                write_mode: WriteMode::Back,
                journal: Some(journal.clone()),
                merge: Some(MergePolicy::new()),
                ..quiet_config()
            },
        );
        cache.read(ALICE, doc).expect("read must succeed");
        cache
            .write_op(ALICE, doc, DocOp::Append(Bytes::from("a1;")))
            .expect("op write must buffer");
        cache
            .write_op(ALICE, doc, DocOp::Append(Bytes::from("a2;")))
            .expect("op write must buffer");
        // The buffered view materializes the accumulated delta.
        assert_eq!(
            cache.read(ALICE, doc).expect("read must succeed"),
            "base;a1;a2;"
        );
        // The journal record carries both ops with a causal sequence.
        let records = journal.live_records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].ops.len(), 2);
        assert_eq!(records[0].writer_seq, 2);
        assert!(records[0].rebasable());
        let report = cache.flush().expect("flush must run");
        assert!(report.is_clean(), "{report}");
        assert_eq!(provider.content(), "base;a1;a2;");
        assert!(journal.is_empty(), "flush acks the op record");
    }

    #[test]
    fn plain_write_supersedes_the_op_delta() {
        use placeless_core::op::DocOp;
        let (space, _provider, doc) = setup("base", 100);
        let journal = WriteJournal::new(placeless_simenv::StableStore::new());
        let cache = DocumentCache::new(
            space,
            CacheConfig {
                write_mode: WriteMode::Back,
                journal: Some(journal.clone()),
                ..quiet_config()
            },
        );
        cache
            .write_op(ALICE, doc, DocOp::Append(Bytes::from("!")))
            .expect("op write must buffer");
        assert!(!journal.live_records()[0].ops.is_empty());
        cache
            .write(ALICE, doc, b"rewritten")
            .expect("write buffers");
        let records = journal.live_records();
        assert_eq!(records.len(), 1, "the plain write supersedes the delta");
        assert!(records[0].ops.is_empty());
        assert_eq!(records[0].data, "rewritten");
        // A later op over the pending snapshot folds it in as a
        // full-body op: correct view, deliberately unmergeable.
        cache
            .write_op(ALICE, doc, DocOp::Append(Bytes::from("?")))
            .expect("op write must buffer");
        assert_eq!(
            cache.read(ALICE, doc).expect("read must succeed"),
            "rewritten?"
        );
        assert!(!journal.live_records()[0].rebasable());
    }

    #[test]
    fn write_op_through_mode_applies_to_current_content() {
        use placeless_core::op::DocOp;
        let (space, provider, doc) = setup("hello world", 100);
        let cache = DocumentCache::new(space.clone(), quiet_config());
        cache
            .write_op(
                ALICE,
                doc,
                DocOp::ReplaceRange {
                    start: 6,
                    end: 11,
                    data: Bytes::from("there"),
                },
            )
            .expect("through-mode op writes immediately");
        assert_eq!(provider.content(), "hello there");
        cache
            .write_op(
                ALICE,
                doc,
                DocOp::SetProperty {
                    name: "mood".into(),
                    value: placeless_core::content::PropertyValue::Str("calm".into()),
                },
            )
            .expect("property op attaches");
        let description = space.describe(ALICE, doc).expect("describe");
        assert!(
            description.personal.iter().any(|p| p.name == "mood"),
            "SetProperty attached a personal property"
        );
    }

    #[test]
    fn zero_shards_means_auto() {
        let (space, _provider, _doc) = setup("auto", 0);
        let cache = DocumentCache::new(space, quiet_config());
        assert_eq!(cache.shard_count(), default_shard_count());
        assert!(cache.shard_count() >= 1);
    }

    #[test]
    fn multi_shard_cache_behaves_like_single_shard() {
        // The same single-threaded workload through 1 and 8 shards must
        // agree on every outcome that does not depend on victim choice.
        let run = |shards: usize| {
            let clock = VirtualClock::new();
            let space = DocumentSpace::with_middleware_cost(clock, LatencyModel::FREE);
            let mut docs = Vec::new();
            for i in 0..12u8 {
                let provider = MemoryProvider::new(&format!("m{i}"), format!("body {i}"), 100);
                docs.push(space.create_document(ALICE, provider));
            }
            let cache = DocumentCache::new(
                space.clone(),
                CacheConfig {
                    shards,
                    local_latency: LatencyModel::FREE,
                    ..CacheConfig::default()
                },
            );
            for &doc in &docs {
                cache.read(ALICE, doc).expect("read must succeed");
                cache.read(ALICE, doc).expect("read must succeed");
            }
            space.bus().post(Invalidation::Document(docs[0]));
            let stats = cache.stats();
            (
                stats.hits,
                stats.misses,
                stats.notifier_invalidations,
                cache.len(),
                cache.resident_bytes(),
            )
        };
        assert_eq!(run(1), run(8));
    }
}
