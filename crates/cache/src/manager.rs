//! The document cache manager.
//!
//! A [`DocumentCache`] interposes between an application and the Placeless
//! middleware (the paper's "application-level cache"). It implements the
//! full §3 design:
//!
//! * entries are tagged `(document, user)` and deduplicated by MD5 content
//!   signature ([`crate::keys::SharedStore`]);
//! * **verifiers** shipped by the read path run on every hit, trading hit
//!   latency for consistency with conditions outside Placeless control;
//! * **notifiers** deliver invalidations through the
//!   [`placeless_core::notifier::InvalidationBus`] for changes inside
//!   Placeless control;
//! * the **cacheability indicator** is honored: `Uncacheable` content is
//!   never stored, and `CacheableWithEvents` hits forward the operation
//!   event so audit-like properties still fire;
//! * the replacement policy (Greedy-Dual-Size by default) consumes the
//!   **replacement costs** accumulated along the read path;
//! * writes run **write-through** or **write-back**.

use crate::entry::EntryMeta;
use crate::keys::SharedStore;
use crate::prefetch::PrefetchConfig;
use crate::policy::{EntryKey, GreedyDualSize, ReplacementPolicy};
use crate::stats::CacheStats;
use bytes::Bytes;
use parking_lot::Mutex;
use placeless_core::cacheability::Cacheability;
use placeless_core::error::Result;
use placeless_core::event::EventKind;
use placeless_core::id::{CacheId, DocumentId, UserId};
use placeless_core::notifier::{Invalidation, InvalidationSink};
use placeless_core::space::DocumentSpace;
use placeless_core::verifier::{run_all, Validity};
use placeless_simenv::{LatencyModel, Link, Stopwatch};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

static NEXT_CACHE_ID: AtomicU64 = AtomicU64::new(0);

/// How writes reach the middleware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteMode {
    /// Forward every write immediately.
    Through,
    /// Buffer writes locally; [`DocumentCache::flush`] pushes them.
    Back,
}

/// Cache construction parameters.
pub struct CacheConfig {
    /// Capacity in *physical* (deduplicated) bytes.
    pub capacity_bytes: u64,
    /// Replacement policy; defaults to Greedy-Dual-Size.
    pub policy: Box<dyn ReplacementPolicy>,
    /// Whether to run verifiers on hits (disable to measure a
    /// notifier-only configuration).
    pub run_verifiers: bool,
    /// Write handling.
    pub write_mode: WriteMode,
    /// Cost of serving a hit from local storage.
    pub local_latency: LatencyModel,
    /// Collection prefetching (§5 related-documents mechanism).
    pub prefetch: PrefetchConfig,
    /// The network path between the application and this cache, if the
    /// cache is not co-located with the application — the prototype "also
    /// experimented with caches co-located with the Placeless server".
    /// Charged on every served read.
    pub access_link: Option<Link>,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            capacity_bytes: 16 * 1024 * 1024,
            policy: Box::new(GreedyDualSize::new()),
            run_verifiers: true,
            write_mode: WriteMode::Through,
            local_latency: LatencyModel::new(50, 5),
            prefetch: PrefetchConfig::OFF,
            access_link: None,
        }
    }
}

struct Inner {
    store: SharedStore,
    meta: HashMap<EntryKey, EntryMeta>,
    policy: Box<dyn ReplacementPolicy>,
    dirty: HashMap<EntryKey, Bytes>,
    stats: CacheStats,
}

impl Inner {
    fn drop_entry(&mut self, key: EntryKey) -> bool {
        let existed = self.store.remove(key);
        self.meta.remove(&key);
        self.policy.on_remove(key);
        existed
    }
}

/// An application-level cache over a [`DocumentSpace`].
pub struct DocumentCache {
    id: CacheId,
    space: Arc<DocumentSpace>,
    capacity_bytes: u64,
    run_verifiers: bool,
    write_mode: WriteMode,
    local_latency: LatencyModel,
    prefetch: PrefetchConfig,
    access_link: Option<Link>,
    inner: Mutex<Inner>,
}

impl DocumentCache {
    /// Creates a cache over `space` and subscribes it to the space's
    /// invalidation bus.
    pub fn new(space: Arc<DocumentSpace>, config: CacheConfig) -> Arc<Self> {
        let cache = Arc::new(Self {
            id: CacheId(NEXT_CACHE_ID.fetch_add(1, Ordering::Relaxed)),
            space,
            capacity_bytes: config.capacity_bytes,
            run_verifiers: config.run_verifiers,
            write_mode: config.write_mode,
            local_latency: config.local_latency,
            prefetch: config.prefetch,
            access_link: config.access_link,
            inner: Mutex::new(Inner {
                store: SharedStore::new(),
                meta: HashMap::new(),
                policy: config.policy,
                dirty: HashMap::new(),
                stats: CacheStats::default(),
            }),
        });
        cache.space.bus().subscribe(Arc::new(CacheSink {
            cache: Arc::downgrade(&cache),
            id: cache.id,
        }));
        cache
    }

    /// Creates a cache with the default configuration.
    pub fn with_defaults(space: Arc<DocumentSpace>) -> Arc<Self> {
        Self::new(space, CacheConfig::default())
    }

    /// Returns this cache's id.
    pub fn id(&self) -> CacheId {
        self.id
    }

    /// Returns a snapshot of the statistics.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats
    }

    /// Returns the number of resident `(document, user)` entries.
    pub fn len(&self) -> usize {
        self.inner.lock().meta.len()
    }

    /// Returns `true` if no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `(physical, logical)` resident bytes; the gap is what
    /// signature sharing saved.
    pub fn resident_bytes(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.store.physical_bytes(), inner.store.logical_bytes())
    }

    /// Returns `true` if `(doc, user)` is resident.
    pub fn contains(&self, user: UserId, doc: DocumentId) -> bool {
        self.inner.lock().meta.contains_key(&(doc, user))
    }

    /// Reads a document for `user`, serving from the cache when possible.
    pub fn read(&self, user: UserId, doc: DocumentId) -> Result<Bytes> {
        let key = (doc, user);
        let clock = self.space.clock().clone();
        let watch = Stopwatch::start(&clock);

        // Dirty write-back data is the freshest view for its writer.
        {
            let inner = self.inner.lock();
            if let Some(dirty) = inner.dirty.get(&key) {
                return Ok(dirty.clone());
            }
        }

        // Hit path.
        enum HitOutcome {
            Serve(Bytes, bool),
            Miss,
        }
        let outcome = {
            let mut inner = self.inner.lock();
            if inner.meta.contains_key(&key) {
                let verdict = if self.run_verifiers {
                    let meta = inner.meta.get(&key).expect("checked above");
                    let (verdict, probe_cost) = run_all(&meta.verifiers, &clock);
                    clock.advance(probe_cost);
                    inner.stats.verify_micros += probe_cost;
                    verdict
                } else {
                    Validity::Valid
                };
                match verdict {
                    Validity::Valid => {
                        let bytes = inner.store.get(key).expect("meta implies content");
                        let meta = inner.meta.get_mut(&key).expect("checked above");
                        meta.hits += 1;
                        let was_prefetched = meta.prefetched;
                        let forward = meta.cacheability.requires_event_forwarding();
                        inner.policy.on_hit(key);
                        if was_prefetched {
                            inner.stats.prefetch_hits += 1;
                        }
                        self.local_latency.charge(&clock, bytes.len() as u64);
                        inner.stats.hits += 1;
                        inner.stats.hit_micros += watch.elapsed_micros();
                        HitOutcome::Serve(bytes, forward)
                    }
                    Validity::Replace(bytes) => {
                        // Refresh the entry in place and serve.
                        let size = bytes.len() as u64;
                        let (_, shared) = inner.store.insert(key, bytes.clone());
                        if shared {
                            inner.stats.shared_fills += 1;
                        }
                        let forward = {
                            let meta = inner.meta.get_mut(&key).expect("checked above");
                            meta.size = size;
                            meta.filled_at = clock.now();
                            meta.hits += 1;
                            meta.cacheability.requires_event_forwarding()
                        };
                        inner.policy.on_hit(key);
                        self.local_latency.charge(&clock, size);
                        inner.stats.verifier_replacements += 1;
                        inner.stats.hits += 1;
                        inner.stats.hit_micros += watch.elapsed_micros();
                        HitOutcome::Serve(bytes, forward)
                    }
                    Validity::Invalid => {
                        inner.drop_entry(key);
                        inner.stats.verifier_invalidations += 1;
                        HitOutcome::Miss
                    }
                }
            } else {
                HitOutcome::Miss
            }
        };

        if let HitOutcome::Serve(bytes, forward) = outcome {
            if forward {
                self.space.post_cache_event(user, doc, EventKind::CacheRead)?;
                self.inner.lock().stats.events_forwarded += 1;
            }
            if let Some(link) = &self.access_link {
                link.transfer(&clock, bytes.len() as u64);
            }
            return Ok(bytes);
        }

        // Miss path: execute the full read path (no cache lock held — the
        // path may dispatch events that invalidate entries in this cache).
        let (bytes, report) = self.space.read_document(user, doc)?;
        {
            let mut inner = self.inner.lock();
            if report.cacheability == Cacheability::Uncacheable {
                inner.stats.uncacheable_reads += 1;
                return Ok(bytes);
            }
            inner.stats.misses += 1;
            self.fill_locked(&mut inner, key, bytes.clone(), report, false);
            inner.stats.miss_micros += watch.elapsed_micros();
        }
        if self.prefetch.enabled {
            self.prefetch_collection_siblings(user, doc);
        }
        if let Some(link) = &self.access_link {
            link.transfer(&clock, bytes.len() as u64);
        }
        Ok(bytes)
    }

    /// Inserts a filled entry, updating sharing stats, pinning, the policy,
    /// and enforcing capacity. Caller holds the lock.
    fn fill_locked(
        &self,
        inner: &mut Inner,
        key: EntryKey,
        bytes: Bytes,
        report: placeless_core::property::PathReport,
        prefetched: bool,
    ) {
        let clock = self.space.clock();
        let size = bytes.len() as u64;
        let (_, shared) = inner.store.insert(key, bytes);
        if shared {
            inner.stats.shared_fills += 1;
        }
        let mut meta = EntryMeta::new(
            report.verifiers,
            report.cacheability,
            report.cost.effective_micros(),
            size,
            clock.now(),
        );
        meta.pinned = report.pinned;
        meta.prefetched = prefetched;
        inner.meta.insert(key, meta);
        if report.pinned {
            // Pinned entries never enter the policy, so they can never be
            // chosen as eviction victims.
            inner.stats.pinned_fills += 1;
        } else {
            inner
                .policy
                .on_insert(key, size, report.cost.effective_micros());
        }
        // Enforce capacity on physical bytes.
        while inner.store.physical_bytes() > self.capacity_bytes {
            match inner.policy.evict() {
                Some(victim) => {
                    inner.store.remove(victim);
                    inner.meta.remove(&victim);
                    inner.stats.evictions += 1;
                }
                None => break,
            }
        }
    }

    /// Pulls collection siblings of `doc` into the cache after a miss.
    fn prefetch_collection_siblings(&self, user: UserId, doc: DocumentId) {
        let mut budget = self.prefetch.max_per_miss;
        for collection in self.space.collections_of(doc) {
            for sibling in self.space.collection_members(&collection) {
                if budget == 0 {
                    return;
                }
                if sibling == doc
                    || self.contains(user, sibling)
                    || !self.space.has_reference(user, sibling)
                {
                    continue;
                }
                // Fetch through the full property path, as a miss would.
                let Ok((bytes, report)) = self.space.read_document(user, sibling) else {
                    continue;
                };
                if report.cacheability == Cacheability::Uncacheable {
                    continue;
                }
                let mut inner = self.inner.lock();
                self.fill_locked(&mut inner, (sibling, user), bytes, report, true);
                inner.stats.prefetches += 1;
                budget -= 1;
            }
        }
    }

    /// Writes a document for `user` according to the configured
    /// [`WriteMode`].
    pub fn write(&self, user: UserId, doc: DocumentId, data: &[u8]) -> Result<()> {
        match self.write_mode {
            WriteMode::Through => {
                self.space.write_document(user, doc, data)?;
                let mut inner = self.inner.lock();
                inner.stats.writes += 1;
                // The source changed: every locally cached version of this
                // document is stale, whatever notifiers may also say.
                self.invalidate_doc_locked(&mut inner, doc);
                Ok(())
            }
            WriteMode::Back => {
                {
                    let mut inner = self.inner.lock();
                    inner.stats.writes += 1;
                    inner.dirty.insert((doc, user), Bytes::copy_from_slice(data));
                }
                // §3: write-path properties register their own cacheability
                // requirements; forward the operation event when any of
                // them must see every write.
                let forward = self
                    .space
                    .write_cacheability(user, doc)?
                    .requires_event_forwarding();
                if forward {
                    self.space.post_cache_event(user, doc, EventKind::CacheWrite)?;
                    self.inner.lock().stats.events_forwarded += 1;
                }
                Ok(())
            }
        }
    }

    /// Pushes all buffered write-back data to the middleware.
    pub fn flush(&self) -> Result<()> {
        let dirty: Vec<(EntryKey, Bytes)> = {
            let mut inner = self.inner.lock();
            inner.dirty.drain().collect()
        };
        for ((doc, user), data) in dirty {
            self.space.write_document(user, doc, &data)?;
            let mut inner = self.inner.lock();
            inner.stats.flushes += 1;
            self.invalidate_doc_locked(&mut inner, doc);
        }
        Ok(())
    }

    /// Returns how many writes are buffered (write-back mode).
    pub fn dirty_count(&self) -> usize {
        self.inner.lock().dirty.len()
    }

    fn invalidate_doc_locked(&self, inner: &mut Inner, doc: DocumentId) {
        let keys: Vec<EntryKey> = inner
            .store
            .keys()
            .filter(|(d, _)| *d == doc)
            .collect();
        for key in keys {
            inner.drop_entry(key);
        }
    }

    fn handle_invalidation(&self, invalidation: &Invalidation) {
        let mut inner = self.inner.lock();
        let keys: Vec<EntryKey> = inner
            .store
            .keys()
            .filter(|(d, u)| invalidation.covers(*d, *u))
            .collect();
        for key in keys {
            if inner.drop_entry(key) {
                inner.stats.notifier_invalidations += 1;
            }
        }
    }
}

/// Bus subscription adapter holding a weak handle so dropping the cache
/// tears down the subscription naturally.
struct CacheSink {
    cache: Weak<DocumentCache>,
    id: CacheId,
}

impl InvalidationSink for CacheSink {
    fn cache_id(&self) -> CacheId {
        self.id
    }

    fn invalidate(&self, invalidation: &Invalidation) {
        if let Some(cache) = self.cache.upgrade() {
            cache.handle_invalidation(invalidation);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use placeless_core::prelude::*;
    use placeless_simenv::VirtualClock;

    const ALICE: UserId = UserId(1);
    const BOB: UserId = UserId(2);

    fn setup(content: &str, fetch_cost: u64) -> (Arc<DocumentSpace>, Arc<MemoryProvider>, DocumentId) {
        let clock = VirtualClock::new();
        let space = DocumentSpace::with_middleware_cost(clock, LatencyModel::FREE);
        let provider = MemoryProvider::new("t", content.to_owned(), fetch_cost);
        let doc = space.create_document(ALICE, provider.clone());
        (space, provider, doc)
    }

    fn quiet_config() -> CacheConfig {
        CacheConfig {
            local_latency: LatencyModel::FREE,
            ..CacheConfig::default()
        }
    }

    #[test]
    fn miss_then_hit() {
        let (space, _provider, doc) = setup("content", 1_000);
        let cache = DocumentCache::new(space, quiet_config());
        assert_eq!(cache.read(ALICE, doc).unwrap(), "content");
        assert_eq!(cache.read(ALICE, doc).unwrap(), "content");
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.hits), (1, 1));
        assert!(cache.contains(ALICE, doc));
    }

    #[test]
    fn hits_are_much_faster_than_misses() {
        let (space, _provider, doc) = setup("content", 50_000);
        let clock = space.clock().clone();
        let cache = DocumentCache::new(space, quiet_config());
        let t0 = clock.now();
        cache.read(ALICE, doc).unwrap();
        let miss_time = clock.now().since(t0);
        let t1 = clock.now();
        cache.read(ALICE, doc).unwrap();
        let hit_time = clock.now().since(t1);
        assert!(
            hit_time * 10 < miss_time,
            "hit {hit_time}µs vs miss {miss_time}µs"
        );
    }

    #[test]
    fn verifier_catches_out_of_band_change() {
        let (space, provider, doc) = setup("v1", 100);
        let cache = DocumentCache::new(space, quiet_config());
        assert_eq!(cache.read(ALICE, doc).unwrap(), "v1");
        provider.set_out_of_band("v2");
        assert_eq!(cache.read(ALICE, doc).unwrap(), "v2", "stale entry refilled");
        let stats = cache.stats();
        assert_eq!(stats.verifier_invalidations, 1);
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn verifiers_can_be_disabled() {
        let (space, provider, doc) = setup("v1", 100);
        let cache = DocumentCache::new(
            space,
            CacheConfig {
                run_verifiers: false,
                local_latency: LatencyModel::FREE,
                ..CacheConfig::default()
            },
        );
        cache.read(ALICE, doc).unwrap();
        provider.set_out_of_band("v2");
        // Without verifiers (and no notifier for out-of-band changes) the
        // stale content is served — the consistency/latency trade-off.
        assert_eq!(cache.read(ALICE, doc).unwrap(), "v1");
    }

    #[test]
    fn bus_invalidation_drops_entries() {
        let (space, _provider, doc) = setup("v1", 100);
        let cache = DocumentCache::new(space.clone(), quiet_config());
        cache.read(ALICE, doc).unwrap();
        assert!(cache.contains(ALICE, doc));
        space.bus().post(Invalidation::Document(doc));
        assert!(!cache.contains(ALICE, doc));
        assert_eq!(cache.stats().notifier_invalidations, 1);
    }

    #[test]
    fn user_scoped_invalidation_spares_others() {
        let (space, _provider, doc) = setup("v1", 100);
        space.add_reference(BOB, doc).unwrap();
        let cache = DocumentCache::new(space.clone(), quiet_config());
        cache.read(ALICE, doc).unwrap();
        cache.read(BOB, doc).unwrap();
        space.bus().post(Invalidation::UserDocument(doc, ALICE));
        assert!(!cache.contains(ALICE, doc));
        assert!(cache.contains(BOB, doc));
    }

    #[test]
    fn identical_chains_share_bytes() {
        let (space, _provider, doc) = setup("shared content", 100);
        space.add_reference(BOB, doc).unwrap();
        let cache = DocumentCache::new(space, quiet_config());
        cache.read(ALICE, doc).unwrap();
        cache.read(BOB, doc).unwrap();
        let (physical, logical) = cache.resident_bytes();
        assert_eq!(physical, 14);
        assert_eq!(logical, 28);
        assert_eq!(cache.stats().shared_fills, 1);
    }

    #[test]
    fn capacity_forces_evictions() {
        let clock = VirtualClock::new();
        let space = DocumentSpace::with_middleware_cost(clock, LatencyModel::FREE);
        let mut docs = Vec::new();
        for i in 0..10u8 {
            // Distinct bodies, or signature sharing would dedup them all.
            let mut body = vec![b'x'; 100];
            body[0] = b'0' + i;
            let provider = MemoryProvider::new(&format!("d{i}"), body, 100);
            docs.push(space.create_document(ALICE, provider));
        }
        let cache = DocumentCache::new(
            space,
            CacheConfig {
                capacity_bytes: 350,
                local_latency: LatencyModel::FREE,
                ..CacheConfig::default()
            },
        );
        for &doc in &docs {
            cache.read(ALICE, doc).unwrap();
        }
        let (physical, _) = cache.resident_bytes();
        assert!(physical <= 350, "capacity respected, got {physical}");
        assert!(cache.stats().evictions >= 7);
        assert_eq!(cache.len() as u64 * 100, physical);
    }

    #[test]
    fn write_through_updates_source_and_invalidates() {
        let (space, provider, doc) = setup("old", 100);
        let cache = DocumentCache::new(space, quiet_config());
        cache.read(ALICE, doc).unwrap();
        cache.write(ALICE, doc, b"new").unwrap();
        assert_eq!(provider.content(), "new");
        assert!(!cache.contains(ALICE, doc), "own entry invalidated");
        assert_eq!(cache.read(ALICE, doc).unwrap(), "new");
    }

    #[test]
    fn write_back_buffers_until_flush() {
        let (space, provider, doc) = setup("old", 100);
        let cache = DocumentCache::new(
            space,
            CacheConfig {
                write_mode: WriteMode::Back,
                local_latency: LatencyModel::FREE,
                ..CacheConfig::default()
            },
        );
        cache.write(ALICE, doc, b"buffered").unwrap();
        assert_eq!(provider.content(), "old", "not yet flushed");
        assert_eq!(cache.dirty_count(), 1);
        // The writer reads their own buffered data.
        assert_eq!(cache.read(ALICE, doc).unwrap(), "buffered");
        cache.flush().unwrap();
        assert_eq!(provider.content(), "buffered");
        assert_eq!(cache.dirty_count(), 0);
        assert_eq!(cache.stats().flushes, 1);
    }

    #[test]
    fn uncacheable_content_is_never_stored() {
        struct LiveProvider;
        impl BitProvider for LiveProvider {
            fn describe(&self) -> String {
                "live".into()
            }
            fn open_input(
                &self,
                clock: &VirtualClock,
            ) -> Result<Box<dyn InputStream>> {
                Ok(Box::new(MemoryInput::new(Bytes::from(format!(
                    "frame@{}",
                    clock.advance(1).as_micros()
                )))))
            }
            fn open_output(
                &self,
                _clock: &VirtualClock,
            ) -> Result<Box<dyn OutputStream>> {
                Err(PlacelessError::ReadOnly(DocumentId(0)))
            }
            fn make_verifier(
                &self,
                _clock: &VirtualClock,
            ) -> Option<Box<dyn placeless_core::verifier::Verifier>> {
                None
            }
            fn fetch_cost_micros(&self) -> u64 {
                10
            }
            fn cacheability_vote(&self) -> Cacheability {
                Cacheability::Uncacheable
            }
        }
        let clock = VirtualClock::new();
        let space = DocumentSpace::with_middleware_cost(clock, LatencyModel::FREE);
        let doc = space.create_document(ALICE, Arc::new(LiveProvider));
        let cache = DocumentCache::new(space, quiet_config());
        let a = cache.read(ALICE, doc).unwrap();
        let b = cache.read(ALICE, doc).unwrap();
        assert_ne!(a, b, "every read reaches the live source");
        assert!(cache.is_empty());
        assert_eq!(cache.stats().uncacheable_reads, 2);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn latency_and_verifier_accounting() {
        let (space, _provider, doc) = setup("abcdef", 10_000);
        let clock = space.clock().clone();
        let cache = DocumentCache::new(space, quiet_config());
        cache.read(ALICE, doc).unwrap();
        cache.read(ALICE, doc).unwrap();
        cache.read(ALICE, doc).unwrap();
        let stats = cache.stats();
        // The provider's mtime verifier costs 2 µs per hit.
        assert_eq!(stats.verify_micros, 4);
        assert!(stats.mean_miss_ms().unwrap() >= 10.0);
        assert!(stats.mean_hit_ms().unwrap() < 1.0);
        assert!(clock.now().as_micros() >= 10_000);
    }

    #[test]
    fn writes_are_counted_per_mode() {
        let (space, _provider, doc) = setup("x", 0);
        let through = DocumentCache::new(space.clone(), quiet_config());
        through.write(ALICE, doc, b"a").unwrap();
        through.write(ALICE, doc, b"b").unwrap();
        assert_eq!(through.stats().writes, 2);
        assert_eq!(through.stats().flushes, 0);

        let back = DocumentCache::new(
            space,
            CacheConfig {
                write_mode: WriteMode::Back,
                local_latency: LatencyModel::FREE,
                ..CacheConfig::default()
            },
        );
        back.write(ALICE, doc, b"c").unwrap();
        back.write(ALICE, doc, b"d").unwrap();
        back.flush().unwrap();
        let stats = back.stats();
        assert_eq!(stats.writes, 2);
        assert_eq!(stats.flushes, 1, "coalesced into one flush");
    }

    #[test]
    fn cacheable_with_events_forwards_cache_reads() {
        use parking_lot::Mutex as PMutex;
        struct Audit {
            reads: Arc<PMutex<u64>>,
        }
        impl ActiveProperty for Audit {
            fn name(&self) -> &str {
                "audit"
            }
            fn interests(&self) -> Interests {
                Interests::of(&[EventKind::GetInputStream, EventKind::CacheRead])
            }
            fn wrap_input(
                &self,
                _ctx: &PathCtx<'_>,
                report: &mut PathReport,
                inner: Box<dyn InputStream>,
            ) -> Result<Box<dyn InputStream>> {
                report.vote(Cacheability::CacheableWithEvents);
                *self.reads.lock() += 1;
                Ok(inner)
            }
            fn on_event(
                &self,
                _ctx: &EventCtx<'_>,
                _event: &DocumentEvent,
            ) -> Result<()> {
                *self.reads.lock() += 1;
                Ok(())
            }
        }
        let (space, _provider, doc) = setup("audited", 100);
        let reads = Arc::new(PMutex::new(0u64));
        space
            .attach_active(
                Scope::Universal,
                doc,
                Arc::new(Audit { reads: reads.clone() }),
            )
            .unwrap();
        let cache = DocumentCache::new(space, quiet_config());
        cache.read(ALICE, doc).unwrap(); // miss: wrap_input counts 1
        cache.read(ALICE, doc).unwrap(); // hit: forwarded event counts 1
        cache.read(ALICE, doc).unwrap(); // hit: forwarded event counts 1
        assert_eq!(*reads.lock(), 3, "audit saw every read despite caching");
        assert_eq!(cache.stats().events_forwarded, 2);
        assert_eq!(cache.stats().hits, 2);
    }
}
