//! A scripted "MS Word"-like client driving the NFS layer.
//!
//! The paper's Figure 2 walks a save from MS Word through the NFS layer,
//! the reference's and base's properties, and the bit-provider. [`Editor`]
//! reproduces that application behaviour for tests and benches: open a
//! document, read it, type, and save — all through file handles, never
//! touching the Placeless API directly.

use crate::server::{NfsServer, OpenMode};
use bytes::Bytes;
use placeless_core::error::Result;
use placeless_core::id::UserId;
use std::sync::Arc;

/// A scripted word-processor session over one exported file.
pub struct Editor {
    nfs: Arc<NfsServer>,
    user: UserId,
    path: String,
    /// The in-memory document buffer, as the application sees it.
    text: String,
    saves: u64,
}

impl Editor {
    /// Opens `path` as `user`, loading the current content.
    pub fn open(nfs: Arc<NfsServer>, user: UserId, path: &str) -> Result<Self> {
        let handle = nfs.open(user, path, OpenMode::Read)?;
        // Read the whole file in NFS-sized chunks, as a real client would.
        let mut text = Vec::new();
        let mut offset = 0u64;
        loop {
            let chunk = nfs.read(handle, offset, 8 * 1024)?;
            if chunk.is_empty() {
                break;
            }
            offset += chunk.len() as u64;
            text.extend_from_slice(&chunk);
        }
        nfs.close(handle)?;
        Ok(Self {
            nfs,
            user,
            path: path.to_owned(),
            text: String::from_utf8_lossy(&text).into_owned(),
            saves: 0,
        })
    }

    /// Returns the buffer as the application sees it.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Appends text to the buffer (unsaved).
    pub fn type_text(&mut self, text: &str) -> &mut Self {
        self.text.push_str(text);
        self
    }

    /// Replaces the first occurrence of `from` in the buffer (unsaved).
    pub fn edit(&mut self, from: &str, to: &str) -> &mut Self {
        if let Some(at) = self.text.find(from) {
            self.text.replace_range(at..at + from.len(), to);
        }
        self
    }

    /// Saves the buffer: open-for-write, chunked writes, close — the full
    /// Figure 2 path.
    pub fn save(&mut self) -> Result<()> {
        let handle = self.nfs.open(self.user, &self.path, OpenMode::Write)?;
        let bytes = self.text.as_bytes();
        let mut offset = 0usize;
        while offset < bytes.len() {
            let end = (offset + 4 * 1024).min(bytes.len());
            self.nfs.write(handle, offset as u64, &bytes[offset..end])?;
            offset = end;
        }
        if bytes.is_empty() {
            // Truncating save: force the dirty flag with an empty write.
            self.nfs.write(handle, 0, b"")?;
        }
        self.nfs.close(handle)?;
        self.saves += 1;
        Ok(())
    }

    /// Reloads the buffer from the server (e.g. after another user saved).
    pub fn reload(&mut self) -> Result<()> {
        let fresh = Editor::open(self.nfs.clone(), self.user, &self.path)?;
        self.text = fresh.text;
        Ok(())
    }

    /// Returns how many saves this session performed.
    pub fn save_count(&self) -> u64 {
        self.saves
    }

    /// Returns the buffer as bytes.
    pub fn bytes(&self) -> Bytes {
        Bytes::copy_from_slice(self.text.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::DirectBackend;
    use placeless_core::prelude::*;
    use placeless_properties::{SpellCheck, Versioning};
    use placeless_simenv::{LatencyModel, VirtualClock};

    const EYAL: UserId = UserId(1);
    const DOUG: UserId = UserId(2);

    fn setup(content: &str) -> (Arc<DocumentSpace>, Arc<NfsServer>, DocumentId) {
        let space = DocumentSpace::with_middleware_cost(VirtualClock::new(), LatencyModel::FREE);
        let provider = MemoryProvider::new("hotos", content.to_owned(), 0);
        let doc = space.create_document(EYAL, provider);
        let nfs = NfsServer::new(DirectBackend::new(space.clone()));
        nfs.export("/tilde/edelara/hotos.doc", doc);
        (space, nfs, doc)
    }

    #[test]
    fn type_and_save_roundtrip() {
        let (_space, nfs, _doc) = setup("Abstract. ");
        let mut editor = Editor::open(nfs.clone(), EYAL, "/tilde/edelara/hotos.doc").unwrap();
        editor.type_text("Caching in Placeless...");
        editor.save().unwrap();
        let reread = Editor::open(nfs, EYAL, "/tilde/edelara/hotos.doc").unwrap();
        assert_eq!(reread.text(), "Abstract. Caching in Placeless...");
    }

    #[test]
    fn figure2_save_runs_write_path_properties() {
        // Spelling correction at Eyal's reference + versioning at the base,
        // exactly the Figure 2 configuration.
        let (space, nfs, doc) = setup("");
        let versioning = Versioning::new();
        space
            .attach_active(Scope::Universal, doc, versioning.clone())
            .unwrap();
        space
            .attach_active(Scope::Personal(EYAL), doc, SpellCheck::new())
            .unwrap();

        let mut editor = Editor::open(nfs, EYAL, "/tilde/edelara/hotos.doc").unwrap();
        editor.type_text("teh HotOS paper draft");
        editor.save().unwrap();

        // The spelling corrector ran before the bits hit the provider:
        // Doug (no corrector of his own) sees the corrected text...
        space.add_reference(DOUG, doc).unwrap();
        let (bytes, _) = space.read_document(DOUG, doc).unwrap();
        assert_eq!(bytes, "the HotOS paper draft");
        // ...and the versioning property captured the corrected revision.
        assert_eq!(versioning.versions(), vec!["the HotOS paper draft"]);
    }

    #[test]
    fn edit_and_reload_across_users() {
        let (space, nfs, doc) = setup("draft v1");
        space.add_reference(DOUG, doc).unwrap();
        let mut eyal = Editor::open(nfs.clone(), EYAL, "/tilde/edelara/hotos.doc").unwrap();
        let mut doug = Editor::open(nfs, DOUG, "/tilde/edelara/hotos.doc").unwrap();
        eyal.edit("v1", "v2");
        eyal.save().unwrap();
        assert_eq!(doug.text(), "draft v1", "stale until reload");
        doug.reload().unwrap();
        assert_eq!(doug.text(), "draft v2");
    }

    #[test]
    fn save_counts_and_empty_saves() {
        let (_space, nfs, _doc) = setup("x");
        let mut editor = Editor::open(nfs, EYAL, "/tilde/edelara/hotos.doc").unwrap();
        editor.edit("x", "");
        editor.save().unwrap();
        editor.type_text("y");
        editor.save().unwrap();
        assert_eq!(editor.save_count(), 2);
    }
}
