//! The NFS-like file server over Placeless documents.
//!
//! Exports a path namespace mapped to document ids and offers the classic
//! handle-based operations: `lookup`, `open`, `read` (ranged), `write`
//! (ranged, buffered), `getattr`, `close`. Opening for read snapshots the
//! property-transformed content through the backend; closing a write
//! handle pushes the whole buffer through the write path — which is where
//! the spelling corrector, versioning, and every other write-path property
//! run, exactly as in the paper's Figure 2.

use crate::backend::Backend;
use bytes::Bytes;
use parking_lot::Mutex;
use placeless_core::error::{PlacelessError, Result};
use placeless_core::id::{DocumentId, UserId};
use std::collections::BTreeMap;
use std::sync::Arc;

/// An open-file handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileHandle(pub u64);

/// File open modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenMode {
    /// Read-only: content snapshotted at open.
    Read,
    /// Write: a fresh buffer, committed on close (truncate semantics).
    Write,
    /// Read-modify-write: buffer seeded with current content.
    ReadWrite,
}

/// Attributes returned by [`NfsServer::getattr`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileAttr {
    /// The backing document.
    pub doc: DocumentId,
    /// Content length as seen by this user, in bytes.
    pub size: u64,
}

struct OpenFile {
    user: UserId,
    doc: DocumentId,
    mode: OpenMode,
    buffer: Vec<u8>,
    dirty: bool,
}

/// The NFS adapter: a path namespace plus handle-based I/O.
pub struct NfsServer {
    backend: Arc<dyn Backend>,
    exports: Mutex<BTreeMap<String, DocumentId>>,
    open_files: Mutex<BTreeMap<FileHandle, OpenFile>>,
    next_handle: Mutex<u64>,
}

impl NfsServer {
    /// Creates a server over `backend` with an empty namespace.
    pub fn new(backend: Arc<dyn Backend>) -> Arc<Self> {
        Arc::new(Self {
            backend,
            exports: Mutex::new(BTreeMap::new()),
            open_files: Mutex::new(BTreeMap::new()),
            next_handle: Mutex::new(1),
        })
    }

    /// Exports `doc` under `path`.
    pub fn export(&self, path: &str, doc: DocumentId) {
        self.exports.lock().insert(path.to_owned(), doc);
    }

    /// Resolves a path to its document.
    pub fn lookup(&self, path: &str) -> Result<DocumentId> {
        self.exports
            .lock()
            .get(path)
            .copied()
            .ok_or_else(|| PlacelessError::Repository(format!("NFS: no export {path}")))
    }

    /// Lists the exported paths.
    pub fn exports(&self) -> Vec<String> {
        self.exports.lock().keys().cloned().collect()
    }

    /// Returns a file's attributes as seen by `user` (runs the read path).
    pub fn getattr(&self, user: UserId, path: &str) -> Result<FileAttr> {
        let doc = self.lookup(path)?;
        let content = self.backend.read(user, doc)?;
        Ok(FileAttr {
            doc,
            size: content.len() as u64,
        })
    }

    /// Opens a file, returning a handle.
    pub fn open(&self, user: UserId, path: &str, mode: OpenMode) -> Result<FileHandle> {
        let doc = self.lookup(path)?;
        let buffer = match mode {
            OpenMode::Write => Vec::new(),
            OpenMode::Read | OpenMode::ReadWrite => self.backend.read(user, doc)?.to_vec(),
        };
        let handle = {
            let mut next = self.next_handle.lock();
            let h = FileHandle(*next);
            *next += 1;
            h
        };
        self.open_files.lock().insert(
            handle,
            OpenFile {
                user,
                doc,
                mode,
                buffer,
                dirty: false,
            },
        );
        Ok(handle)
    }

    /// Reads up to `len` bytes at `offset`.
    pub fn read(&self, handle: FileHandle, offset: u64, len: usize) -> Result<Bytes> {
        let files = self.open_files.lock();
        let file = files.get(&handle).ok_or(PlacelessError::StreamClosed)?;
        if file.mode == OpenMode::Write {
            return Err(PlacelessError::Repository(
                "NFS: handle is write-only".to_owned(),
            ));
        }
        let start = (offset as usize).min(file.buffer.len());
        let end = (start + len).min(file.buffer.len());
        Ok(Bytes::copy_from_slice(&file.buffer[start..end]))
    }

    /// Writes `data` at `offset`, zero-filling any gap.
    pub fn write(&self, handle: FileHandle, offset: u64, data: &[u8]) -> Result<usize> {
        let mut files = self.open_files.lock();
        let file = files.get_mut(&handle).ok_or(PlacelessError::StreamClosed)?;
        if file.mode == OpenMode::Read {
            return Err(PlacelessError::Repository(
                "NFS: handle is read-only".to_owned(),
            ));
        }
        let offset = offset as usize;
        let end = offset + data.len();
        if file.buffer.len() < end {
            file.buffer.resize(end, 0);
        }
        file.buffer[offset..end].copy_from_slice(data);
        file.dirty = true;
        Ok(data.len())
    }

    /// Closes a handle; dirty buffers are committed through the write path.
    pub fn close(&self, handle: FileHandle) -> Result<()> {
        let file = self
            .open_files
            .lock()
            .remove(&handle)
            .ok_or(PlacelessError::StreamClosed)?;
        if file.dirty {
            self.backend.write(file.user, file.doc, &file.buffer)?;
        }
        Ok(())
    }

    /// Returns the number of open handles.
    pub fn open_count(&self) -> usize {
        self.open_files.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::DirectBackend;
    use placeless_core::prelude::*;
    use placeless_simenv::{LatencyModel, VirtualClock};

    const ALICE: UserId = UserId(1);

    fn setup(content: &str) -> (Arc<NfsServer>, Arc<MemoryProvider>, DocumentId) {
        let space = DocumentSpace::with_middleware_cost(VirtualClock::new(), LatencyModel::FREE);
        let provider = MemoryProvider::new("t", content.to_owned(), 0);
        let doc = space.create_document(ALICE, provider.clone());
        let nfs = NfsServer::new(DirectBackend::new(space));
        nfs.export("/docs/file.txt", doc);
        (nfs, provider, doc)
    }

    #[test]
    fn lookup_and_getattr() {
        let (nfs, _provider, doc) = setup("hello nfs");
        assert_eq!(nfs.lookup("/docs/file.txt").unwrap(), doc);
        assert!(nfs.lookup("/missing").is_err());
        let attr = nfs.getattr(ALICE, "/docs/file.txt").unwrap();
        assert_eq!(attr.size, 9);
        assert_eq!(attr.doc, doc);
        assert_eq!(nfs.exports(), vec!["/docs/file.txt"]);
    }

    #[test]
    fn ranged_reads() {
        let (nfs, _provider, _doc) = setup("0123456789");
        let h = nfs.open(ALICE, "/docs/file.txt", OpenMode::Read).unwrap();
        assert_eq!(nfs.read(h, 0, 4).unwrap(), "0123");
        assert_eq!(nfs.read(h, 4, 4).unwrap(), "4567");
        assert_eq!(nfs.read(h, 8, 100).unwrap(), "89");
        assert_eq!(nfs.read(h, 100, 4).unwrap(), "");
        nfs.close(h).unwrap();
        assert_eq!(nfs.open_count(), 0);
    }

    #[test]
    fn write_truncates_and_commits_on_close() {
        let (nfs, provider, _doc) = setup("old content");
        let h = nfs.open(ALICE, "/docs/file.txt", OpenMode::Write).unwrap();
        nfs.write(h, 0, b"new").unwrap();
        assert_eq!(provider.content(), "old content", "not committed yet");
        nfs.close(h).unwrap();
        assert_eq!(provider.content(), "new");
    }

    #[test]
    fn read_write_mode_edits_in_place() {
        let (nfs, provider, _doc) = setup("hello world");
        let h = nfs
            .open(ALICE, "/docs/file.txt", OpenMode::ReadWrite)
            .unwrap();
        nfs.write(h, 6, b"rust!").unwrap();
        nfs.close(h).unwrap();
        assert_eq!(provider.content(), "hello rust!");
    }

    #[test]
    fn sparse_writes_zero_fill() {
        let (nfs, provider, _doc) = setup("");
        let h = nfs.open(ALICE, "/docs/file.txt", OpenMode::Write).unwrap();
        nfs.write(h, 3, b"x").unwrap();
        nfs.close(h).unwrap();
        assert_eq!(&provider.content()[..], &[0, 0, 0, b'x'][..]);
    }

    #[test]
    fn clean_close_writes_nothing() {
        let (nfs, provider, _doc) = setup("untouched");
        let h = nfs
            .open(ALICE, "/docs/file.txt", OpenMode::ReadWrite)
            .unwrap();
        nfs.close(h).unwrap();
        assert_eq!(provider.content(), "untouched");
        assert_eq!(provider.epoch(), 0, "no write path executed");
    }

    #[test]
    fn mode_violations_are_rejected() {
        let (nfs, _provider, _doc) = setup("data");
        let r = nfs.open(ALICE, "/docs/file.txt", OpenMode::Read).unwrap();
        assert!(nfs.write(r, 0, b"x").is_err());
        let w = nfs.open(ALICE, "/docs/file.txt", OpenMode::Write).unwrap();
        assert!(nfs.read(w, 0, 1).is_err());
    }

    #[test]
    fn stale_handles_fail() {
        let (nfs, _provider, _doc) = setup("data");
        let h = nfs.open(ALICE, "/docs/file.txt", OpenMode::Read).unwrap();
        nfs.close(h).unwrap();
        assert!(nfs.read(h, 0, 1).is_err());
        assert!(nfs.close(h).is_err());
    }

    #[test]
    fn user_without_reference_cannot_open() {
        let (nfs, _provider, _doc) = setup("data");
        assert!(nfs
            .open(UserId(99), "/docs/file.txt", OpenMode::Read)
            .is_err());
    }
}
