//! # NFS adapter for legacy applications
//!
//! "Read and write operations from off-the-shelf applications are
//! translated into Placeless I/O operations by a NFS server layer." This
//! crate provides that layer:
//!
//! * [`server::NfsServer`] — an exported path namespace with handle-based
//!   `lookup` / `open` / `read` / `write` / `getattr` / `close`;
//! * [`backend`] — routing either directly to the middleware or through an
//!   application-level [`placeless_cache::DocumentCache`] (the Table 1
//!   configuration);
//! * [`editor::Editor`] — a scripted MS-Word-like client for tests and
//!   benchmarks, reproducing the paper's Figure 2 save path.

pub mod backend;
pub mod editor;
pub mod server;

pub use backend::{Backend, CachedBackend, DirectBackend};
pub use editor::Editor;
pub use server::{FileAttr, FileHandle, NfsServer, OpenMode};
