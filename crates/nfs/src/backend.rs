//! Backends the NFS layer can route document I/O through.
//!
//! "Read and write operations from off-the-shelf applications are
//! translated into Placeless I/O operations by a NFS server layer." The
//! layer can talk to the middleware directly ([`DirectBackend`]) or through
//! an application-level cache ([`CachedBackend`]) — the configuration the
//! paper's Table 1 measures.

use bytes::Bytes;
use placeless_cache::DocumentCache;
use placeless_core::error::Result;
use placeless_core::id::{DocumentId, UserId};
use placeless_core::space::DocumentSpace;
use std::sync::Arc;

/// Reads and writes whole documents on behalf of the NFS layer.
pub trait Backend: Send + Sync {
    /// Reads the full (property-transformed) content for `user`.
    fn read(&self, user: UserId, doc: DocumentId) -> Result<Bytes>;

    /// Writes full content for `user` through the property write path.
    fn write(&self, user: UserId, doc: DocumentId, data: &[u8]) -> Result<()>;
}

/// Talks to the middleware directly (the "no cache" configuration).
pub struct DirectBackend {
    space: Arc<DocumentSpace>,
}

impl DirectBackend {
    /// Creates a direct backend over `space`.
    pub fn new(space: Arc<DocumentSpace>) -> Arc<Self> {
        Arc::new(Self { space })
    }
}

impl Backend for DirectBackend {
    fn read(&self, user: UserId, doc: DocumentId) -> Result<Bytes> {
        Ok(self.space.read_document(user, doc)?.0)
    }

    fn write(&self, user: UserId, doc: DocumentId, data: &[u8]) -> Result<()> {
        self.space.write_document(user, doc, data)
    }
}

/// Routes through an application-level [`DocumentCache`].
pub struct CachedBackend {
    cache: Arc<DocumentCache>,
}

impl CachedBackend {
    /// Creates a cached backend over `cache`.
    pub fn new(cache: Arc<DocumentCache>) -> Arc<Self> {
        Arc::new(Self { cache })
    }
}

impl Backend for CachedBackend {
    fn read(&self, user: UserId, doc: DocumentId) -> Result<Bytes> {
        self.cache.read(user, doc)
    }

    fn write(&self, user: UserId, doc: DocumentId, data: &[u8]) -> Result<()> {
        self.cache.write(user, doc, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use placeless_cache::CacheConfig;
    use placeless_core::prelude::*;
    use placeless_simenv::{LatencyModel, VirtualClock};

    const ALICE: UserId = UserId(1);

    #[test]
    fn direct_backend_roundtrips() {
        let space = DocumentSpace::with_middleware_cost(VirtualClock::new(), LatencyModel::FREE);
        let provider = MemoryProvider::new("t", "data", 0);
        let doc = space.create_document(ALICE, provider);
        let backend = DirectBackend::new(space);
        assert_eq!(backend.read(ALICE, doc).unwrap(), "data");
        backend.write(ALICE, doc, b"updated").unwrap();
        assert_eq!(backend.read(ALICE, doc).unwrap(), "updated");
    }

    #[test]
    fn cached_backend_serves_hits() {
        let space = DocumentSpace::with_middleware_cost(VirtualClock::new(), LatencyModel::FREE);
        let provider = MemoryProvider::new("t", "data", 1_000);
        let doc = space.create_document(ALICE, provider);
        let cache = DocumentCache::new(
            space,
            CacheConfig {
                local_latency: LatencyModel::FREE,
                ..CacheConfig::default()
            },
        );
        let backend = CachedBackend::new(cache.clone());
        backend.read(ALICE, doc).unwrap();
        backend.read(ALICE, doc).unwrap();
        assert_eq!(cache.stats().hits, 1);
    }
}
