//! Simulation substrate for the Placeless Documents reproduction.
//!
//! The original 1999 evaluation ran on real machines at Xerox PARC with real
//! LAN/WAN links between applications, Placeless servers, and document
//! origins. This crate replaces that testbed with a deterministic simulated
//! environment:
//!
//! * [`clock::VirtualClock`] — a shared, monotonically advancing microsecond
//!   clock that the repositories, caches, and property framework all charge
//!   their costs against.
//! * [`latency::LatencyModel`] and [`latency::Link`] — per-link latency and
//!   bandwidth profiles (local, LAN, WAN) with deterministic jitter.
//! * [`rng::SimRng`] — a small, seedable xorshift generator so every
//!   experiment is reproducible bit-for-bit.
//! * [`fault::FaultPlan`] — scripted, deterministic failure schedules
//!   (outages, timeouts, latency spikes, partitions, process crashes)
//!   attachable to links.
//! * [`stable::StableStore`] — a simulated stable-storage medium whose
//!   contents survive a scripted process crash (with torn-tail
//!   truncation), backing the cache's write-ahead journal.
//! * [`trace`] — workload generators (Zipf document popularity, read/write
//!   mixes, user populations) used by the benchmark harness.
//!
//! Nothing in this crate knows about documents or caches; it is a pure
//! substrate the rest of the workspace builds on.

pub mod clock;
pub mod fault;
pub mod latency;
pub mod rng;
pub mod stable;
pub mod trace;

pub use clock::{Instant, Stopwatch, VirtualClock};
pub use fault::{CrashEvent, FaultError, FaultErrorKind, FaultPlan};
pub use latency::{LatencyModel, Link, LinkClass};
pub use rng::SimRng;
pub use stable::StableStore;
pub use trace::{AccessEvent, TraceBuilder, TraceSampler, WorkloadBuilder, ZipfSampler};
