//! Workload generation for the benchmark harness.
//!
//! The paper evaluates caching under document workloads; its successors
//! (e.g. the Greedy-Dual-Size paper it cites) use Zipf-distributed document
//! popularity and mixed read/write streams. This module produces such
//! streams deterministically from a seed: a [`ZipfSampler`] for popularity,
//! and a [`WorkloadBuilder`] that emits a sequence of [`AccessEvent`]s over a
//! simulated user population.

use crate::rng::SimRng;

/// Samples from a Zipf distribution over ranks `0..n`.
///
/// Rank 0 is the most popular item. Uses the classic inverse-CDF over a
/// precomputed harmonic table, which is exact and fast enough for the corpus
/// sizes used in the benches (≤ tens of thousands).
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `n` items with exponent `theta` (typically
    /// 0.6–1.0 for web workloads).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf over an empty universe");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Returns the number of items in the universe.
    pub fn universe(&self) -> usize {
        self.cdf.len()
    }

    /// Samples a rank in `0..n`.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.next_f64();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("CDF is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// One access in a generated workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessEvent {
    /// Index of the user performing the access.
    pub user: usize,
    /// Index (rank) of the document accessed.
    pub doc: usize,
    /// Whether the access is a write (save) rather than a read (open).
    pub is_write: bool,
    /// Microseconds of think time before this access.
    pub think_micros: u64,
}

/// Deterministically generates a stream of [`AccessEvent`]s.
///
/// # Examples
///
/// ```
/// use placeless_simenv::trace::WorkloadBuilder;
///
/// let events = WorkloadBuilder::new(99)
///     .users(4)
///     .documents(100)
///     .zipf_theta(0.8)
///     .write_fraction(0.1)
///     .events(1_000)
///     .build();
/// assert_eq!(events.len(), 1_000);
/// assert!(events.iter().all(|e| e.user < 4 && e.doc < 100));
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    seed: u64,
    users: usize,
    documents: usize,
    zipf_theta: f64,
    write_fraction: f64,
    events: usize,
    mean_think_micros: u64,
}

impl WorkloadBuilder {
    /// Creates a builder with small defaults (1 user, 10 documents,
    /// theta 0.8, 10 % writes, 100 events, 1 ms mean think time).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            users: 1,
            documents: 10,
            zipf_theta: 0.8,
            write_fraction: 0.1,
            events: 100,
            mean_think_micros: 1_000,
        }
    }

    /// Sets the number of simulated users.
    pub fn users(mut self, n: usize) -> Self {
        self.users = n.max(1);
        self
    }

    /// Sets the number of documents in the corpus.
    pub fn documents(mut self, n: usize) -> Self {
        self.documents = n.max(1);
        self
    }

    /// Sets the Zipf exponent for document popularity.
    pub fn zipf_theta(mut self, theta: f64) -> Self {
        self.zipf_theta = theta;
        self
    }

    /// Sets the fraction of accesses that are writes.
    pub fn write_fraction(mut self, f: f64) -> Self {
        self.write_fraction = f.clamp(0.0, 1.0);
        self
    }

    /// Sets the number of events to generate.
    pub fn events(mut self, n: usize) -> Self {
        self.events = n;
        self
    }

    /// Sets the mean think time between accesses, in microseconds.
    pub fn mean_think_micros(mut self, micros: u64) -> Self {
        self.mean_think_micros = micros;
        self
    }

    /// Generates the event stream.
    pub fn build(&self) -> Vec<AccessEvent> {
        let mut rng = SimRng::seeded(self.seed);
        let zipf = ZipfSampler::new(self.documents, self.zipf_theta);
        (0..self.events)
            .map(|_| {
                let user = rng.next_below(self.users as u64) as usize;
                let doc = zipf.sample(&mut rng);
                let is_write = rng.chance(self.write_fraction);
                // Geometric-ish think time: uniform in [0, 2 * mean].
                let think_micros = if self.mean_think_micros == 0 {
                    0
                } else {
                    rng.next_below(self.mean_think_micros * 2 + 1)
                };
                AccessEvent {
                    user,
                    doc,
                    is_write,
                    think_micros,
                }
            })
            .collect()
    }
}

/// Builds a [`TraceSampler`]: the million-user workload model behind the
/// E-LOAD experiment.
///
/// [`WorkloadBuilder`] materializes an event vector, which is fine for
/// thousands of events but not for load tests that stream tens of
/// millions of accesses from many threads. A `TraceSampler` instead holds
/// only the distribution tables (two Zipf CDFs) and derives everything
/// per-user *statelessly* from the seed — no per-user allocations, so a
/// 10^6-user population costs two tables, not a million working sets.
///
/// The model, following the Zipf-popularity trace methodology of the
/// Greedy-Dual-Size line of work:
///
/// * **which user** acts next is Zipf-distributed with exponent
///   `user_theta` (a few heavy users, a long tail);
/// * **which document** they touch is, with probability `locality`, drawn
///   uniformly from the user's own `working_set` documents (derived from
///   the user index by a fixed mix hash — the per-user skew), and
///   otherwise from the global Zipf popularity with exponent `doc_theta`;
/// * **whether** the access writes is an independent `write_fraction`
///   coin.
///
/// # Examples
///
/// ```
/// use placeless_simenv::trace::TraceBuilder;
///
/// let sampler = TraceBuilder::new(42).users(1_000).documents(64).build();
/// let mut rng = sampler.stream(0);
/// let event = sampler.next_event(&mut rng);
/// assert!(event.user < 1_000 && event.doc < 64);
/// ```
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    seed: u64,
    users: usize,
    documents: usize,
    doc_theta: f64,
    user_theta: f64,
    locality: f64,
    working_set: usize,
    write_fraction: f64,
}

impl TraceBuilder {
    /// Creates a builder with load-test defaults (1000 users, 256
    /// documents, doc theta 0.9, user theta 0.6, 30 % locality over an
    /// 8-document working set, 2 % writes).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            users: 1_000,
            documents: 256,
            doc_theta: 0.9,
            user_theta: 0.6,
            locality: 0.3,
            working_set: 8,
            write_fraction: 0.02,
        }
    }

    /// Sets the simulated user population.
    pub fn users(mut self, n: usize) -> Self {
        self.users = n.max(1);
        self
    }

    /// Sets the number of documents in the corpus.
    pub fn documents(mut self, n: usize) -> Self {
        self.documents = n.max(1);
        self
    }

    /// Sets the Zipf exponent for global document popularity.
    pub fn doc_theta(mut self, theta: f64) -> Self {
        self.doc_theta = theta;
        self
    }

    /// Sets the Zipf exponent for user activity skew.
    pub fn user_theta(mut self, theta: f64) -> Self {
        self.user_theta = theta;
        self
    }

    /// Sets the fraction of accesses directed at the acting user's own
    /// working set rather than the global popularity distribution.
    pub fn locality(mut self, fraction: f64) -> Self {
        self.locality = fraction.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-user working-set size, in documents.
    pub fn working_set(mut self, docs: usize) -> Self {
        self.working_set = docs.max(1);
        self
    }

    /// Sets the fraction of accesses that are writes.
    pub fn write_fraction(mut self, fraction: f64) -> Self {
        self.write_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Builds the sampler (precomputes the two Zipf tables).
    pub fn build(&self) -> TraceSampler {
        TraceSampler {
            seed: self.seed,
            users: ZipfSampler::new(self.users, self.user_theta),
            docs: ZipfSampler::new(self.documents, self.doc_theta),
            documents: self.documents,
            locality: self.locality,
            working_set: self.working_set,
            write_fraction: self.write_fraction,
        }
    }
}

/// The immutable, thread-shareable workload model built by
/// [`TraceBuilder`]. All mutable state lives in the per-stream [`SimRng`],
/// so any number of threads can sample one `TraceSampler` concurrently,
/// each on its own deterministic stream.
#[derive(Debug, Clone)]
pub struct TraceSampler {
    seed: u64,
    users: ZipfSampler,
    docs: ZipfSampler,
    documents: usize,
    locality: f64,
    working_set: usize,
    write_fraction: f64,
}

/// SplitMix64 finalizer: the fixed mix hash behind stream seeding and
/// stateless working-set derivation.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl TraceSampler {
    /// Returns the user universe size.
    pub fn users(&self) -> usize {
        self.users.universe()
    }

    /// Returns the document universe size.
    pub fn documents(&self) -> usize {
        self.documents
    }

    /// Returns the write fraction the sampler was built with.
    pub fn write_fraction(&self) -> f64 {
        self.write_fraction
    }

    /// Returns the deterministic generator for stream `stream_id`
    /// (typically one stream per worker thread). Streams with distinct
    /// ids diverge; the same `(seed, stream_id)` pair always reproduces
    /// the same event sequence.
    pub fn stream(&self, stream_id: u64) -> SimRng {
        SimRng::seeded(mix64(self.seed ^ mix64(stream_id)) | 1)
    }

    /// Returns the document in `user`'s working set at `slot`
    /// (`slot < working_set`), derived statelessly from the seed — the
    /// same `(user, slot)` always names the same document, with no
    /// per-user table.
    pub fn working_doc(&self, user: usize, slot: usize) -> usize {
        let h =
            mix64(self.seed ^ (user as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F) ^ (slot as u64));
        (h % self.documents as u64) as usize
    }

    /// Samples the next access on `rng`'s stream.
    pub fn next_event(&self, rng: &mut SimRng) -> AccessEvent {
        let user = self.users.sample(rng);
        let doc = if rng.chance(self.locality) {
            self.working_doc(user, rng.next_below(self.working_set as u64) as usize)
        } else {
            self.docs.sample(rng)
        };
        let is_write = rng.chance(self.write_fraction);
        AccessEvent {
            user,
            doc,
            is_write,
            think_micros: 0,
        }
    }
}

/// One phase of a [`BurstSchedule`]: a run of events offered at some
/// multiple of the baseline arrival rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstPhase {
    /// Number of events in this phase (per driving stream).
    pub events: usize,
    /// Offered-load multiplier relative to the baseline rate. `1` is the
    /// calibrated steady state; `10` is a 10× burst.
    pub intensity: u32,
}

/// A piecewise-constant offered-load schedule for trace-driven engines.
///
/// Load experiments need more than a flat arrival rate: overload tests
/// alternate a calibrated steady phase with bursts several times above
/// capacity, and measure how the cache degrades and recovers. A
/// `BurstSchedule` captures that shape declaratively so the engine and
/// the experiment report agree on where each phase starts and ends.
///
/// # Examples
///
/// ```
/// use placeless_simenv::trace::BurstSchedule;
///
/// let schedule = BurstSchedule::steady(1_000).phase(500, 10).phase(250, 1);
/// assert_eq!(schedule.total_events(), 1_750);
/// assert_eq!(schedule.intensity_at(0), 1);
/// assert_eq!(schedule.intensity_at(1_000), 10);
/// assert_eq!(schedule.intensity_at(1_600), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BurstSchedule {
    phases: Vec<BurstPhase>,
}

impl BurstSchedule {
    /// Starts a schedule with a steady phase of `events` at intensity 1.
    pub fn steady(events: usize) -> Self {
        Self {
            phases: vec![BurstPhase {
                events,
                intensity: 1,
            }],
        }
    }

    /// Appends a phase of `events` offered at `intensity`× the baseline.
    pub fn phase(mut self, events: usize, intensity: u32) -> Self {
        self.phases.push(BurstPhase {
            events,
            intensity: intensity.max(1),
        });
        self
    }

    /// Returns the phases in order.
    pub fn phases(&self) -> &[BurstPhase] {
        &self.phases
    }

    /// Total events across all phases.
    pub fn total_events(&self) -> usize {
        self.phases.iter().map(|p| p.events).sum()
    }

    /// Returns the intensity governing event `index` (indices past the end
    /// keep the final phase's intensity, so open-ended drivers stay valid).
    pub fn intensity_at(&self, index: usize) -> u32 {
        let mut cursor = index;
        for phase in &self.phases {
            if cursor < phase.events {
                return phase.intensity;
            }
            cursor -= phase.events;
        }
        self.phases.last().map(|p| p.intensity).unwrap_or(1)
    }
}

/// Generates deterministic pseudo-text of roughly `bytes` length.
///
/// Used by repositories and benches to fill documents with word-like content
/// that transform properties (spell-check, translation, summarization) can
/// operate on meaningfully.
pub fn lorem_bytes(seed: u64, bytes: usize) -> Vec<u8> {
    const WORDS: &[&str] = &[
        "document",
        "property",
        "active",
        "cache",
        "placeless",
        "content",
        "stream",
        "verifier",
        "notifier",
        "replacement",
        "policy",
        "system",
        "server",
        "reference",
        "base",
        "user",
        "teh",
        "recieve",
        "adress",
        "workshop",
        "paper",
        "draft",
        "budget",
        "version",
        "latency",
    ];
    let mut rng = SimRng::seeded(seed);
    let mut out = Vec::with_capacity(bytes + 16);
    while out.len() < bytes {
        let w = WORDS[rng.next_below(WORDS.len() as u64) as usize];
        out.extend_from_slice(w.as_bytes());
        if rng.chance(0.12) {
            out.extend_from_slice(b".\n");
        } else {
            out.push(b' ');
        }
    }
    out.truncate(bytes);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_prefers_low_ranks() {
        let zipf = ZipfSampler::new(100, 0.9);
        let mut rng = SimRng::seeded(11);
        let mut counts = vec![0u32; 100];
        for _ in 0..20_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[50] && counts[0] > counts[99]);
        // Rank 0 should carry several percent of the mass at theta 0.9.
        assert!(counts[0] > 1_000, "rank 0 drew {}", counts[0]);
    }

    #[test]
    fn zipf_theta_zero_is_uniformish() {
        let zipf = ZipfSampler::new(10, 0.0);
        let mut rng = SimRng::seeded(12);
        let mut counts = vec![0u32; 10];
        for _ in 0..20_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((1_500..2_500).contains(&c), "count {c} far from uniform");
        }
    }

    #[test]
    fn zipf_single_item() {
        let zipf = ZipfSampler::new(1, 1.0);
        let mut rng = SimRng::seeded(13);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut rng), 0);
        }
    }

    #[test]
    fn workload_is_deterministic() {
        let a = WorkloadBuilder::new(5)
            .users(3)
            .documents(50)
            .events(200)
            .build();
        let b = WorkloadBuilder::new(5)
            .users(3)
            .documents(50)
            .events(200)
            .build();
        assert_eq!(a, b);
    }

    #[test]
    fn workload_respects_bounds() {
        let events = WorkloadBuilder::new(6)
            .users(7)
            .documents(13)
            .write_fraction(0.5)
            .events(500)
            .build();
        assert!(events.iter().all(|e| e.user < 7 && e.doc < 13));
        let writes = events.iter().filter(|e| e.is_write).count();
        assert!(
            (150..350).contains(&writes),
            "write mix {writes} off target"
        );
    }

    #[test]
    fn write_fraction_zero_means_reads_only() {
        let events = WorkloadBuilder::new(7)
            .write_fraction(0.0)
            .events(300)
            .build();
        assert!(events.iter().all(|e| !e.is_write));
    }

    #[test]
    fn trace_sampler_streams_are_deterministic_and_independent() {
        let sampler = TraceBuilder::new(11).users(500).documents(64).build();
        let run = |stream: u64| {
            let mut rng = sampler.stream(stream);
            (0..200)
                .map(|_| sampler.next_event(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(0), run(0), "same stream must replay identically");
        assert_ne!(run(0), run(1), "distinct streams must diverge");
    }

    #[test]
    fn trace_sampler_respects_universe_bounds() {
        let sampler = TraceBuilder::new(3)
            .users(9)
            .documents(17)
            .working_set(4)
            .locality(0.5)
            .build();
        let mut rng = sampler.stream(7);
        for _ in 0..1_000 {
            let e = sampler.next_event(&mut rng);
            assert!(e.user < 9 && e.doc < 17);
        }
    }

    #[test]
    fn working_set_is_stable_per_user() {
        let sampler = TraceBuilder::new(5).documents(1_024).working_set(8).build();
        for user in [0usize, 1, 999_999] {
            for slot in 0..8 {
                assert_eq!(
                    sampler.working_doc(user, slot),
                    sampler.working_doc(user, slot)
                );
                assert!(sampler.working_doc(user, slot) < 1_024);
            }
        }
        // Different users should (overwhelmingly) see different sets.
        let a: Vec<_> = (0..8).map(|s| sampler.working_doc(1, s)).collect();
        let b: Vec<_> = (0..8).map(|s| sampler.working_doc(2, s)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn locality_one_confines_reads_to_working_sets() {
        let sampler = TraceBuilder::new(9)
            .users(50)
            .documents(4_096)
            .working_set(4)
            .locality(1.0)
            .build();
        let mut rng = sampler.stream(0);
        for _ in 0..500 {
            let e = sampler.next_event(&mut rng);
            let set: Vec<_> = (0..4).map(|s| sampler.working_doc(e.user, s)).collect();
            assert!(set.contains(&e.doc), "doc {} outside working set", e.doc);
        }
    }

    #[test]
    fn burst_schedule_maps_indices_to_phases() {
        let schedule = BurstSchedule::steady(100).phase(50, 10).phase(25, 2);
        assert_eq!(schedule.total_events(), 175);
        assert_eq!(schedule.phases().len(), 3);
        assert_eq!(schedule.intensity_at(0), 1);
        assert_eq!(schedule.intensity_at(99), 1);
        assert_eq!(schedule.intensity_at(100), 10);
        assert_eq!(schedule.intensity_at(149), 10);
        assert_eq!(schedule.intensity_at(150), 2);
        assert_eq!(
            schedule.intensity_at(10_000),
            2,
            "past the end keeps the final intensity"
        );
    }

    #[test]
    fn burst_schedule_floors_intensity_at_one() {
        let schedule = BurstSchedule::steady(10).phase(10, 0);
        assert_eq!(schedule.intensity_at(15), 1);
    }

    #[test]
    fn lorem_bytes_exact_length_and_deterministic() {
        let a = lorem_bytes(1, 1_915);
        let b = lorem_bytes(1, 1_915);
        assert_eq!(a.len(), 1_915);
        assert_eq!(a, b);
        assert_ne!(a, lorem_bytes(2, 1_915));
        assert!(std::str::from_utf8(&a).is_ok());
    }
}
