//! Link latency and bandwidth models.
//!
//! The paper's Table 1 measured access times for a local web server
//! (`parcweb`) and two remote WWW sites circa 1999; the dominant term is
//! where the bytes have to travel. [`Link`] models a network path with a
//! fixed round-trip latency, a bandwidth, and optional deterministic jitter;
//! [`LatencyModel`] bundles per-operation service costs for a component
//! (e.g. a repository's request-processing overhead).

use crate::clock::VirtualClock;
use crate::fault::{FaultError, FaultPlan};
use crate::rng::SimRng;
use parking_lot::Mutex;
use std::sync::Arc;

/// Coarse classes of network link, with 1999-plausible defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkClass {
    /// Same machine: function-call distance (~0.05 ms RTT).
    Local,
    /// Same building LAN (~1 ms RTT, 10 Mbit/s effective).
    Lan,
    /// Cross-country WAN (~80 ms RTT, 1 Mbit/s effective).
    Wan,
    /// Intercontinental WAN (~180 ms RTT, 0.5 Mbit/s effective).
    FarWan,
}

impl LinkClass {
    /// Returns the default round-trip latency in microseconds.
    pub fn default_rtt_micros(self) -> u64 {
        match self {
            LinkClass::Local => 50,
            LinkClass::Lan => 1_000,
            LinkClass::Wan => 80_000,
            LinkClass::FarWan => 180_000,
        }
    }

    /// Returns the default bandwidth in bytes per second.
    pub fn default_bytes_per_sec(self) -> u64 {
        match self {
            LinkClass::Local => 200_000_000,
            LinkClass::Lan => 1_250_000,
            LinkClass::Wan => 125_000,
            LinkClass::FarWan => 62_500,
        }
    }
}

/// A simulated network path with latency, bandwidth, and jitter.
///
/// Cloning a `Link` shares the underlying jitter stream and transfer
/// counters.
///
/// # Examples
///
/// ```
/// use placeless_simenv::{Link, LinkClass, VirtualClock};
///
/// let clock = VirtualClock::new();
/// let link = Link::of_class(LinkClass::Lan, 0);
/// let t0 = clock.now();
/// link.transfer(&clock, 1_250); // 1250 bytes over the LAN
/// assert!(clock.now().since(t0) >= LinkClass::Lan.default_rtt_micros());
/// ```
#[derive(Debug, Clone)]
pub struct Link {
    rtt_micros: u64,
    bytes_per_sec: u64,
    jitter_frac: f64,
    shared: Arc<Mutex<LinkState>>,
}

#[derive(Debug)]
struct LinkState {
    rng: SimRng,
    transfers: u64,
    bytes_moved: u64,
    fault: Option<FaultPlan>,
}

impl Link {
    /// Creates a link with explicit parameters.
    ///
    /// `jitter_frac` is the maximum fractional deviation applied to each
    /// transfer's latency (e.g. `0.1` for ±10 %); it is sampled from the
    /// deterministic per-link RNG stream.
    pub fn new(rtt_micros: u64, bytes_per_sec: u64, jitter_frac: f64, seed: u64) -> Self {
        Self {
            rtt_micros,
            bytes_per_sec: bytes_per_sec.max(1),
            jitter_frac: jitter_frac.clamp(0.0, 1.0),
            shared: Arc::new(Mutex::new(LinkState {
                rng: SimRng::seeded(seed ^ 0xC0FF_EE00_DEAD_BEEF),
                transfers: 0,
                bytes_moved: 0,
                fault: None,
            })),
        }
    }

    /// Creates a link of a standard class with 5 % jitter.
    pub fn of_class(class: LinkClass, seed: u64) -> Self {
        Self::new(
            class.default_rtt_micros(),
            class.default_bytes_per_sec(),
            0.05,
            seed,
        )
    }

    /// Returns the configured round-trip latency in microseconds.
    pub fn rtt_micros(&self) -> u64 {
        self.rtt_micros
    }

    /// Estimates the jitter-free cost of transferring `bytes`, without
    /// charging anything or touching the counters.
    pub fn estimate_micros(&self, bytes: u64) -> u64 {
        self.rtt_micros + bytes.saturating_mul(1_000_000) / self.bytes_per_sec
    }

    /// Computes the latency a transfer of `bytes` would incur, including a
    /// jitter sample, and advances the shared counters.
    fn sample_cost(&self, bytes: u64) -> u64 {
        let serialization = bytes.saturating_mul(1_000_000) / self.bytes_per_sec;
        let base = self.rtt_micros + serialization;
        let mut state = self.shared.lock();
        state.transfers += 1;
        state.bytes_moved += bytes;
        if self.jitter_frac == 0.0 {
            base
        } else {
            // Uniform jitter in [-jitter_frac, +jitter_frac].
            let j = (state.rng.next_f64() * 2.0 - 1.0) * self.jitter_frac;
            ((base as f64) * (1.0 + j)).max(0.0) as u64
        }
    }

    /// Charges the cost of transferring `bytes` over this link against the
    /// clock and returns the charged microseconds.
    pub fn transfer(&self, clock: &VirtualClock, bytes: u64) -> u64 {
        let cost = self.sample_cost(bytes);
        clock.advance(cost);
        cost
    }

    /// Charges a zero-payload round trip (e.g. a validation probe).
    pub fn round_trip(&self, clock: &VirtualClock) -> u64 {
        self.transfer(clock, 0)
    }

    /// Returns `(transfers, total bytes)` moved over this link so far.
    pub fn counters(&self) -> (u64, u64) {
        let state = self.shared.lock();
        (state.transfers, state.bytes_moved)
    }

    /// Attaches a [`FaultPlan`]; all clones of this link share it.
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        self.shared.lock().fault = Some(plan);
    }

    /// Detaches the fault plan, restoring a fault-free link.
    pub fn clear_fault_plan(&self) {
        self.shared.lock().fault = None;
    }

    /// Returns a handle to the attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.shared.lock().fault.clone()
    }

    /// Consults the attached fault plan for one operation.
    ///
    /// On an injected failure the wire time of the doomed attempt — one
    /// round trip (a full timeout window for [`FaultError`] timeouts, when
    /// the window end is known) — is charged to the clock before the error
    /// returns. Scheduled latency spikes are charged by the plan itself.
    /// Links with no plan attached always succeed and charge nothing.
    pub fn faulted_op(&self, clock: &VirtualClock) -> Result<(), FaultError> {
        let Some(plan) = self.fault_plan() else {
            return Ok(());
        };
        match plan.assess(clock) {
            Ok(()) => Ok(()),
            Err(err) => {
                let attempt_cost = match (err.kind, err.retry_after) {
                    // A timeout hangs until its window closes.
                    (crate::fault::FaultErrorKind::Timeout, Some(remaining)) => {
                        self.rtt_micros.max(remaining)
                    }
                    _ => self.rtt_micros,
                };
                clock.advance(attempt_cost);
                Err(err)
            }
        }
    }
}

/// Per-operation service costs for a simulated component.
///
/// Bundles the fixed CPU/service overhead a component charges per request
/// and a per-byte processing cost.
#[derive(Debug, Clone, Copy)]
pub struct LatencyModel {
    /// Fixed microseconds charged per operation.
    pub per_op_micros: u64,
    /// Additional microseconds charged per kilobyte processed.
    pub per_kb_micros: u64,
}

impl LatencyModel {
    /// A model that charges nothing, for tests.
    pub const FREE: LatencyModel = LatencyModel {
        per_op_micros: 0,
        per_kb_micros: 0,
    };

    /// Creates a new model.
    pub fn new(per_op_micros: u64, per_kb_micros: u64) -> Self {
        Self {
            per_op_micros,
            per_kb_micros,
        }
    }

    /// Computes the cost of processing `bytes` without charging it.
    pub fn cost_micros(&self, bytes: u64) -> u64 {
        self.per_op_micros + self.per_kb_micros * bytes.div_ceil(1024)
    }

    /// Charges the cost of processing `bytes` against the clock and returns
    /// the charged microseconds.
    pub fn charge(&self, clock: &VirtualClock, bytes: u64) -> u64 {
        let cost = self.cost_micros(bytes);
        clock.advance(cost);
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_classes_are_ordered_by_distance() {
        assert!(
            LinkClass::Local.default_rtt_micros() < LinkClass::Lan.default_rtt_micros()
                && LinkClass::Lan.default_rtt_micros() < LinkClass::Wan.default_rtt_micros()
                && LinkClass::Wan.default_rtt_micros() < LinkClass::FarWan.default_rtt_micros()
        );
    }

    #[test]
    fn transfer_advances_clock() {
        let clock = VirtualClock::new();
        let link = Link::new(1_000, 1_000_000, 0.0, 1);
        let cost = link.transfer(&clock, 2_000_000);
        // 1 ms RTT + 2 s serialization.
        assert_eq!(cost, 1_000 + 2_000_000);
        assert_eq!(clock.now().as_micros(), cost);
    }

    #[test]
    fn zero_jitter_is_exact() {
        let clock = VirtualClock::new();
        let link = Link::new(500, 1_000_000, 0.0, 2);
        for _ in 0..10 {
            assert_eq!(link.transfer(&clock, 1_000_000), 500 + 1_000_000);
        }
    }

    #[test]
    fn jitter_stays_in_bounds() {
        let clock = VirtualClock::new();
        let link = Link::new(10_000, 1_000_000_000, 0.10, 3);
        for _ in 0..200 {
            let cost = link.transfer(&clock, 0);
            assert!((9_000..=11_000).contains(&cost), "cost {cost} out of ±10 %");
        }
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let clock = VirtualClock::new();
        let a = Link::new(10_000, 1_000_000, 0.1, 7);
        let b = Link::new(10_000, 1_000_000, 0.1, 7);
        let xs: Vec<u64> = (0..16).map(|_| a.transfer(&clock, 100)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.transfer(&clock, 100)).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn counters_track_traffic() {
        let clock = VirtualClock::new();
        let link = Link::new(100, 1_000_000, 0.0, 4);
        link.transfer(&clock, 10);
        link.transfer(&clock, 20);
        link.round_trip(&clock);
        assert_eq!(link.counters(), (3, 30));
    }

    #[test]
    fn cloned_links_share_counters() {
        let clock = VirtualClock::new();
        let link = Link::new(100, 1_000_000, 0.0, 5);
        let other = link.clone();
        link.transfer(&clock, 7);
        other.transfer(&clock, 8);
        assert_eq!(link.counters(), (2, 15));
    }

    #[test]
    fn latency_model_charges_per_kb() {
        let clock = VirtualClock::new();
        let model = LatencyModel::new(10, 3);
        assert_eq!(model.cost_micros(0), 10);
        assert_eq!(model.cost_micros(1), 13);
        assert_eq!(model.cost_micros(1024), 13);
        assert_eq!(model.cost_micros(1025), 16);
        model.charge(&clock, 2048);
        assert_eq!(clock.now().as_micros(), 16);
    }

    #[test]
    fn free_model_is_free() {
        let clock = VirtualClock::new();
        assert_eq!(LatencyModel::FREE.charge(&clock, 1_000_000), 0);
        assert_eq!(clock.now().as_micros(), 0);
    }
}
