//! A shared virtual clock measured in microseconds.
//!
//! All latencies in the workspace — network hops, property execution,
//! repository service times — are charged against a [`VirtualClock`] rather
//! than wall time. This makes every experiment deterministic and lets the
//! benchmark harness report "milliseconds" comparable in shape to the
//! paper's Table 1 regardless of the host machine.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A point in virtual time, in microseconds since the start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Instant(pub u64);

impl Instant {
    /// Returns the zero instant (start of the simulation).
    pub const ZERO: Instant = Instant(0);

    /// Returns this instant expressed in whole microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns this instant expressed in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: Instant) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Returns this instant advanced by `micros` microseconds.
    pub fn plus(self, micros: u64) -> Instant {
        Instant(self.0.saturating_add(micros))
    }
}

/// A shared, monotonically advancing virtual clock.
///
/// Cloning a `VirtualClock` yields a handle to the *same* underlying clock;
/// every component of a simulation should observe a single time line.
///
/// # Examples
///
/// ```
/// use placeless_simenv::VirtualClock;
///
/// let clock = VirtualClock::new();
/// let t0 = clock.now();
/// clock.advance(1_500);
/// assert_eq!(clock.now().since(t0), 1_500);
/// ```
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    micros: Arc<AtomicU64>,
}

impl VirtualClock {
    /// Creates a new clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a new clock already advanced to `micros`.
    pub fn starting_at(micros: u64) -> Self {
        let clock = Self::new();
        clock.micros.store(micros, Ordering::SeqCst);
        clock
    }

    /// Returns the current virtual time.
    pub fn now(&self) -> Instant {
        Instant(self.micros.load(Ordering::SeqCst))
    }

    /// Advances the clock by `micros` microseconds and returns the new time.
    ///
    /// Advancing is how simulated work "takes time": a component that wants
    /// to charge 3 ms of service time calls `clock.advance(3_000)`.
    pub fn advance(&self, micros: u64) -> Instant {
        Instant(self.micros.fetch_add(micros, Ordering::SeqCst) + micros)
    }

    /// Advances the clock so that it reads at least `target`.
    ///
    /// Returns the resulting time. If the clock is already past `target`
    /// this is a no-op; the clock never moves backwards.
    pub fn advance_to(&self, target: Instant) -> Instant {
        let mut current = self.micros.load(Ordering::SeqCst);
        while current < target.0 {
            match self.micros.compare_exchange(
                current,
                target.0,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return target,
                Err(observed) => current = observed,
            }
        }
        Instant(current)
    }
}

/// A stopwatch over a [`VirtualClock`], used to measure simulated spans.
#[derive(Debug, Clone)]
pub struct Stopwatch {
    clock: VirtualClock,
    started: Instant,
}

impl Stopwatch {
    /// Starts a stopwatch at the clock's current time.
    pub fn start(clock: &VirtualClock) -> Self {
        Self {
            clock: clock.clone(),
            started: clock.now(),
        }
    }

    /// Returns the simulated microseconds elapsed since the stopwatch started.
    pub fn elapsed_micros(&self) -> u64 {
        self.clock.now().since(self.started)
    }

    /// Returns the simulated milliseconds elapsed since the stopwatch started.
    pub fn elapsed_millis_f64(&self) -> f64 {
        self.elapsed_micros() as f64 / 1_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_clock_reads_zero() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now(), Instant::ZERO);
    }

    #[test]
    fn advance_accumulates() {
        let clock = VirtualClock::new();
        clock.advance(10);
        clock.advance(32);
        assert_eq!(clock.now().as_micros(), 42);
    }

    #[test]
    fn clones_share_the_time_line() {
        let clock = VirtualClock::new();
        let other = clock.clone();
        clock.advance(7);
        assert_eq!(other.now().as_micros(), 7);
        other.advance(3);
        assert_eq!(clock.now().as_micros(), 10);
    }

    #[test]
    fn advance_to_never_moves_backwards() {
        let clock = VirtualClock::starting_at(100);
        clock.advance_to(Instant(50));
        assert_eq!(clock.now().as_micros(), 100);
        clock.advance_to(Instant(150));
        assert_eq!(clock.now().as_micros(), 150);
    }

    #[test]
    fn instant_arithmetic() {
        let a = Instant(1_000);
        assert_eq!(a.plus(500).as_micros(), 1_500);
        assert_eq!(a.since(Instant(400)), 600);
        assert_eq!(Instant(400).since(a), 0, "since saturates at zero");
        assert!((a.as_millis_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stopwatch_measures_simulated_spans() {
        let clock = VirtualClock::new();
        let watch = Stopwatch::start(&clock);
        clock.advance(2_500);
        assert_eq!(watch.elapsed_micros(), 2_500);
        assert!((watch.elapsed_millis_f64() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn starting_at_sets_origin() {
        let clock = VirtualClock::starting_at(9_999);
        assert_eq!(clock.now().as_micros(), 9_999);
    }
}
