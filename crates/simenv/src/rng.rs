//! A small deterministic random number generator.
//!
//! Experiments must be reproducible bit-for-bit across runs and machines, so
//! the workspace uses its own seedable xorshift generator ([`SimRng`])
//! rather than OS entropy. The algorithm is `xorshift64*`, which is fast and
//! has no measurable bias for the workload-generation purposes here.

/// A seedable `xorshift64*` pseudo-random generator.
///
/// # Examples
///
/// ```
/// use placeless_simenv::SimRng;
///
/// let mut a = SimRng::seeded(7);
/// let mut b = SimRng::seeded(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from a seed; a zero seed is remapped to a fixed
    /// non-zero constant because xorshift has an all-zero fixed point.
    pub fn seeded(seed: u64) -> Self {
        Self {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Splits off an independent generator, e.g. one per simulated user.
    ///
    /// The child is seeded from the parent's stream, so a single top-level
    /// seed still determines the whole experiment.
    pub fn split(&mut self) -> SimRng {
        SimRng::seeded(self.next_u64() | 1)
    }

    /// Returns the next value in the stream.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Returns a value uniformly distributed in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection sampling to avoid modulo bias for large bounds.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Returns a value uniformly distributed in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        lo + self.next_below(hi - lo + 1)
    }

    /// Returns a uniform floating point value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits give a uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot pick from an empty slice");
        &items[self.next_below(items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SimRng::seeded(42);
        let mut b = SimRng::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seeded(1);
        let mut b = SimRng::seeded(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = SimRng::seeded(0);
        assert_ne!(rng.next_u64(), 0);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SimRng::seeded(3);
        for _ in 0..1_000 {
            assert!(rng.next_below(7) < 7);
        }
    }

    #[test]
    fn next_range_inclusive() {
        let mut rng = SimRng::seeded(4);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2_000 {
            let v = rng.next_range(3, 5);
            assert!((3..=5).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 5;
        }
        assert!(seen_lo && seen_hi, "both endpoints should be reachable");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SimRng::seeded(5);
        for _ in 0..1_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seeded(6);
        for _ in 0..100 {
            assert!(!rng.chance(0.0));
            assert!(rng.chance(1.0));
        }
    }

    #[test]
    fn chance_roughly_matches_probability() {
        let mut rng = SimRng::seeded(7);
        let hits = (0..10_000).filter(|_| rng.chance(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seeded(8);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn split_streams_are_independent() {
        let mut parent = SimRng::seeded(9);
        let mut child = parent.split();
        let a: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn pick_returns_member() {
        let mut rng = SimRng::seeded(10);
        let items = [10, 20, 30];
        for _ in 0..50 {
            assert!(items.contains(rng.pick(&items)));
        }
    }
}
