//! A simulated stable-storage medium.
//!
//! The paper's write-back cache holds the only copy of buffered user data
//! while the origin is unreachable; surviving process death therefore
//! requires a medium whose contents outlive the process. [`StableStore`]
//! models one: a flat byte device with append, whole-image rewrite, and
//! truncate operations. Handles are cheap clones sharing one underlying
//! image, so a test or experiment driver keeps a handle across a scripted
//! crash (dropping every in-memory structure) and re-opens the *same*
//! bytes afterwards — exactly how a write-ahead journal file survives a
//! real crash.
//!
//! Crashes in real systems tear the write that was in flight:
//! [`StableStore::tear_tail`] models that by chopping bytes off the end of
//! the image, leaving a torn final record for recovery code to detect and
//! truncate. Nothing in this module interprets the bytes; record framing
//! and checksums belong to the layer above (the cache's write journal).

use parking_lot::Mutex;
use std::sync::Arc;

#[derive(Debug, Default)]
struct StableInner {
    bytes: Vec<u8>,
    appends: u64,
    rewrites: u64,
}

/// A shared, crash-surviving flat byte device.
///
/// Clones share the same image (like two file descriptors on one file).
///
/// # Examples
///
/// ```
/// use placeless_simenv::stable::StableStore;
///
/// let store = StableStore::new();
/// store.append(b"record-1");
/// let survivor = store.clone();
/// drop(store); // the "process" dies; the medium does not
/// assert_eq!(survivor.contents(), b"record-1");
/// ```
#[derive(Debug, Clone, Default)]
pub struct StableStore {
    inner: Arc<Mutex<StableInner>>,
}

impl StableStore {
    /// Creates an empty medium.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends `data`, returning the offset it was written at.
    pub fn append(&self, data: &[u8]) -> u64 {
        let mut inner = self.inner.lock();
        let offset = inner.bytes.len() as u64;
        inner.bytes.extend_from_slice(data);
        inner.appends += 1;
        offset
    }

    /// Replaces the entire image with `data` (journal compaction).
    pub fn overwrite(&self, data: &[u8]) {
        let mut inner = self.inner.lock();
        inner.bytes.clear();
        inner.bytes.extend_from_slice(data);
        inner.rewrites += 1;
    }

    /// Truncates the image to `len` bytes (no-op if already shorter).
    /// Recovery uses this to discard a torn tail once detected.
    pub fn truncate(&self, len: u64) {
        let mut inner = self.inner.lock();
        let len = len.min(inner.bytes.len() as u64) as usize;
        inner.bytes.truncate(len);
    }

    /// Simulates a crash tearing the in-flight write: chops the last `n`
    /// bytes off the image (all of them if `n` exceeds the image).
    pub fn tear_tail(&self, n: u64) {
        let mut inner = self.inner.lock();
        let keep = (inner.bytes.len() as u64).saturating_sub(n) as usize;
        inner.bytes.truncate(keep);
    }

    /// Returns a copy of the current image.
    pub fn contents(&self) -> Vec<u8> {
        self.inner.lock().bytes.clone()
    }

    /// Returns the image length in bytes.
    pub fn len(&self) -> u64 {
        self.inner.lock().bytes.len() as u64
    }

    /// Returns `true` if the image is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns how many appends the medium has absorbed.
    pub fn append_count(&self) -> u64 {
        self.inner.lock().appends
    }

    /// Returns how many whole-image rewrites (compactions) it absorbed.
    pub fn rewrite_count(&self) -> u64 {
        self.inner.lock().rewrites
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_accumulates_and_reports_offsets() {
        let store = StableStore::new();
        assert!(store.is_empty());
        assert_eq!(store.append(b"abc"), 0);
        assert_eq!(store.append(b"defg"), 3);
        assert_eq!(store.len(), 7);
        assert_eq!(store.contents(), b"abcdefg");
        assert_eq!(store.append_count(), 2);
    }

    #[test]
    fn clones_share_the_image_across_a_crash() {
        let store = StableStore::new();
        store.append(b"live");
        let survivor = store.clone();
        drop(store);
        assert_eq!(survivor.contents(), b"live");
        survivor.append(b"-more");
        assert_eq!(survivor.contents(), b"live-more");
    }

    #[test]
    fn tear_tail_models_a_torn_final_write() {
        let store = StableStore::new();
        store.append(b"intact");
        store.append(b"torn-record");
        store.tear_tail(4);
        assert_eq!(store.contents(), b"intacttorn-re");
        store.tear_tail(1_000);
        assert!(store.is_empty());
    }

    #[test]
    fn overwrite_compacts_and_truncate_caps() {
        let store = StableStore::new();
        store.append(b"aaaabbbb");
        store.overwrite(b"bbbb");
        assert_eq!(store.contents(), b"bbbb");
        assert_eq!(store.rewrite_count(), 1);
        store.truncate(2);
        assert_eq!(store.contents(), b"bb");
        store.truncate(100);
        assert_eq!(store.contents(), b"bb", "longer truncate is a no-op");
    }
}
