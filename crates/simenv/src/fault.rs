//! Deterministic fault injection for simulated links.
//!
//! A [`FaultPlan`] scripts failures against the virtual clock: error
//! windows, timeout windows, latency spikes, drop-next-N counters, a
//! partition toggle, scheduled partition windows, scripted process
//! crashes, and an optional
//! per-operation error probability. All
//! randomness flows through a [`SimRng`] seeded at plan construction, so a
//! given plan replays the *exact* same failure sequence on every run —
//! resilience experiments are reproducible bit-for-bit.
//!
//! The plan is attached to a [`crate::latency::Link`]
//! ([`crate::latency::Link::set_fault_plan`]); providers consult it at the
//! start of every repository operation and verifier probe. Nothing in this
//! module knows about documents or caches: a fault is just "this operation
//! against this link fails (or slows down) now".

use crate::clock::VirtualClock;
use crate::rng::SimRng;
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// How an injected failure presents to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultErrorKind {
    /// The origin is unreachable (connection refused, partition, outage).
    Unavailable,
    /// The operation hung until a deadline elapsed.
    Timeout,
}

/// An injected failure, as surfaced to the component using the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultError {
    /// The failure mode.
    pub kind: FaultErrorKind,
    /// A hint for when retrying might succeed (microseconds from now),
    /// when the plan knows (e.g. the end of a scripted outage window).
    pub retry_after: Option<u64>,
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            FaultErrorKind::Unavailable => write!(f, "origin unavailable")?,
            FaultErrorKind::Timeout => write!(f, "operation timed out")?,
        }
        if let Some(after) = self.retry_after {
            write!(f, " (retry after {after}µs)")?;
        }
        Ok(())
    }
}

/// A half-open window `[from, until)` in virtual microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Window {
    from: u64,
    until: u64,
}

impl Window {
    fn contains(&self, t: u64) -> bool {
        self.from <= t && t < self.until
    }

    fn remaining(&self, t: u64) -> u64 {
        self.until.saturating_sub(t)
    }
}

/// Counters describing what a plan has injected so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Operations assessed against the plan.
    pub ops_assessed: u64,
    /// Operations failed (any [`FaultErrorKind`]).
    pub failures_injected: u64,
    /// Operations delayed by a latency spike.
    pub spikes_applied: u64,
    /// Crash events consumed via [`FaultPlan::take_crash`].
    pub crashes_fired: u64,
}

/// A scripted process crash.
///
/// Crashes are *process-level* events, not link-level ones, so nothing in
/// [`FaultPlan::assess`] fires them: the workload driver polls
/// [`FaultPlan::take_crash`] between operations and, when one fires,
/// simulates process death itself (drop every in-memory structure, tear
/// the stable medium's tail by [`CrashEvent::torn_tail_bytes`], restart).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashEvent {
    /// Virtual time at which the crash is scheduled.
    pub at_micros: u64,
    /// How many bytes the crash tears off the stable medium's tail — the
    /// write that was in flight when the process died.
    pub torn_tail_bytes: u64,
}

#[derive(Debug)]
struct PlanState {
    drop_next: u64,
    partitioned: bool,
    next_crash: usize,
    rng: SimRng,
    counters: FaultCounters,
}

/// A scripted, deterministic failure schedule for one simulated link.
///
/// Cloning a `FaultPlan` shares the underlying state (drop counters,
/// partition flag, RNG stream), mirroring how [`crate::latency::Link`]
/// clones share their jitter stream.
///
/// # Examples
///
/// ```
/// use placeless_simenv::fault::{FaultErrorKind, FaultPlan};
/// use placeless_simenv::VirtualClock;
///
/// let clock = VirtualClock::new();
/// let plan = FaultPlan::builder(7).outage(1_000, 2_000).build();
/// assert!(plan.assess(&clock).is_ok());
/// clock.advance(1_500);
/// let err = plan.assess(&clock).unwrap_err();
/// assert_eq!(err.kind, FaultErrorKind::Unavailable);
/// assert_eq!(err.retry_after, Some(500));
/// ```
#[derive(Debug, Clone)]
pub struct FaultPlan {
    outages: Arc<[Window]>,
    partitions: Arc<[Window]>,
    timeouts: Arc<[Window]>,
    spikes: Arc<[(Window, u64)]>,
    crashes: Arc<[CrashEvent]>,
    error_rate: f64,
    retry_hint: Option<u64>,
    state: Arc<Mutex<PlanState>>,
}

impl FaultPlan {
    /// Starts building a plan whose probabilistic stream is seeded with
    /// `seed`.
    pub fn builder(seed: u64) -> FaultPlanBuilder {
        FaultPlanBuilder {
            outages: Vec::new(),
            partitions: Vec::new(),
            timeouts: Vec::new(),
            spikes: Vec::new(),
            crashes: Vec::new(),
            error_rate: 0.0,
            retry_hint: None,
            seed,
        }
    }

    /// A plan that never injects anything.
    pub fn none() -> Self {
        Self::builder(0).build()
    }

    /// Fails the next `n` operations with [`FaultErrorKind::Unavailable`],
    /// on top of whatever the schedule says.
    pub fn drop_next(&self, n: u64) {
        self.state.lock().drop_next += n;
    }

    /// Toggles a network partition: while set, every operation fails.
    pub fn set_partitioned(&self, partitioned: bool) {
        self.state.lock().partitioned = partitioned;
    }

    /// Returns `true` if the partition toggle is currently set.
    ///
    /// Scheduled [`FaultPlanBuilder::partition`] windows are not
    /// reflected here; use [`FaultPlan::in_partition_window`] for those.
    pub fn is_partitioned(&self) -> bool {
        self.state.lock().partitioned
    }

    /// Returns `true` if the current virtual time falls inside a
    /// scheduled [`FaultPlanBuilder::partition`] window.
    pub fn in_partition_window(&self, clock: &VirtualClock) -> bool {
        let now = clock.now().as_micros();
        self.partitions.iter().any(|w| w.contains(now))
    }

    /// Returns a snapshot of what the plan has injected so far.
    pub fn counters(&self) -> FaultCounters {
        self.state.lock().counters
    }

    /// Fires the next scheduled crash whose time has arrived, if any.
    ///
    /// Each scheduled crash fires exactly once, in schedule order, the
    /// first time this is called at or after its timestamp. The caller
    /// (a workload driver) then performs the crash itself: drop the
    /// in-memory structures, [`crate::stable::StableStore::tear_tail`]
    /// the stable medium by [`CrashEvent::torn_tail_bytes`], and restart
    /// through the recovery path.
    pub fn take_crash(&self, clock: &VirtualClock) -> Option<CrashEvent> {
        let now = clock.now().as_micros();
        let mut state = self.state.lock();
        let crash = *self.crashes.get(state.next_crash)?;
        if crash.at_micros > now {
            return None;
        }
        state.next_crash += 1;
        state.counters.crashes_fired += 1;
        Some(crash)
    }

    /// Assesses one operation at the current virtual time.
    ///
    /// On success, any scheduled latency spike has already been charged to
    /// `clock`. On failure the caller decides what the failed attempt
    /// costs (typically one link round trip).
    pub fn assess(&self, clock: &VirtualClock) -> Result<(), FaultError> {
        let now = clock.now().as_micros();
        let mut state = self.state.lock();
        state.counters.ops_assessed += 1;
        let fail = |state: &mut PlanState, kind, retry_after| {
            state.counters.failures_injected += 1;
            Err(FaultError { kind, retry_after })
        };
        if state.partitioned {
            return fail(&mut state, FaultErrorKind::Unavailable, self.retry_hint);
        }
        if state.drop_next > 0 {
            state.drop_next -= 1;
            return fail(&mut state, FaultErrorKind::Unavailable, self.retry_hint);
        }
        if let Some(w) = self.partitions.iter().find(|w| w.contains(now)) {
            let after = Some(w.remaining(now));
            return fail(&mut state, FaultErrorKind::Unavailable, after);
        }
        if let Some(w) = self.timeouts.iter().find(|w| w.contains(now)) {
            let after = Some(w.remaining(now));
            return fail(&mut state, FaultErrorKind::Timeout, after);
        }
        if let Some(w) = self.outages.iter().find(|w| w.contains(now)) {
            let after = Some(w.remaining(now));
            return fail(&mut state, FaultErrorKind::Unavailable, after);
        }
        if self.error_rate > 0.0 && state.rng.chance(self.error_rate) {
            return fail(&mut state, FaultErrorKind::Unavailable, self.retry_hint);
        }
        if let Some((_, extra)) = self.spikes.iter().find(|(w, _)| w.contains(now)) {
            state.counters.spikes_applied += 1;
            let extra = *extra;
            drop(state);
            clock.advance(extra);
        }
        Ok(())
    }
}

/// Builder for [`FaultPlan`]; obtain via [`FaultPlan::builder`].
#[derive(Debug, Clone)]
pub struct FaultPlanBuilder {
    outages: Vec<Window>,
    partitions: Vec<Window>,
    timeouts: Vec<Window>,
    spikes: Vec<(Window, u64)>,
    crashes: Vec<CrashEvent>,
    error_rate: f64,
    retry_hint: Option<u64>,
    seed: u64,
}

impl FaultPlanBuilder {
    /// Schedules an unavailability window `[from, until)` in virtual
    /// microseconds.
    pub fn outage(mut self, from: u64, until: u64) -> Self {
        self.outages.push(Window { from, until });
        self
    }

    /// Schedules a network partition window `[from, until)` in virtual
    /// microseconds: operations inside it fail with
    /// [`FaultErrorKind::Unavailable`] and a `retry_after` hint pointing
    /// at the heal time. Semantically this is an outage whose cause is
    /// the network rather than the origin — kept as a separate schedule
    /// so experiments can script "partition one writer mid-flush" and
    /// report partition and outage effects independently.
    pub fn partition(mut self, from: u64, until: u64) -> Self {
        self.partitions.push(Window { from, until });
        self
    }

    /// Schedules a window in which every operation times out instead of
    /// erroring fast — the slow-failure mode that eats deadline budgets.
    pub fn timeout(mut self, from: u64, until: u64) -> Self {
        self.timeouts.push(Window { from, until });
        self
    }

    /// Schedules a latency spike: operations inside `[from, until)` are
    /// charged `extra_micros` on top of the link's normal cost.
    pub fn latency_spike(mut self, from: u64, until: u64, extra_micros: u64) -> Self {
        self.spikes.push((Window { from, until }, extra_micros));
        self
    }

    /// Sets a background per-operation failure probability, sampled from
    /// the plan's seeded RNG stream (deterministic per seed).
    pub fn error_rate(mut self, p: f64) -> Self {
        self.error_rate = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the `retry_after` hint attached to failures that have no
    /// scheduled end (partition, drop-next, probabilistic errors).
    pub fn retry_hint(mut self, micros: u64) -> Self {
        self.retry_hint = Some(micros);
        self
    }

    /// Schedules a process crash at `at_micros`, tearing
    /// `torn_tail_bytes` off the stable medium's tail (the in-flight
    /// write). Delivered via [`FaultPlan::take_crash`], never by
    /// [`FaultPlan::assess`].
    pub fn crash(mut self, at_micros: u64, torn_tail_bytes: u64) -> Self {
        self.crashes.push(CrashEvent {
            at_micros,
            torn_tail_bytes,
        });
        self
    }

    /// Finishes the plan.
    pub fn build(mut self) -> FaultPlan {
        self.crashes.sort_by_key(|c| c.at_micros);
        FaultPlan {
            outages: self.outages.into(),
            partitions: self.partitions.into(),
            timeouts: self.timeouts.into(),
            spikes: self.spikes.into(),
            crashes: self.crashes.into(),
            error_rate: self.error_rate,
            retry_hint: self.retry_hint,
            state: Arc::new(Mutex::new(PlanState {
                drop_next: 0,
                partitioned: false,
                next_crash: 0,
                rng: SimRng::seeded(self.seed ^ 0xFA11_FA11_FA11_FA11),
                counters: FaultCounters::default(),
            })),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fails() {
        let clock = VirtualClock::new();
        let plan = FaultPlan::none();
        for _ in 0..100 {
            assert!(plan.assess(&clock).is_ok());
            clock.advance(1_000);
        }
        assert_eq!(plan.counters().failures_injected, 0);
        assert_eq!(plan.counters().ops_assessed, 100);
    }

    #[test]
    fn outage_window_fails_with_remaining_hint() {
        let clock = VirtualClock::new();
        let plan = FaultPlan::builder(1).outage(100, 300).build();
        assert!(plan.assess(&clock).is_ok(), "before the window");
        clock.advance(150);
        let err = plan.assess(&clock).unwrap_err();
        assert_eq!(err.kind, FaultErrorKind::Unavailable);
        assert_eq!(err.retry_after, Some(150));
        clock.advance(150);
        assert!(plan.assess(&clock).is_ok(), "window end is exclusive");
    }

    #[test]
    fn timeout_window_fails_as_timeout() {
        let clock = VirtualClock::new();
        let plan = FaultPlan::builder(1).timeout(0, 50).build();
        let err = plan.assess(&clock).unwrap_err();
        assert_eq!(err.kind, FaultErrorKind::Timeout);
        assert_eq!(err.retry_after, Some(50));
    }

    #[test]
    fn drop_next_consumes_exactly_n() {
        let clock = VirtualClock::new();
        let plan = FaultPlan::none();
        plan.drop_next(2);
        assert!(plan.assess(&clock).is_err());
        assert!(plan.assess(&clock).is_err());
        assert!(plan.assess(&clock).is_ok());
    }

    #[test]
    fn partition_toggles() {
        let clock = VirtualClock::new();
        let plan = FaultPlan::builder(1).retry_hint(500).build();
        plan.set_partitioned(true);
        assert!(plan.is_partitioned());
        let err = plan.assess(&clock).unwrap_err();
        assert_eq!(err.retry_after, Some(500));
        plan.set_partitioned(false);
        assert!(plan.assess(&clock).is_ok());
    }

    #[test]
    fn partition_window_fails_until_heal() {
        let clock = VirtualClock::new();
        let plan = FaultPlan::builder(1).partition(200, 600).build();
        assert!(plan.assess(&clock).is_ok(), "before the partition");
        assert!(!plan.in_partition_window(&clock));
        clock.advance(250);
        assert!(plan.in_partition_window(&clock));
        let err = plan.assess(&clock).unwrap_err();
        assert_eq!(err.kind, FaultErrorKind::Unavailable);
        assert_eq!(err.retry_after, Some(350), "hint points at the heal");
        clock.advance(350);
        assert!(plan.assess(&clock).is_ok(), "healed at the window end");
        assert!(!plan.in_partition_window(&clock));
        assert!(!plan.is_partitioned(), "the manual toggle is untouched");
    }

    #[test]
    fn latency_spike_charges_clock() {
        let clock = VirtualClock::new();
        let plan = FaultPlan::builder(1).latency_spike(0, 100, 7_000).build();
        assert!(plan.assess(&clock).is_ok());
        assert_eq!(clock.now().as_micros(), 7_000);
        assert_eq!(plan.counters().spikes_applied, 1);
        clock.advance(100_000);
        let before = clock.now();
        assert!(plan.assess(&clock).is_ok());
        assert_eq!(clock.now(), before.plus(0), "outside the spike window");
    }

    #[test]
    fn error_rate_is_deterministic_per_seed() {
        let run = |seed| {
            let clock = VirtualClock::new();
            let plan = FaultPlan::builder(seed).error_rate(0.3).build();
            (0..200)
                .map(|_| plan.assess(&clock).is_err())
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(9), run(9), "same seed, same failure sequence");
        assert_ne!(run(9), run(10), "different seeds diverge");
        let failures = run(9).iter().filter(|&&f| f).count();
        assert!((30..90).contains(&failures), "rate in the ballpark");
    }

    #[test]
    fn clones_share_state() {
        let clock = VirtualClock::new();
        let plan = FaultPlan::none();
        let other = plan.clone();
        plan.drop_next(1);
        assert!(other.assess(&clock).is_err(), "clone sees the drop counter");
        assert!(plan.assess(&clock).is_ok());
        assert_eq!(plan.counters(), other.counters());
    }

    #[test]
    fn crashes_fire_once_in_schedule_order() {
        let clock = VirtualClock::new();
        let plan = FaultPlan::builder(1)
            .crash(5_000, 7)
            .crash(1_000, 3)
            .build();
        assert_eq!(plan.take_crash(&clock), None, "nothing scheduled yet");
        clock.advance(2_000);
        assert_eq!(
            plan.take_crash(&clock),
            Some(CrashEvent {
                at_micros: 1_000,
                torn_tail_bytes: 3
            }),
            "earliest crash fires first even if added last"
        );
        assert_eq!(plan.take_crash(&clock), None, "each crash fires once");
        clock.advance(10_000);
        assert_eq!(
            plan.take_crash(&clock),
            Some(CrashEvent {
                at_micros: 5_000,
                torn_tail_bytes: 7
            })
        );
        assert_eq!(plan.take_crash(&clock), None);
        assert_eq!(plan.counters().crashes_fired, 2);
    }

    #[test]
    fn crashes_do_not_disturb_assess() {
        let clock = VirtualClock::new();
        let plan = FaultPlan::builder(1).crash(0, 4).build();
        assert!(plan.assess(&clock).is_ok(), "assess never fires crashes");
        assert_eq!(plan.counters().crashes_fired, 0);
        assert!(plan.take_crash(&clock).is_some());
    }

    #[test]
    fn display_is_informative() {
        let err = FaultError {
            kind: FaultErrorKind::Timeout,
            retry_after: Some(42),
        };
        let s = err.to_string();
        assert!(s.contains("timed out") && s.contains("42"), "{s}");
    }
}
