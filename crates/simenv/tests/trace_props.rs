//! Property tests for the workload generators: same-seed determinism,
//! universe bounds, and the locality knob of the million-user trace model.

use placeless_simenv::rng::SimRng;
use placeless_simenv::trace::{TraceBuilder, ZipfSampler};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A `ZipfSampler` replays bit-for-bit from the same seed: two RNGs
    /// seeded alike drive identical rank sequences.
    #[test]
    fn zipf_same_seed_replays(seed in 1u64..1_000_000, n in 1usize..2_000,
                              theta in 0.0f64..1.5) {
        let sampler = ZipfSampler::new(n, theta);
        let mut a = SimRng::seeded(seed);
        let mut b = SimRng::seeded(seed);
        for _ in 0..64 {
            let ra = sampler.sample(&mut a);
            let rb = sampler.sample(&mut b);
            prop_assert_eq!(ra, rb);
            prop_assert!(ra < n);
        }
    }

    /// Different seeds drive the sampler onto diverging rank sequences
    /// (for any universe big enough that collisions aren't forced).
    #[test]
    fn zipf_seeds_diverge(seed in 1u64..1_000_000, n in 32usize..2_000) {
        let sampler = ZipfSampler::new(n, 0.9);
        let mut a = SimRng::seeded(seed);
        let mut b = SimRng::seeded(seed ^ 0xDEAD_BEEF);
        let sa: Vec<_> = (0..64).map(|_| sampler.sample(&mut a)).collect();
        let sb: Vec<_> = (0..64).map(|_| sampler.sample(&mut b)).collect();
        prop_assert_ne!(sa, sb);
    }

    /// A trace stream is a pure function of `(seed, stream_id)`: rebuilding
    /// the sampler and replaying the stream reproduces every event, and all
    /// events stay inside the configured universes.
    #[test]
    fn trace_same_seed_replays(seed in 0u64..1_000_000, stream in 0u64..64,
                               users in 1usize..10_000, docs in 1usize..4_096,
                               locality in 0.0f64..1.0, writes in 0.0f64..1.0) {
        let build = || {
            TraceBuilder::new(seed)
                .users(users)
                .documents(docs)
                .locality(locality)
                .write_fraction(writes)
                .build()
        };
        let sampler_a = build();
        let sampler_b = build();
        let mut a = sampler_a.stream(stream);
        let mut b = sampler_b.stream(stream);
        for _ in 0..64 {
            let ea = sampler_a.next_event(&mut a);
            let eb = sampler_b.next_event(&mut b);
            prop_assert_eq!(ea, eb);
            prop_assert!(ea.user < users && ea.doc < docs);
        }
    }

    /// Distinct stream ids diverge even under one seed, so per-thread
    /// streams don't accidentally mirror each other.
    #[test]
    fn trace_streams_diverge(seed in 0u64..1_000_000, stream in 0u64..1_000) {
        let sampler = TraceBuilder::new(seed).users(10_000).documents(4_096).build();
        let mut a = sampler.stream(stream);
        let mut b = sampler.stream(stream + 1);
        let ea: Vec<_> = (0..64).map(|_| sampler.next_event(&mut a)).collect();
        let eb: Vec<_> = (0..64).map(|_| sampler.next_event(&mut b)).collect();
        prop_assert_ne!(ea, eb);
    }

    /// With locality pinned to 1.0 every access lands in the acting user's
    /// working set; with 0.0 the working-set path is never taken, so the
    /// trace is insensitive to the working-set size.
    #[test]
    fn trace_locality_extremes(seed in 0u64..1_000_000, ws in 1usize..16) {
        let local = TraceBuilder::new(seed)
            .users(100)
            .documents(2_048)
            .working_set(ws)
            .locality(1.0)
            .build();
        let mut rng = local.stream(0);
        for _ in 0..32 {
            let e = local.next_event(&mut rng);
            let in_set = (0..ws).any(|s| local.working_doc(e.user, s) == e.doc);
            prop_assert!(in_set, "doc {} escaped the working set", e.doc);
        }

        let base = TraceBuilder::new(seed)
            .users(100)
            .documents(2_048)
            .working_set(1)
            .locality(0.0);
        let global_a = base.clone().build();
        let global_b = base.working_set(ws).build();
        let mut a = global_a.stream(3);
        let mut b = global_b.stream(3);
        for _ in 0..32 {
            prop_assert_eq!(global_a.next_event(&mut a), global_b.next_event(&mut b));
        }
    }
}
