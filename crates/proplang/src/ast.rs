//! PropLang abstract syntax.
//!
//! A program is a list of `@`-directives (caching metadata) followed by a
//! pipeline of transform stages. Example:
//!
//! ```text
//! @cost(800)
//! @cacheable(events)
//! @watch_ext("stock:XRX")
//! upper | replace("teh", "the") | if(prop("lang") == "fr", append(" [fr]"))
//! ```

use placeless_core::cacheability::Cacheability;

/// Which paths a program's pipeline runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RunOn {
    /// The read path only (the default).
    #[default]
    Read,
    /// The write path only.
    Write,
    /// Both paths.
    Both,
}

impl RunOn {
    /// Returns `true` if the pipeline runs on reads.
    pub fn reads(self) -> bool {
        matches!(self, RunOn::Read | RunOn::Both)
    }

    /// Returns `true` if the pipeline runs on writes.
    pub fn writes(self) -> bool {
        matches!(self, RunOn::Write | RunOn::Both)
    }
}

/// One transform stage in a pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum Stage {
    /// Uppercase the content.
    Upper,
    /// Lowercase the content.
    Lower,
    /// Trim leading/trailing whitespace.
    Trim,
    /// ROT13 the content.
    Rot13,
    /// Replace all occurrences of the first string with the second.
    Replace(String, String),
    /// Prepend a string.
    Prepend(String),
    /// Append a string.
    Append(String),
    /// Keep the first `n` sentences.
    FirstSentences(i64),
    /// Keep the first `n` lines.
    TakeLines(i64),
    /// Append the current value of a named external source.
    AppendExt(String),
    /// Substitute `${prop:NAME}` and `${ext:NAME}` placeholders in the
    /// content.
    Subst,
    /// Word-wrap to at most `n` columns.
    Wrap(i64),
    /// Prefix each line with its 1-based number.
    NumberLines,
    /// Replace every occurrence of the word with `█` characters.
    Redact(String),
    /// Keep only the first `n` bytes (on a char boundary).
    HeadBytes(i64),
    /// Run the inner stage only when the condition holds.
    If(Cond, Box<Stage>),
}

/// A condition over the document's visible static properties.
#[derive(Debug, Clone, PartialEq)]
pub enum Cond {
    /// `prop("name") == "value"`
    PropEquals(String, String),
    /// `prop("name") != "value"`
    PropNotEquals(String, String),
    /// `prop("name")` — the property exists.
    PropExists(String),
    /// `!cond`
    Not(Box<Cond>),
}

/// A parsed PropLang program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// The transform pipeline, applied left to right.
    pub stages: Vec<Stage>,
    /// Declared execution cost in microseconds (`@cost(n)`).
    pub cost_micros: Option<u64>,
    /// Declared cacheability vote (`@cacheable(unrestricted|events|never)`).
    pub cacheability: Option<Cacheability>,
    /// TTL verifier to ship with reads (`@ttl(micros)`).
    pub ttl_micros: Option<u64>,
    /// External sources whose changes invalidate cached results
    /// (`@watch_ext("name")`).
    pub watch_ext: Vec<String>,
    /// Which paths the pipeline runs on (`@on(read|write|both)`).
    pub run_on: RunOn,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_program_is_empty() {
        let p = Program::default();
        assert!(p.stages.is_empty());
        assert_eq!(p.cost_micros, None);
        assert_eq!(p.cacheability, None);
    }

    #[test]
    fn stages_compare_structurally() {
        assert_eq!(
            Stage::Replace("a".into(), "b".into()),
            Stage::Replace("a".into(), "b".into())
        );
        assert_ne!(Stage::Upper, Stage::Lower);
        let cond = Cond::Not(Box::new(Cond::PropExists("x".into())));
        assert_eq!(cond.clone(), cond);
    }
}
