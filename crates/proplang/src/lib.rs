//! # PropLang: runtime-authored active properties
//!
//! The original Placeless system attached *executable* properties to
//! documents — Java objects loaded at runtime. A statically compiled Rust
//! reproduction cannot load code, so PropLang closes the gap: a small
//! interpreted transform language whose programs are plain strings,
//! attachable to documents through the property registry and executed on
//! the read path.
//!
//! ```text
//! @cost(800)                      # replacement/execution cost in µs
//! @cacheable(events)              # cacheability vote
//! @ttl(5000000)                   # ship a TTL verifier
//! @watch_ext("stock:XRX")         # ship an epoch verifier
//! upper | replace("teh", "the") | if(prop("lang") == "fr", append(" [fr]"))
//! ```
//!
//! See [`property::ScriptProperty`] for the [`placeless_core::property::ActiveProperty`]
//! bridge and [`property::register_proplang`] for registry integration.

pub mod ast;
pub mod interp;
pub mod parser;
pub mod property;
pub mod token;

pub use ast::{Cond, Program, Stage};
pub use interp::{run, ExtEnv};
pub use parser::parse;
pub use property::{register_proplang, ScriptProperty};
