//! PropLang recursive-descent parser.

use crate::ast::{Cond, Program, RunOn, Stage};
use crate::token::{lex, Token};
use placeless_core::cacheability::Cacheability;
use placeless_core::error::{PlacelessError, Result};

/// Parses a PropLang source string into a [`Program`].
pub fn parse(source: &str) -> Result<Program> {
    let tokens = lex(source)?;
    Parser {
        tokens,
        position: 0,
    }
    .program()
}

struct Parser {
    tokens: Vec<Token>,
    position: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.position)
    }

    fn next(&mut self) -> Option<Token> {
        let token = self.tokens.get(self.position).cloned();
        if token.is_some() {
            self.position += 1;
        }
        token
    }

    fn expect(&mut self, expected: &Token) -> Result<()> {
        match self.next() {
            Some(ref token) if token == expected => Ok(()),
            other => Err(err(format!("expected {expected:?}, found {other:?}"))),
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(name)) => Ok(name),
            other => Err(err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn string(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Str(s)) => Ok(s),
            other => Err(err(format!("expected string, found {other:?}"))),
        }
    }

    fn int(&mut self) -> Result<i64> {
        match self.next() {
            Some(Token::Int(i)) => Ok(i),
            other => Err(err(format!("expected integer, found {other:?}"))),
        }
    }

    fn program(&mut self) -> Result<Program> {
        let mut program = Program::default();
        loop {
            match self.peek() {
                None => break,
                Some(Token::Sep) => {
                    self.next();
                }
                Some(Token::At) => {
                    self.next();
                    self.directive(&mut program)?;
                }
                Some(_) => {
                    if !program.stages.is_empty() {
                        return Err(err("multiple pipelines; use `|` to chain".to_owned()));
                    }
                    program.stages = self.pipeline()?;
                }
            }
        }
        Ok(program)
    }

    fn directive(&mut self, program: &mut Program) -> Result<()> {
        let name = self.ident()?;
        self.expect(&Token::LParen)?;
        match name.as_str() {
            "cost" => {
                let micros = self.int()?;
                if micros < 0 {
                    return Err(err("@cost must be non-negative".to_owned()));
                }
                program.cost_micros = Some(micros as u64);
            }
            "ttl" => {
                let micros = self.int()?;
                if micros < 0 {
                    return Err(err("@ttl must be non-negative".to_owned()));
                }
                program.ttl_micros = Some(micros as u64);
            }
            "cacheable" => {
                let level = self.ident()?;
                program.cacheability = Some(match level.as_str() {
                    "unrestricted" => Cacheability::Unrestricted,
                    "events" => Cacheability::CacheableWithEvents,
                    "never" => Cacheability::Uncacheable,
                    other => {
                        return Err(err(format!(
                            "unknown cacheability `{other}` (unrestricted|events|never)"
                        )))
                    }
                });
            }
            "watch_ext" => {
                let name = self.string()?;
                program.watch_ext.push(name);
            }
            "on" => {
                let path = self.ident()?;
                program.run_on = match path.as_str() {
                    "read" => RunOn::Read,
                    "write" => RunOn::Write,
                    "both" => RunOn::Both,
                    other => return Err(err(format!("unknown path `{other}` (read|write|both)"))),
                };
            }
            other => return Err(err(format!("unknown directive `@{other}`"))),
        }
        self.expect(&Token::RParen)
    }

    fn pipeline(&mut self) -> Result<Vec<Stage>> {
        let mut stages = vec![self.stage()?];
        while self.peek() == Some(&Token::Pipe) {
            self.next();
            stages.push(self.stage()?);
        }
        Ok(stages)
    }

    fn stage(&mut self) -> Result<Stage> {
        let name = self.ident()?;
        match name.as_str() {
            "upper" => Ok(Stage::Upper),
            "lower" => Ok(Stage::Lower),
            "trim" => Ok(Stage::Trim),
            "rot13" => Ok(Stage::Rot13),
            "subst" => Ok(Stage::Subst),
            "replace" => {
                self.expect(&Token::LParen)?;
                let from = self.string()?;
                self.expect(&Token::Comma)?;
                let to = self.string()?;
                self.expect(&Token::RParen)?;
                if from.is_empty() {
                    return Err(err("replace() needs a non-empty pattern".to_owned()));
                }
                Ok(Stage::Replace(from, to))
            }
            "prepend" => {
                self.expect(&Token::LParen)?;
                let s = self.string()?;
                self.expect(&Token::RParen)?;
                Ok(Stage::Prepend(s))
            }
            "append" => {
                self.expect(&Token::LParen)?;
                let s = self.string()?;
                self.expect(&Token::RParen)?;
                Ok(Stage::Append(s))
            }
            "first_sentences" => {
                self.expect(&Token::LParen)?;
                let n = self.int()?;
                self.expect(&Token::RParen)?;
                if n < 1 {
                    return Err(err("first_sentences() needs n >= 1".to_owned()));
                }
                Ok(Stage::FirstSentences(n))
            }
            "take_lines" => {
                self.expect(&Token::LParen)?;
                let n = self.int()?;
                self.expect(&Token::RParen)?;
                if n < 0 {
                    return Err(err("take_lines() needs n >= 0".to_owned()));
                }
                Ok(Stage::TakeLines(n))
            }
            "wrap" => {
                self.expect(&Token::LParen)?;
                let n = self.int()?;
                self.expect(&Token::RParen)?;
                if n < 1 {
                    return Err(err("wrap() needs a width >= 1".to_owned()));
                }
                Ok(Stage::Wrap(n))
            }
            "number_lines" => Ok(Stage::NumberLines),
            "redact" => {
                self.expect(&Token::LParen)?;
                let word = self.string()?;
                self.expect(&Token::RParen)?;
                if word.is_empty() {
                    return Err(err("redact() needs a non-empty word".to_owned()));
                }
                Ok(Stage::Redact(word))
            }
            "head_bytes" => {
                self.expect(&Token::LParen)?;
                let n = self.int()?;
                self.expect(&Token::RParen)?;
                if n < 0 {
                    return Err(err("head_bytes() needs n >= 0".to_owned()));
                }
                Ok(Stage::HeadBytes(n))
            }
            "append_ext" => {
                self.expect(&Token::LParen)?;
                let name = self.string()?;
                self.expect(&Token::RParen)?;
                Ok(Stage::AppendExt(name))
            }
            "if" => {
                self.expect(&Token::LParen)?;
                let cond = self.cond()?;
                self.expect(&Token::Comma)?;
                let inner = self.stage()?;
                self.expect(&Token::RParen)?;
                Ok(Stage::If(cond, Box::new(inner)))
            }
            other => Err(err(format!("unknown transform `{other}`"))),
        }
    }

    fn cond(&mut self) -> Result<Cond> {
        if self.peek() == Some(&Token::Bang) {
            self.next();
            return Ok(Cond::Not(Box::new(self.cond()?)));
        }
        let name = self.ident()?;
        if name != "prop" {
            return Err(err(format!(
                "conditions start with prop(...), got `{name}`"
            )));
        }
        self.expect(&Token::LParen)?;
        let prop = self.string()?;
        self.expect(&Token::RParen)?;
        match self.peek() {
            Some(Token::EqEq) => {
                self.next();
                let value = self.string()?;
                Ok(Cond::PropEquals(prop, value))
            }
            Some(Token::NotEq) => {
                self.next();
                let value = self.string()?;
                Ok(Cond::PropNotEquals(prop, value))
            }
            _ => Ok(Cond::PropExists(prop)),
        }
    }
}

fn err(message: String) -> PlacelessError {
    PlacelessError::Script(message)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_pipeline() {
        let program = parse(r#"upper | replace("a", "b") | append("!")"#).unwrap();
        assert_eq!(
            program.stages,
            vec![
                Stage::Upper,
                Stage::Replace("a".into(), "b".into()),
                Stage::Append("!".into()),
            ]
        );
    }

    #[test]
    fn parses_on_directive() {
        assert_eq!(parse("@on(write)\nupper").unwrap().run_on, RunOn::Write);
        assert_eq!(parse("@on(both)\nupper").unwrap().run_on, RunOn::Both);
        assert_eq!(parse("upper").unwrap().run_on, RunOn::Read);
        assert!(parse("@on(sideways)").is_err());
    }

    #[test]
    fn parses_directives() {
        let program =
            parse("@cost(800)\n@cacheable(events)\n@ttl(5000)\n@watch_ext(\"stock:XRX\")\nupper")
                .unwrap();
        assert_eq!(program.cost_micros, Some(800));
        assert_eq!(
            program.cacheability,
            Some(Cacheability::CacheableWithEvents)
        );
        assert_eq!(program.ttl_micros, Some(5_000));
        assert_eq!(program.watch_ext, vec!["stock:XRX"]);
        assert_eq!(program.stages, vec![Stage::Upper]);
    }

    #[test]
    fn parses_conditionals() {
        let program = parse(r#"if(prop("lang") == "fr", append(" [fr]"))"#).unwrap();
        assert_eq!(
            program.stages,
            vec![Stage::If(
                Cond::PropEquals("lang".into(), "fr".into()),
                Box::new(Stage::Append(" [fr]".into()))
            )]
        );
        let program = parse(r#"if(!prop("draft"), prepend("FINAL: "))"#).unwrap();
        assert_eq!(
            program.stages,
            vec![Stage::If(
                Cond::Not(Box::new(Cond::PropExists("draft".into()))),
                Box::new(Stage::Prepend("FINAL: ".into()))
            )]
        );
    }

    #[test]
    fn parses_not_equals() {
        let program = parse(r#"if(prop("lang") != "en", upper)"#).unwrap();
        assert_eq!(
            program.stages,
            vec![Stage::If(
                Cond::PropNotEquals("lang".into(), "en".into()),
                Box::new(Stage::Upper)
            )]
        );
    }

    #[test]
    fn empty_program_is_identity() {
        let program = parse("").unwrap();
        assert!(program.stages.is_empty());
        let program = parse("@cost(10)").unwrap();
        assert!(program.stages.is_empty());
        assert_eq!(program.cost_micros, Some(10));
    }

    #[test]
    fn rejects_bad_programs() {
        assert!(parse("unknown_transform").is_err());
        assert!(parse("@unknown(1)").is_err());
        assert!(parse("@cost(-5)").is_err());
        assert!(parse("@cacheable(sometimes)").is_err());
        assert!(parse(r#"replace("", "x")"#).is_err());
        assert!(parse("first_sentences(0)").is_err());
        assert!(parse("upper\nlower").is_err(), "two pipelines need a pipe");
        assert!(parse(r#"if(other("x"), upper)"#).is_err());
        assert!(parse("replace(\"a\"").is_err(), "unclosed paren");
    }

    #[test]
    fn directives_may_interleave_after_pipeline() {
        let program = parse("upper\n@cost(10)").unwrap();
        assert_eq!(program.stages, vec![Stage::Upper]);
        assert_eq!(program.cost_micros, Some(10));
    }
}
