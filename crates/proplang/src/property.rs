//! PropLang programs as attachable active properties.
//!
//! [`ScriptProperty`] wraps a parsed program in the
//! [`ActiveProperty`] interface: the pipeline transforms the read path, the
//! `@cacheable` directive becomes the cacheability vote, `@cost` the
//! execution/replacement cost, `@ttl` ships a TTL verifier, and
//! `@watch_ext` ships epoch verifiers over the named external sources.
//!
//! [`register_proplang`] exposes the whole mechanism through the property
//! registry: `attach_by_name(..., "proplang", {name, source})` turns a
//! *string written at runtime* into live document behaviour — the paper's
//! executable attached properties without dynamic code loading.

use crate::ast::Program;
use crate::interp::{run, ExtEnv};
use crate::parser::parse;
use bytes::Bytes;
use placeless_core::error::{PlacelessError, Result};
use placeless_core::event::{EventKind, Interests};
use placeless_core::property::{ActiveProperty, PathCtx, PathReport};
use placeless_core::registry::PropertyRegistry;
use placeless_core::streams::{InputStream, OutputStream, TransformingInput, TransformingOutput};
use placeless_core::verifier::{EpochVerifier, TtlVerifier};
use std::sync::Arc;

/// A runtime-authored active property backed by the PropLang interpreter.
pub struct ScriptProperty {
    name: String,
    /// The program text, retained so the transform token can fingerprint
    /// it: editing a script re-keys every downstream stage signature.
    source: String,
    program: Program,
    env: ExtEnv,
}

impl ScriptProperty {
    /// Compiles `source` into an attachable property.
    pub fn compile(name: &str, source: &str, env: ExtEnv) -> Result<Arc<Self>> {
        Ok(Arc::new(Self {
            name: format!("proplang:{name}"),
            source: source.to_owned(),
            program: parse(source)?,
            env,
        }))
    }

    /// Returns the parsed program (for inspection).
    pub fn program(&self) -> &Program {
        &self.program
    }
}

impl ActiveProperty for ScriptProperty {
    fn name(&self) -> &str {
        &self.name
    }

    fn interests(&self) -> Interests {
        let mut interests = Interests::NONE;
        if self.program.run_on.reads() {
            interests = interests.and(EventKind::GetInputStream);
        }
        if self.program.run_on.writes() {
            interests = interests.and(EventKind::GetOutputStream);
        }
        interests
    }

    fn execution_cost_micros(&self) -> u64 {
        // Declared cost, or a default proportional to pipeline length (an
        // interpreted stage is pricier than a compiled one).
        self.program
            .cost_micros
            .unwrap_or(200 + 100 * self.program.stages.len() as u64)
    }

    fn wrap_output(
        &self,
        ctx: &PathCtx<'_>,
        _report: &mut PathReport,
        inner: Box<dyn OutputStream>,
    ) -> Result<Box<dyn OutputStream>> {
        if !self.program.run_on.writes() {
            return Ok(inner);
        }
        let program = self.program.clone();
        let env = self.env.clone();
        let props: Vec<(String, String)> = collect_props(ctx, &program);
        Ok(Box::new(TransformingOutput::new(
            inner,
            Box::new(move |bytes| {
                let lookup = |name: &str| {
                    props
                        .iter()
                        .find(|(n, _)| n == name)
                        .map(|(_, v)| v.clone())
                };
                Ok(Bytes::from(run(&program, &bytes, &lookup, &env)?))
            }),
        )))
    }

    fn wrap_input(
        &self,
        ctx: &PathCtx<'_>,
        report: &mut PathReport,
        inner: Box<dyn InputStream>,
    ) -> Result<Box<dyn InputStream>> {
        if !self.program.run_on.reads() {
            return Ok(inner);
        }
        if let Some(vote) = self.program.cacheability {
            report.vote(vote);
        }
        if let Some(ttl) = self.program.ttl_micros {
            report.add_verifier(TtlVerifier::for_ttl(ctx.clock.now(), ttl));
        }
        for name in &self.program.watch_ext {
            let source = self.env.get(name).ok_or_else(|| {
                PlacelessError::Script(format!("@watch_ext: unknown source `{name}`"))
            })?;
            report.add_verifier(EpochVerifier::pinned(source));
        }

        // Snapshot the property values the interpreter may consult; the
        // snapshot outlives the lazily-run transform.
        let program = self.program.clone();
        let env = self.env.clone();
        let props: Vec<(String, String)> = collect_props(ctx, &program);
        Ok(Box::new(TransformingInput::new(
            inner,
            Box::new(move |bytes| {
                let lookup = |name: &str| {
                    props
                        .iter()
                        .find(|(n, _)| n == name)
                        .map(|(_, v)| v.clone())
                };
                Ok(Bytes::from(run(&program, &bytes, &lookup, &env)?))
            }),
        )))
    }

    fn transform_token(&self, ctx: &PathCtx<'_>) -> Option<Vec<u8>> {
        // `subst` resolves `${prop:...}`/`${ext:...}` placeholders found in
        // the *content* at runtime — its dependency set cannot be declared
        // up front, so the stage stays opaque.
        if has_subst(&self.program.stages) {
            return None;
        }
        let mut token = Vec::new();
        push_field(&mut token, self.source.as_bytes());
        // Resolved static properties (already name-sorted): a changed value
        // or shadowing change re-keys every downstream stage.
        for (name, value) in collect_props(ctx, &self.program) {
            push_field(&mut token, name.as_bytes());
            push_field(&mut token, value.as_bytes());
        }
        // Declared external inputs, pinned by epoch — the paper's fourth
        // invalidation cause folded straight into the signature chain.
        let mut externals = ext_inputs(&self.program.stages);
        externals.extend(self.program.watch_ext.iter().cloned());
        externals.sort();
        externals.dedup();
        for name in externals {
            // An unresolvable source makes the read fail later anyway;
            // declare the stage opaque rather than sign a half-truth.
            let source = self.env.get(&name)?;
            push_field(&mut token, name.as_bytes());
            token.extend_from_slice(&source.epoch().to_le_bytes());
        }
        Some(token)
    }
}

/// Appends a length-prefixed field, keeping the token encoding
/// concatenation-unambiguous.
fn push_field(token: &mut Vec<u8>, field: &[u8]) {
    token.extend_from_slice(&(field.len() as u64).to_le_bytes());
    token.extend_from_slice(field);
}

/// Returns `true` if any stage (recursing through `if`) is `subst`.
fn has_subst(stages: &[crate::ast::Stage]) -> bool {
    use crate::ast::Stage;
    stages.iter().any(|stage| match stage {
        Stage::Subst => true,
        Stage::If(_, inner) => has_subst(std::slice::from_ref(inner)),
        _ => false,
    })
}

/// Collects the external sources the pipeline reads (`append_ext`,
/// recursing through `if`).
fn ext_inputs(stages: &[crate::ast::Stage]) -> Vec<String> {
    use crate::ast::Stage;
    let mut out = Vec::new();
    for stage in stages {
        match stage {
            Stage::AppendExt(name) => out.push(name.clone()),
            Stage::If(_, inner) => out.extend(ext_inputs(std::slice::from_ref(inner))),
            _ => {}
        }
    }
    out
}

/// Pre-resolves every property name the program mentions.
fn collect_props(ctx: &PathCtx<'_>, program: &Program) -> Vec<(String, String)> {
    let mut names = Vec::new();
    collect_names(&program.stages, &mut names);
    names.sort();
    names.dedup();
    names
        .into_iter()
        .filter_map(|name| ctx.props.get(&name).map(|value| (name, value.to_string())))
        .collect()
}

fn collect_names(stages: &[crate::ast::Stage], out: &mut Vec<String>) {
    use crate::ast::{Cond, Stage};
    fn cond_names(cond: &Cond, out: &mut Vec<String>) {
        match cond {
            Cond::PropEquals(name, _) | Cond::PropNotEquals(name, _) | Cond::PropExists(name) => {
                out.push(name.clone())
            }
            Cond::Not(inner) => cond_names(inner, out),
        }
    }
    for stage in stages {
        match stage {
            Stage::If(cond, inner) => {
                cond_names(cond, out);
                collect_names(std::slice::from_ref(inner), out);
            }
            Stage::Subst => {
                // `subst` can reference any property; resolve the common
                // ones by scanning is impossible here, so `subst` programs
                // should prefer explicit `if`/`append` forms. Placeholders
                // over unresolved names substitute as empty.
            }
            _ => {}
        }
    }
}

/// Registers the `proplang` kind: parameters `name` (label) and `source`
/// (the program text).
pub fn register_proplang(registry: &PropertyRegistry, env: ExtEnv) {
    registry.register("proplang", move |params| {
        let source = params
            .get_str("source")
            .ok_or_else(|| PlacelessError::BadPropertyParams("`source` is required".to_owned()))?;
        let name = params.get_str("name").unwrap_or("anonymous");
        Ok(ScriptProperty::compile(name, source, env.clone())? as Arc<dyn ActiveProperty>)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use placeless_core::cacheability::Cacheability;
    use placeless_core::content::Params;
    use placeless_core::external::SimpleExternal;
    use placeless_core::prelude::*;
    use placeless_core::verifier::Validity;
    use placeless_simenv::{LatencyModel, VirtualClock};

    const ALICE: UserId = UserId(1);

    fn setup(content: &str) -> (Arc<DocumentSpace>, DocumentId) {
        let space = DocumentSpace::with_middleware_cost(VirtualClock::new(), LatencyModel::FREE);
        let provider = MemoryProvider::new("t", content.to_owned(), 0);
        let doc = space.create_document(ALICE, provider);
        (space, doc)
    }

    #[test]
    fn script_transforms_the_read_path() {
        let (space, doc) = setup("teh draft");
        let prop =
            ScriptProperty::compile("fix", r#"replace("teh", "the") | upper"#, ExtEnv::new())
                .unwrap();
        space
            .attach_active(Scope::Personal(ALICE), doc, prop)
            .unwrap();
        let (bytes, _) = space.read_document(ALICE, doc).unwrap();
        assert_eq!(bytes, "THE DRAFT");
    }

    #[test]
    fn directives_flow_into_the_report() {
        let (space, doc) = setup("content");
        let prop = ScriptProperty::compile(
            "meta",
            "@cost(1234)\n@cacheable(events)\n@ttl(9000)\nupper",
            ExtEnv::new(),
        )
        .unwrap();
        assert_eq!(prop.execution_cost_micros(), 1_234);
        space
            .attach_active(Scope::Personal(ALICE), doc, prop)
            .unwrap();
        let (_, report) = space.read_document(ALICE, doc).unwrap();
        assert_eq!(report.cacheability, Cacheability::CacheableWithEvents);
        // Provider mtime verifier + TTL verifier.
        assert_eq!(report.verifiers.len(), 2);
        assert!(report.cost.raw_micros() >= 1_234.0);
    }

    #[test]
    fn watch_ext_ships_epoch_verifiers() {
        let env = ExtEnv::new();
        let quotes = SimpleExternal::new("stock:XRX", "42.50");
        env.add(quotes.clone());
        let (space, doc) = setup("body");
        let prop = ScriptProperty::compile(
            "quotes",
            "@watch_ext(\"stock:XRX\")\nappend_ext(\"stock:XRX\")",
            env,
        )
        .unwrap();
        space
            .attach_active(Scope::Personal(ALICE), doc, prop)
            .unwrap();
        let (bytes, report) = space.read_document(ALICE, doc).unwrap();
        assert_eq!(bytes, "body42.50");
        let clock = space.clock();
        let epoch_verifier = report.verifiers.last().unwrap();
        assert_eq!(epoch_verifier.check(clock), Validity::Valid);
        quotes.set("43.00");
        assert_eq!(epoch_verifier.check(clock), Validity::Invalid);
    }

    #[test]
    fn conditions_see_document_properties() {
        let (space, doc) = setup("doc");
        space
            .attach_static(Scope::Personal(ALICE), doc, "lang", "fr")
            .unwrap();
        let prop = ScriptProperty::compile(
            "tag",
            r#"if(prop("lang") == "fr", append(" [fr]"))"#,
            ExtEnv::new(),
        )
        .unwrap();
        space
            .attach_active(Scope::Personal(ALICE), doc, prop)
            .unwrap();
        let (bytes, _) = space.read_document(ALICE, doc).unwrap();
        assert_eq!(bytes, "doc [fr]");
    }

    #[test]
    fn registry_attaches_source_strings() {
        let (space, doc) = setup("runtime");
        register_proplang(space.registry(), ExtEnv::new());
        space
            .attach_by_name(
                Scope::Personal(ALICE),
                doc,
                "proplang",
                &Params::new()
                    .with("name", "shout")
                    .with("source", "upper | append(\"!\")"),
            )
            .unwrap();
        let (bytes, _) = space.read_document(ALICE, doc).unwrap();
        assert_eq!(bytes, "RUNTIME!");
    }

    #[test]
    fn bad_source_fails_at_attach_time() {
        let (space, doc) = setup("x");
        register_proplang(space.registry(), ExtEnv::new());
        let err = space
            .attach_by_name(
                Scope::Personal(ALICE),
                doc,
                "proplang",
                &Params::new().with("source", "bogus_transform"),
            )
            .err()
            .unwrap();
        assert!(matches!(err, PlacelessError::Script(_)));
        assert!(space
            .attach_by_name(Scope::Personal(ALICE), doc, "proplang", &Params::new())
            .is_err());
    }

    #[test]
    fn on_write_scripts_transform_the_write_path() {
        let (space, doc) = setup("original");
        let prop = ScriptProperty::compile(
            "normalize",
            "@on(write)\ntrim | replace(\"teh\", \"the\")",
            ExtEnv::new(),
        )
        .unwrap();
        space
            .attach_active(Scope::Personal(ALICE), doc, prop)
            .unwrap();
        space
            .write_document(ALICE, doc, b"  teh saved draft  ")
            .unwrap();
        let (bytes, _) = space.read_document(ALICE, doc).unwrap();
        assert_eq!(bytes, "the saved draft", "write-path pipeline ran");
    }

    #[test]
    fn on_both_scripts_run_twice() {
        let (space, doc) = setup("");
        let prop =
            ScriptProperty::compile("stamp", "@on(both)\nappend(\"+\")", ExtEnv::new()).unwrap();
        space
            .attach_active(Scope::Personal(ALICE), doc, prop)
            .unwrap();
        space.write_document(ALICE, doc, b"x").unwrap();
        let (bytes, _) = space.read_document(ALICE, doc).unwrap();
        assert_eq!(bytes, "x++", "once on write, once on read");
    }

    #[test]
    fn transform_tokens_fingerprint_source_props_and_epochs() {
        let env = ExtEnv::new();
        let quotes = SimpleExternal::new("stock:XRX", "42.50");
        env.add(quotes.clone());
        let (space, doc) = setup("body");
        let lang_id = space
            .attach_static(Scope::Personal(ALICE), doc, "lang", "fr")
            .unwrap();
        let prop = ScriptProperty::compile(
            "quotes",
            "if(prop(\"lang\") == \"fr\", append(\" [fr]\")) | append_ext(\"stock:XRX\")",
            env.clone(),
        )
        .unwrap();
        space
            .attach_active(Scope::Personal(ALICE), doc, prop)
            .unwrap();

        let token = |space: &Arc<DocumentSpace>| {
            let plan = space.read_plan(ALICE, doc).unwrap();
            plan.stages.last().unwrap().token.clone()
        };
        let t0 = token(&space).expect("declared dependencies yield a token");
        assert_eq!(token(&space).unwrap(), t0, "token is stable");

        // An external-source change re-keys the stage.
        quotes.set("43.00");
        let t1 = token(&space).expect("still tokenised");
        assert_ne!(t0, t1, "epoch bump must change the token");

        // A static-property change re-keys the stage.
        space
            .remove_property(Scope::Personal(ALICE), doc, lang_id)
            .unwrap();
        space
            .attach_static(Scope::Personal(ALICE), doc, "lang", "de")
            .unwrap();
        assert_ne!(token(&space).unwrap(), t1, "prop change must re-key");
    }

    #[test]
    fn subst_and_unknown_externals_stay_opaque() {
        let env = ExtEnv::new();
        let (space, doc) = setup("x");
        let subst = ScriptProperty::compile("s", "subst", env.clone()).unwrap();
        space
            .attach_active(Scope::Personal(ALICE), doc, subst)
            .unwrap();
        let plan = space.read_plan(ALICE, doc).unwrap();
        assert!(
            plan.stages.last().unwrap().token.is_none(),
            "subst has an undeclarable dependency set"
        );

        let (space, doc) = setup("x");
        let ghost = ScriptProperty::compile("g", "append_ext(\"ghost\")", ExtEnv::new()).unwrap();
        space
            .attach_active(Scope::Personal(ALICE), doc, ghost)
            .unwrap();
        let plan = space.read_plan(ALICE, doc).unwrap();
        assert!(
            plan.stages.last().unwrap().token.is_none(),
            "unresolvable external source must not be signed"
        );
    }

    #[test]
    fn missing_watch_ext_source_fails_at_read_time() {
        let (space, doc) = setup("x");
        let prop = ScriptProperty::compile("broken", "@watch_ext(\"ghost\")\nupper", ExtEnv::new())
            .unwrap();
        space
            .attach_active(Scope::Personal(ALICE), doc, prop)
            .unwrap();
        assert!(space.read_document(ALICE, doc).is_err());
    }
}
