//! PropLang interpreter.
//!
//! Executes a parsed [`Program`] over document content. The environment
//! supplies the two kinds of outside data a transform may consult: the
//! document's visible static properties and named external sources.

use crate::ast::{Cond, Program, Stage};
use parking_lot::RwLock;
use placeless_core::error::{PlacelessError, Result};
use placeless_core::external::ExternalSource;
use std::collections::HashMap;
use std::sync::Arc;

/// Named external sources a program may reference via `append_ext` /
/// `${ext:...}` / `@watch_ext`.
#[derive(Default, Clone)]
pub struct ExtEnv {
    sources: Arc<RwLock<HashMap<String, Arc<dyn ExternalSource>>>>,
}

impl ExtEnv {
    /// Creates an empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a source under its own name.
    pub fn add(&self, source: Arc<dyn ExternalSource>) {
        self.sources
            .write()
            .insert(source.name().to_owned(), source);
    }

    /// Looks up a source by name.
    pub fn get(&self, name: &str) -> Option<Arc<dyn ExternalSource>> {
        self.sources.read().get(name).cloned()
    }
}

/// Property lookups the interpreter needs: `(name) -> Option<String>`.
pub type PropLookup<'a> = &'a dyn Fn(&str) -> Option<String>;

/// Runs `program` over `input`, using `props` for property lookups and
/// `env` for external sources.
pub fn run(
    program: &Program,
    input: &[u8],
    props: PropLookup<'_>,
    env: &ExtEnv,
) -> Result<Vec<u8>> {
    let mut text = String::from_utf8_lossy(input).into_owned();
    for stage in &program.stages {
        text = run_stage(stage, text, props, env)?;
    }
    Ok(text.into_bytes())
}

fn run_stage(stage: &Stage, text: String, props: PropLookup<'_>, env: &ExtEnv) -> Result<String> {
    Ok(match stage {
        Stage::Upper => text.to_uppercase(),
        Stage::Lower => text.to_lowercase(),
        Stage::Trim => text.trim().to_owned(),
        Stage::Rot13 => text
            .chars()
            .map(|c| match c {
                'a'..='z' => (((c as u8 - b'a' + 13) % 26) + b'a') as char,
                'A'..='Z' => (((c as u8 - b'A' + 13) % 26) + b'A') as char,
                other => other,
            })
            .collect(),
        Stage::Replace(from, to) => text.replace(from.as_str(), to),
        Stage::Prepend(s) => format!("{s}{text}"),
        Stage::Append(s) => format!("{text}{s}"),
        Stage::FirstSentences(n) => {
            let mut out = String::new();
            let mut count = 0;
            for ch in text.chars() {
                out.push(ch);
                if matches!(ch, '.' | '!' | '?') {
                    count += 1;
                    if count >= *n {
                        break;
                    }
                }
            }
            out
        }
        Stage::TakeLines(n) => text
            .lines()
            .take(*n as usize)
            .collect::<Vec<_>>()
            .join("\n"),
        Stage::Wrap(width) => wrap_text(&text, *width as usize),
        Stage::NumberLines => text
            .lines()
            .enumerate()
            .map(|(i, line)| format!("{:>4}  {line}", i + 1))
            .collect::<Vec<_>>()
            .join("\n"),
        Stage::Redact(word) => {
            let mask: String = std::iter::repeat_n('█', word.chars().count()).collect();
            text.replace(word.as_str(), &mask)
        }
        Stage::HeadBytes(n) => {
            let mut end = (*n as usize).min(text.len());
            while end > 0 && !text.is_char_boundary(end) {
                end -= 1;
            }
            text[..end].to_owned()
        }
        Stage::AppendExt(name) => {
            let source = env.get(name).ok_or_else(|| {
                PlacelessError::Script(format!("unknown external source `{name}`"))
            })?;
            format!("{text}{}", String::from_utf8_lossy(&source.read()))
        }
        Stage::Subst => substitute(&text, props, env)?,
        Stage::If(cond, inner) => {
            if eval_cond(cond, props) {
                run_stage(inner, text, props, env)?
            } else {
                text
            }
        }
    })
}

/// Replaces `${prop:NAME}` and `${ext:NAME}` placeholders; unknown names
/// substitute as empty strings.
fn substitute(text: &str, props: PropLookup<'_>, env: &ExtEnv) -> Result<String> {
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(start) = rest.find("${") {
        out.push_str(&rest[..start]);
        let after = &rest[start + 2..];
        let Some(end) = after.find('}') else {
            return Err(PlacelessError::Script("unterminated ${...}".to_owned()));
        };
        let key = &after[..end];
        if let Some(name) = key.strip_prefix("prop:") {
            out.push_str(&props(name).unwrap_or_default());
        } else if let Some(name) = key.strip_prefix("ext:") {
            if let Some(source) = env.get(name) {
                out.push_str(&String::from_utf8_lossy(&source.read()));
            }
        } else {
            return Err(PlacelessError::Script(format!(
                "bad placeholder `${{{key}}}` (use prop: or ext:)"
            )));
        }
        rest = &after[end + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

/// Greedy word wrap at `width` columns; words longer than the width get a
/// line of their own.
fn wrap_text(text: &str, width: usize) -> String {
    let mut out = String::with_capacity(text.len() + 16);
    for (i, line) in text.lines().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        let mut column = 0;
        for word in line.split_whitespace() {
            let len = word.chars().count();
            if column > 0 && column + 1 + len > width {
                out.push('\n');
                column = 0;
            } else if column > 0 {
                out.push(' ');
                column += 1;
            }
            out.push_str(word);
            column += len;
        }
    }
    out
}

fn eval_cond(cond: &Cond, props: PropLookup<'_>) -> bool {
    match cond {
        Cond::PropEquals(name, value) => props(name).as_deref() == Some(value.as_str()),
        Cond::PropNotEquals(name, value) => props(name).as_deref() != Some(value.as_str()),
        Cond::PropExists(name) => props(name).is_some(),
        Cond::Not(inner) => !eval_cond(inner, props),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use placeless_core::external::SimpleExternal;

    fn no_props(_: &str) -> Option<String> {
        None
    }

    fn run_src(src: &str, input: &str) -> String {
        let program = parse(src).unwrap();
        String::from_utf8(run(&program, input.as_bytes(), &no_props, &ExtEnv::new()).unwrap())
            .unwrap()
    }

    #[test]
    fn basic_stages() {
        assert_eq!(run_src("upper", "abc"), "ABC");
        assert_eq!(run_src("lower", "ABC"), "abc");
        assert_eq!(run_src("trim", "  x  "), "x");
        assert_eq!(run_src("rot13", "Hello"), "Uryyb");
        assert_eq!(run_src(r#"replace("a", "o")"#, "banana"), "bonono");
        assert_eq!(run_src(r#"prepend("<")"#, "x"), "<x");
        assert_eq!(run_src(r#"append(">")"#, "x"), "x>");
        assert_eq!(run_src("first_sentences(1)", "A. B."), "A.");
        assert_eq!(run_src("take_lines(2)", "1\n2\n3"), "1\n2");
    }

    #[test]
    fn wrap_reflows_words() {
        assert_eq!(
            run_src("wrap(10)", "one two three four"),
            "one two\nthree four"
        );
        assert_eq!(
            run_src("wrap(5)", "supercalifragilistic"),
            "supercalifragilistic"
        );
        assert_eq!(run_src("wrap(80)", "short line"), "short line");
    }

    #[test]
    fn number_lines_prefixes() {
        assert_eq!(run_src("number_lines", "a\nb"), "   1  a\n   2  b");
    }

    #[test]
    fn redact_masks_words() {
        assert_eq!(
            run_src(r#"redact("secret")"#, "the secret plan"),
            "the ██████ plan"
        );
    }

    #[test]
    fn head_bytes_truncates_on_char_boundary() {
        assert_eq!(run_src("head_bytes(4)", "abcdef"), "abcd");
        assert_eq!(run_src("head_bytes(100)", "short"), "short");
        // 'é' is two bytes; cutting mid-char backs up to the boundary.
        assert_eq!(run_src("head_bytes(2)", "aéb"), "a");
    }

    #[test]
    fn pipeline_composes_left_to_right() {
        assert_eq!(
            run_src(r#"upper | append("!") | replace("B", "8")"#, "abc"),
            "A8C!"
        );
    }

    #[test]
    fn empty_program_is_identity() {
        assert_eq!(run_src("", "unchanged"), "unchanged");
    }

    #[test]
    fn conditionals_consult_properties() {
        let program = parse(r#"if(prop("lang") == "fr", append(" [fr]"))"#).unwrap();
        let fr = |name: &str| (name == "lang").then(|| "fr".to_owned());
        let en = |name: &str| (name == "lang").then(|| "en".to_owned());
        let env = ExtEnv::new();
        assert_eq!(run(&program, b"doc", &fr, &env).unwrap(), b"doc [fr]");
        assert_eq!(run(&program, b"doc", &en, &env).unwrap(), b"doc");
    }

    #[test]
    fn not_and_exists() {
        let program = parse(r#"if(!prop("draft"), prepend("FINAL: "))"#).unwrap();
        let has = |name: &str| (name == "draft").then(|| "yes".to_owned());
        let env = ExtEnv::new();
        assert_eq!(run(&program, b"x", &has, &env).unwrap(), b"x");
        assert_eq!(run(&program, b"x", &no_props, &env).unwrap(), b"FINAL: x");
    }

    #[test]
    fn append_ext_reads_sources() {
        let env = ExtEnv::new();
        env.add(SimpleExternal::new("stock:XRX", "42.50"));
        let program = parse(r#"append(" XRX=") | append_ext("stock:XRX")"#).unwrap();
        assert_eq!(
            run(&program, b"quotes:", &no_props, &env).unwrap(),
            b"quotes: XRX=42.50"
        );
        let missing = parse(r#"append_ext("nope")"#).unwrap();
        assert!(run(&missing, b"", &no_props, &env).is_err());
    }

    #[test]
    fn subst_placeholders() {
        let env = ExtEnv::new();
        env.add(SimpleExternal::new("clock", "9:41"));
        let props = |name: &str| (name == "owner").then(|| "eyal".to_owned());
        let program = parse("subst").unwrap();
        let out = run(
            &program,
            b"by ${prop:owner} at ${ext:clock} (${prop:missing})",
            &props,
            &env,
        )
        .unwrap();
        assert_eq!(out, b"by eyal at 9:41 ()");
    }

    #[test]
    fn subst_rejects_bad_placeholders() {
        let env = ExtEnv::new();
        let program = parse("subst").unwrap();
        assert!(run(&program, b"${unknown:x}", &no_props, &env).is_err());
        assert!(run(&program, b"${prop:unterminated", &no_props, &env).is_err());
    }
}
