//! PropLang tokens and lexer.
//!
//! PropLang is deliberately tiny: identifiers, string and integer literals,
//! pipes, parentheses, commas, the `@` directive marker, `==`/`!=`
//! comparators, and statement separators (newline or `;`). Comments run
//! from `#` to end of line.

use placeless_core::error::{PlacelessError, Result};

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// An identifier or keyword, e.g. `upper`, `replace`, `if`.
    Ident(String),
    /// A double-quoted string literal (supports `\"`, `\\`, `\n`, `\t`).
    Str(String),
    /// An integer literal.
    Int(i64),
    /// `|`
    Pipe,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `@`
    At,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `!`
    Bang,
    /// Statement separator (newline or `;`).
    Sep,
}

/// Lexes a PropLang source string.
pub fn lex(source: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let mut chars = source.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ' ' | '\t' | '\r' => {
                chars.next();
            }
            '\n' | ';' => {
                chars.next();
                // Collapse runs of separators.
                if tokens.last() != Some(&Token::Sep) && !tokens.is_empty() {
                    tokens.push(Token::Sep);
                }
            }
            '#' => {
                for c in chars.by_ref() {
                    if c == '\n' {
                        break;
                    }
                }
                if tokens.last() != Some(&Token::Sep) && !tokens.is_empty() {
                    tokens.push(Token::Sep);
                }
            }
            '|' => {
                chars.next();
                tokens.push(Token::Pipe);
            }
            '(' => {
                chars.next();
                tokens.push(Token::LParen);
            }
            ')' => {
                chars.next();
                tokens.push(Token::RParen);
            }
            ',' => {
                chars.next();
                tokens.push(Token::Comma);
            }
            '@' => {
                chars.next();
                tokens.push(Token::At);
            }
            '=' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    tokens.push(Token::EqEq);
                } else {
                    return Err(PlacelessError::Script("expected `==`".to_owned()));
                }
            }
            '!' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    tokens.push(Token::NotEq);
                } else {
                    tokens.push(Token::Bang);
                }
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some('\\') => match chars.next() {
                            Some('n') => s.push('\n'),
                            Some('t') => s.push('\t'),
                            Some('"') => s.push('"'),
                            Some('\\') => s.push('\\'),
                            other => {
                                return Err(PlacelessError::Script(format!(
                                    "bad escape: {other:?}"
                                )))
                            }
                        },
                        Some(c) => s.push(c),
                        None => {
                            return Err(PlacelessError::Script("unterminated string".to_owned()))
                        }
                    }
                }
                tokens.push(Token::Str(s));
            }
            c if c.is_ascii_digit() || c == '-' => {
                chars.next();
                let mut s = String::from(c);
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let value = s
                    .parse::<i64>()
                    .map_err(|_| PlacelessError::Script(format!("bad integer `{s}`")))?;
                tokens.push(Token::Int(value));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' || d == '-' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(s));
            }
            other => {
                return Err(PlacelessError::Script(format!(
                    "unexpected character `{other}`"
                )))
            }
        }
    }
    // Trim a trailing separator.
    if tokens.last() == Some(&Token::Sep) {
        tokens.pop();
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_a_pipeline() {
        let tokens = lex(r#"upper | replace("teh", "the")"#).unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Ident("upper".into()),
                Token::Pipe,
                Token::Ident("replace".into()),
                Token::LParen,
                Token::Str("teh".into()),
                Token::Comma,
                Token::Str("the".into()),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn lexes_directives_and_ints() {
        let tokens = lex("@cost(500)").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::At,
                Token::Ident("cost".into()),
                Token::LParen,
                Token::Int(500),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn negative_integers() {
        assert_eq!(lex("-42").unwrap(), vec![Token::Int(-42)]);
    }

    #[test]
    fn string_escapes() {
        let tokens = lex(r#""a\nb\t\"c\"\\d""#).unwrap();
        assert_eq!(tokens, vec![Token::Str("a\nb\t\"c\"\\d".into())]);
    }

    #[test]
    fn comments_and_separators_collapse() {
        let tokens = lex("upper # shout\n\n\nlower").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Ident("upper".into()),
                Token::Sep,
                Token::Ident("lower".into()),
            ]
        );
    }

    #[test]
    fn comparators() {
        assert_eq!(lex("==").unwrap(), vec![Token::EqEq]);
        assert_eq!(lex("!=").unwrap(), vec![Token::NotEq]);
        assert_eq!(lex("!").unwrap(), vec![Token::Bang]);
    }

    #[test]
    fn errors_are_reported() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("$").is_err());
        assert!(lex("=").is_err());
        assert!(lex(r#""bad \q escape""#).is_err());
    }

    #[test]
    fn empty_source_lexes_empty() {
        assert_eq!(lex("").unwrap(), vec![]);
        assert_eq!(lex("  \n\n # only a comment\n").unwrap(), vec![]);
    }
}
