//! The interactive Placeless shell.
//!
//! ```text
//! cargo run -p placeless-cli --bin placeless
//! ```
//!
//! Reads commands from stdin (one per line; also works non-interactively:
//! `echo "help" | placeless`).

use placeless_cli::Shell;
use std::io::{BufRead, Write};

fn main() {
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    let mut shell = Shell::new();
    println!("placeless shell — `help` for commands, `quit` to leave");
    loop {
        print!("placeless> ");
        let _ = stdout.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                let output = shell.execute(&line);
                if !output.is_empty() {
                    println!("{output}");
                }
                if shell.is_done() {
                    break;
                }
            }
            Err(err) => {
                eprintln!("stdin error: {err}");
                break;
            }
        }
    }
}
