//! The shell engine: a live space + repositories + cache behind a
//! `line in → text out` interface.

use crate::parser::{parse_line, Command};
use placeless_cache::{CacheConfig, DocumentCache, PrefetchConfig};
use placeless_core::content::{Params, PropertyValue};
use placeless_core::error::{PlacelessError, Result};
use placeless_core::id::{DocumentId, UserId};
use placeless_core::space::{DocumentSpace, Scope};
use placeless_properties::{register_standard, ContentWriteNotifier, PropertyChangeNotifier};
use placeless_proplang::{register_proplang, ExtEnv};
use placeless_repository::{FsProvider, MemFs, WebProvider, WebServer};
use placeless_simenv::{Link, LinkClass, VirtualClock};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

const HELP: &str = "\
commands:
  new fs|web <path> <content...>   create a document over a repository
  ls                               list documents
  read <doc>                       read through the cache
  read! <doc>                      read straight through the middleware
  write <doc> <content...>         write (write-through cache)
  oob <path> <content...>          edit the repository behind Placeless's back
  attach universal|personal <doc> <kind> [param=value...]
  detach universal|personal <doc> <prop-id>
  describe <doc>                   show provider, properties, collections
  collect <name> <doc>             add a document to a collection
  su <user> / adduser <user> <doc> switch user / grant a reference
  stats / tick / clock             cache stats / timer event / virtual time
  help / quit
registered property kinds: spell-corrector translate summarize rot13-at-rest
  compress-at-rest watermark uncacheable ttl qos notify-on-write
  notify-on-property-change proplang (source=\"...\")";

/// The interactive shell state.
pub struct Shell {
    space: Arc<DocumentSpace>,
    cache: Arc<DocumentCache>,
    fs: Arc<MemFs>,
    web: Arc<WebServer>,
    clock: VirtualClock,
    user: UserId,
    paths: BTreeMap<String, DocumentId>,
    done: bool,
}

impl Default for Shell {
    fn default() -> Self {
        Self::new()
    }
}

impl Shell {
    /// Creates a shell over a fresh space with one user, a file system, a
    /// web origin, and a default cache with prefetch enabled.
    pub fn new() -> Self {
        let clock = VirtualClock::new();
        let space = DocumentSpace::new(clock.clone());
        register_standard(space.registry());
        register_proplang(space.registry(), ExtEnv::new());
        let cache = DocumentCache::new(
            space.clone(),
            CacheConfig {
                prefetch: PrefetchConfig::up_to(4),
                ..CacheConfig::default()
            },
        );
        Self {
            fs: MemFs::new(clock.clone()),
            web: WebServer::new("parcweb"),
            clock,
            space,
            cache,
            user: UserId(1),
            paths: BTreeMap::new(),
            done: false,
        }
    }

    /// Returns `true` once `quit` has been issued.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Executes one line, returning the text to show.
    pub fn execute(&mut self, line: &str) -> String {
        match parse_line(line).and_then(|cmd| self.run(cmd)) {
            Ok(output) => output,
            Err(err) => format!("error: {err}"),
        }
    }

    fn resolve(&self, token: &str) -> Result<DocumentId> {
        let raw = token.strip_prefix("doc-").unwrap_or(token);
        let id = raw
            .parse::<u64>()
            .map_err(|_| PlacelessError::BadPropertyParams(format!("bad document `{token}`")))?;
        let doc = DocumentId(id);
        if self.space.documents().contains(&doc) {
            Ok(doc)
        } else {
            Err(PlacelessError::NoSuchDocument(doc))
        }
    }

    fn scope(&self, word: &str) -> Result<Scope> {
        match word {
            "universal" | "u" => Ok(Scope::Universal),
            "personal" | "p" => Ok(Scope::Personal(self.user)),
            other => Err(PlacelessError::BadPropertyParams(format!(
                "scope must be universal|personal, got `{other}`"
            ))),
        }
    }

    fn run(&mut self, cmd: Command) -> Result<String> {
        match cmd {
            Command::Nothing => Ok(String::new()),
            Command::Help => Ok(HELP.to_owned()),
            Command::Quit => {
                self.done = true;
                Ok("bye".to_owned())
            }
            Command::New {
                repo,
                path,
                content,
            } => {
                let provider: Arc<dyn placeless_core::bitprovider::BitProvider> = match repo
                    .as_str()
                {
                    "fs" => {
                        self.fs.create(&path, content);
                        FsProvider::new(self.fs.clone(), &path, Link::of_class(LinkClass::Lan, 1))
                    }
                    "web" => {
                        self.web.publish(&path, content, 60_000_000);
                        WebProvider::new(self.web.clone(), &path, Link::of_class(LinkClass::Wan, 2))
                    }
                    other => {
                        return Err(PlacelessError::BadPropertyParams(format!(
                            "repo must be fs|web, got `{other}`"
                        )))
                    }
                };
                let describe = provider.describe();
                let doc = self.space.create_document(self.user, provider);
                // Sensible defaults: the standard notifiers.
                self.space
                    .attach_active(Scope::Universal, doc, ContentWriteNotifier::any())?;
                self.space
                    .attach_active(Scope::Universal, doc, PropertyChangeNotifier::any())?;
                self.paths.insert(path, doc);
                Ok(format!("{doc} created over {describe}"))
            }
            Command::List => {
                let mut out = String::new();
                for doc in self.space.documents() {
                    let path = self
                        .paths
                        .iter()
                        .find(|(_, &d)| d == doc)
                        .map(|(p, _)| p.as_str())
                        .unwrap_or("?");
                    let users = self.space.users_of(doc).len();
                    let _ = writeln!(out, "{doc}  {path}  ({users} user(s))");
                }
                if out.is_empty() {
                    out.push_str("no documents; try `new fs /a.txt hello`");
                }
                Ok(out.trim_end().to_owned())
            }
            Command::SwitchUser(user) => {
                self.user = UserId(user);
                Ok(format!("now acting as {}", self.user))
            }
            Command::AddReference(user, doc) => {
                let doc = self.resolve(&doc)?;
                self.space.add_reference(UserId(user), doc)?;
                Ok(format!("user-{user} now holds a reference to {doc}"))
            }
            Command::Read(doc) => {
                let doc = self.resolve(&doc)?;
                let t0 = self.clock.now();
                let bytes = self.cache.read(self.user, doc)?;
                let took = self.clock.now().since(t0);
                Ok(format!(
                    "{} ({:.2} ms)",
                    String::from_utf8_lossy(&bytes),
                    took as f64 / 1_000.0
                ))
            }
            Command::ReadDirect(doc) => {
                let doc = self.resolve(&doc)?;
                let t0 = self.clock.now();
                let (bytes, report) = self.space.read_document(self.user, doc)?;
                let took = self.clock.now().since(t0);
                Ok(format!(
                    "{} ({:.2} ms, {:?}, cost {:.0}µs, {} verifier(s))",
                    String::from_utf8_lossy(&bytes),
                    took as f64 / 1_000.0,
                    report.cacheability,
                    report.cost.effective_micros(),
                    report.verifiers.len()
                ))
            }
            Command::Write(doc, content) => {
                let doc = self.resolve(&doc)?;
                self.cache.write(self.user, doc, content.as_bytes())?;
                Ok(format!("wrote {} bytes to {doc}", content.len()))
            }
            Command::OutOfBand(path, content) => {
                if self.fs.exists(&path) {
                    self.fs.write_direct(&path, content)?;
                    Ok(format!("edited {path} behind Placeless's back"))
                } else {
                    self.web.edit_origin(&path, content)?;
                    Ok(format!("edited {path} at the origin"))
                }
            }
            Command::Attach {
                scope,
                doc,
                kind,
                params,
            } => {
                let scope = self.scope(&scope)?;
                let doc = self.resolve(&doc)?;
                let mut map = Params::new();
                for word in &params {
                    let (name, value) = word.split_once('=').ok_or_else(|| {
                        PlacelessError::BadPropertyParams(format!(
                            "expected param=value, got `{word}`"
                        ))
                    })?;
                    map.set(name, typed_value(value));
                }
                let id = self.space.attach_by_name(scope, doc, &kind, &map)?;
                Ok(format!("attached {id}"))
            }
            Command::Detach { scope, doc, prop } => {
                let scope = self.scope(&scope)?;
                let doc = self.resolve(&doc)?;
                self.space
                    .remove_property(scope, doc, placeless_core::id::PropertyId(prop))?;
                Ok(format!("removed prop-{prop}"))
            }
            Command::Describe(doc) => {
                let doc = self.resolve(&doc)?;
                Ok(self
                    .space
                    .describe(self.user, doc)?
                    .to_string()
                    .trim_end()
                    .to_owned())
            }
            Command::Collect(name, doc) => {
                let doc = self.resolve(&doc)?;
                self.space.add_to_collection(&name, doc)?;
                Ok(format!(
                    "{doc} added to `{name}` ({} member(s))",
                    self.space.collection_members(&name).len()
                ))
            }
            Command::Stats => {
                let s = self.cache.stats();
                let (physical, logical) = self.cache.resident_bytes();
                Ok(format!(
                    "hits {} | misses {} | hit rate {} | evictions {}\n\
                     invalidations: notifier {} / verifier {} | replaced in place {}\n\
                     resident: {} B physical, {} B logical | prefetches {}",
                    s.hits,
                    s.misses,
                    s.hit_rate()
                        .map(|r| format!("{:.1}%", r * 100.0))
                        .unwrap_or_else(|| "n/a".to_owned()),
                    s.evictions,
                    s.notifier_invalidations,
                    s.verifier_invalidations,
                    s.verifier_replacements,
                    physical,
                    logical,
                    s.prefetches
                ))
            }
            Command::Tick => {
                self.space.timer_tick()?;
                Ok("tick".to_owned())
            }
            Command::Clock => Ok(format!(
                "virtual time: {:.3} s",
                self.clock.now().as_micros() as f64 / 1e6
            )),
        }
    }
}

/// Types a raw shell value: integers and floats and booleans parse to
/// their kinds, everything else stays a string.
fn typed_value(raw: &str) -> PropertyValue {
    if let Ok(i) = raw.parse::<i64>() {
        return PropertyValue::Int(i);
    }
    if let Ok(x) = raw.parse::<f64>() {
        return PropertyValue::Float(x);
    }
    match raw {
        "true" => PropertyValue::Bool(true),
        "false" => PropertyValue::Bool(false),
        other => PropertyValue::Str(other.to_owned()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(shell: &mut Shell, line: &str) -> String {
        shell.execute(line)
    }

    #[test]
    fn create_read_write_session() {
        let mut shell = Shell::new();
        let out = run(&mut shell, "new fs /notes.txt hello placeless world");
        assert!(out.contains("doc-0 created over fs:/notes.txt"), "{out}");
        assert!(run(&mut shell, "read doc-0").starts_with("hello placeless world"));
        run(&mut shell, "write doc-0 updated text");
        assert!(run(&mut shell, "read doc-0").starts_with("updated text"));
    }

    #[test]
    fn attach_transforms_the_view() {
        let mut shell = Shell::new();
        run(&mut shell, "new fs /d.txt hello world");
        let out = run(
            &mut shell,
            "attach personal doc-0 translate language=\"fr\"",
        );
        assert!(out.starts_with("attached prop-"), "{out}");
        assert!(run(&mut shell, "read doc-0").starts_with("bonjour monde"));
        // Another user sees the original.
        run(&mut shell, "adduser 2 doc-0");
        run(&mut shell, "su 2");
        assert!(run(&mut shell, "read doc-0").starts_with("hello world"));
    }

    #[test]
    fn proplang_attaches_from_the_shell() {
        let mut shell = Shell::new();
        run(&mut shell, "new fs /d.txt abc");
        let out = run(
            &mut shell,
            r#"attach personal doc-0 proplang source="upper | append(\"!\")""#,
        );
        assert!(out.starts_with("attached"), "{out}");
        assert!(run(&mut shell, "read doc-0").starts_with("ABC!"));
    }

    #[test]
    fn oob_edit_is_caught_by_the_verifier() {
        let mut shell = Shell::new();
        run(&mut shell, "new fs /d.txt version one");
        run(&mut shell, "read doc-0");
        run(&mut shell, "oob /d.txt version two");
        assert!(run(&mut shell, "read doc-0").starts_with("version two"));
        assert!(run(&mut shell, "stats").contains("verifier 1"));
    }

    #[test]
    fn describe_and_collections() {
        let mut shell = Shell::new();
        run(&mut shell, "new fs /d.txt x");
        run(&mut shell, "collect drafts doc-0");
        let out = run(&mut shell, "describe doc-0");
        assert!(out.contains("fs:/d.txt"), "{out}");
        assert!(out.contains("drafts"), "{out}");
        assert!(out.contains("notify-on-write"), "{out}");
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut shell = Shell::new();
        assert!(run(&mut shell, "read doc-9").starts_with("error:"));
        assert!(run(&mut shell, "bogus").starts_with("error:"));
        assert!(run(&mut shell, "attach sideways doc-0 x").starts_with("error:"));
        // The shell still works.
        run(&mut shell, "new fs /d.txt ok");
        assert!(run(&mut shell, "read doc-0").starts_with("ok"));
    }

    #[test]
    fn quit_sets_done() {
        let mut shell = Shell::new();
        assert!(!shell.is_done());
        assert_eq!(run(&mut shell, "quit"), "bye");
        assert!(shell.is_done());
    }

    #[test]
    fn detach_restores_the_original_view() {
        let mut shell = Shell::new();
        run(&mut shell, "new fs /d.txt hello world");
        let out = run(
            &mut shell,
            "attach personal doc-0 translate language=\"fr\"",
        );
        let prop = out.trim_start_matches("attached ").to_owned();
        assert!(run(&mut shell, "read doc-0").starts_with("bonjour"));
        run(&mut shell, &format!("detach personal doc-0 {prop}"));
        assert!(run(&mut shell, "read doc-0").starts_with("hello world"));
    }
}
