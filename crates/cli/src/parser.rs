//! Command-line parsing for the Placeless shell.
//!
//! Lines are split into shell-style words (double quotes group, `\"` and
//! `\\` escape) and then matched against the command grammar. Parsing is
//! separated from execution so the grammar is testable without a space.

use placeless_core::error::{PlacelessError, Result};

/// A parsed shell command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `help`
    Help,
    /// `quit` / `exit`
    Quit,
    /// `new fs|web <path> <content...>` — create a document.
    New {
        /// `fs` or `web`.
        repo: String,
        /// Repository path.
        path: String,
        /// Initial content.
        content: String,
    },
    /// `ls` — list documents.
    List,
    /// `su <user>` — switch the acting user.
    SwitchUser(u64),
    /// `adduser <user> <doc>` — give a user a reference.
    AddReference(u64, String),
    /// `read <doc>` — read through the cache.
    Read(String),
    /// `read! <doc>` — read straight through the middleware.
    ReadDirect(String),
    /// `write <doc> <content...>` — write through the cache.
    Write(String, String),
    /// `oob <path> <content...>` — out-of-band repository edit.
    OutOfBand(String, String),
    /// `attach universal|personal <doc> <kind> [param=value...]`.
    Attach {
        /// `universal` or `personal`.
        scope: String,
        /// Target document token.
        doc: String,
        /// Registered kind name.
        kind: String,
        /// `param=value` words (values already unquoted by the splitter).
        params: Vec<String>,
    },
    /// `detach universal|personal <doc> <prop-id>`.
    Detach {
        /// `universal` or `personal`.
        scope: String,
        /// Target document token.
        doc: String,
        /// Property id (number).
        prop: u64,
    },
    /// `describe <doc>`.
    Describe(String),
    /// `collect <name> <doc>` — add to a collection.
    Collect(String, String),
    /// `stats` — cache statistics.
    Stats,
    /// `tick` — fire the timer.
    Tick,
    /// `clock` — show virtual time.
    Clock,
    /// An empty line.
    Nothing,
}

/// Splits a line into words, honoring double quotes and escapes.
pub fn split_words(line: &str) -> Result<Vec<String>> {
    let mut words = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars();
    let mut pending = false;
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                in_quotes = !in_quotes;
                pending = true;
            }
            '\\' if in_quotes => match chars.next() {
                Some('"') => current.push('"'),
                Some('\\') => current.push('\\'),
                Some('n') => current.push('\n'),
                other => {
                    return Err(PlacelessError::BadPropertyParams(format!(
                        "bad escape {other:?}"
                    )))
                }
            },
            c if c.is_whitespace() && !in_quotes => {
                if pending || !current.is_empty() {
                    words.push(std::mem::take(&mut current));
                    pending = false;
                }
            }
            c => current.push(c),
        }
    }
    if in_quotes {
        return Err(PlacelessError::BadPropertyParams(
            "unterminated quote".to_owned(),
        ));
    }
    if pending || !current.is_empty() {
        words.push(current);
    }
    Ok(words)
}

fn bad(message: impl Into<String>) -> PlacelessError {
    PlacelessError::BadPropertyParams(message.into())
}

fn parse_user(word: &str) -> Result<u64> {
    word.strip_prefix("user-")
        .unwrap_or(word)
        .parse::<u64>()
        .map_err(|_| bad(format!("bad user `{word}`")))
}

/// Parses one input line.
pub fn parse_line(line: &str) -> Result<Command> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(Command::Nothing);
    }
    let words = split_words(trimmed)?;
    let rest_from = |n: usize| words[n..].join(" ");
    match words[0].as_str() {
        "help" | "?" => Ok(Command::Help),
        "quit" | "exit" => Ok(Command::Quit),
        "new" => {
            if words.len() < 4 {
                return Err(bad("usage: new fs|web <path> <content...>"));
            }
            Ok(Command::New {
                repo: words[1].clone(),
                path: words[2].clone(),
                content: rest_from(3),
            })
        }
        "ls" => Ok(Command::List),
        "su" => {
            if words.len() != 2 {
                return Err(bad("usage: su <user>"));
            }
            Ok(Command::SwitchUser(parse_user(&words[1])?))
        }
        "adduser" => {
            if words.len() != 3 {
                return Err(bad("usage: adduser <user> <doc>"));
            }
            Ok(Command::AddReference(
                parse_user(&words[1])?,
                words[2].clone(),
            ))
        }
        "read" => {
            if words.len() != 2 {
                return Err(bad("usage: read <doc>"));
            }
            Ok(Command::Read(words[1].clone()))
        }
        "read!" => {
            if words.len() != 2 {
                return Err(bad("usage: read! <doc>"));
            }
            Ok(Command::ReadDirect(words[1].clone()))
        }
        "write" => {
            if words.len() < 3 {
                return Err(bad("usage: write <doc> <content...>"));
            }
            Ok(Command::Write(words[1].clone(), rest_from(2)))
        }
        "oob" => {
            if words.len() < 3 {
                return Err(bad("usage: oob <path> <content...>"));
            }
            Ok(Command::OutOfBand(words[1].clone(), rest_from(2)))
        }
        "attach" => {
            if words.len() < 4 {
                return Err(bad(
                    "usage: attach universal|personal <doc> <kind> [param=value...]",
                ));
            }
            Ok(Command::Attach {
                scope: words[1].clone(),
                doc: words[2].clone(),
                kind: words[3].clone(),
                params: words[4..].to_vec(),
            })
        }
        "detach" => {
            if words.len() != 4 {
                return Err(bad("usage: detach universal|personal <doc> <prop-id>"));
            }
            let prop = words[3]
                .strip_prefix("prop-")
                .unwrap_or(&words[3])
                .parse::<u64>()
                .map_err(|_| bad(format!("bad property id `{}`", words[3])))?;
            Ok(Command::Detach {
                scope: words[1].clone(),
                doc: words[2].clone(),
                prop,
            })
        }
        "describe" => {
            if words.len() != 2 {
                return Err(bad("usage: describe <doc>"));
            }
            Ok(Command::Describe(words[1].clone()))
        }
        "collect" => {
            if words.len() != 3 {
                return Err(bad("usage: collect <name> <doc>"));
            }
            Ok(Command::Collect(words[1].clone(), words[2].clone()))
        }
        "stats" => Ok(Command::Stats),
        "tick" => Ok(Command::Tick),
        "clock" => Ok(Command::Clock),
        other => Err(bad(format!("unknown command `{other}` (try `help`)"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_split_with_quotes_and_escapes() {
        assert_eq!(
            split_words(r#"attach personal doc-0 proplang source="upper | append(\"!\")""#)
                .unwrap(),
            vec![
                "attach",
                "personal",
                "doc-0",
                "proplang",
                r#"source=upper | append("!")"#
            ]
        );
        assert_eq!(split_words("a  b\tc").unwrap(), vec!["a", "b", "c"]);
        assert_eq!(split_words(r#"x "" y"#).unwrap(), vec!["x", "", "y"]);
        assert!(split_words("\"unterminated").is_err());
    }

    #[test]
    fn parses_the_grammar() {
        assert_eq!(parse_line("help").unwrap(), Command::Help);
        assert_eq!(parse_line("  ").unwrap(), Command::Nothing);
        assert_eq!(parse_line("# comment").unwrap(), Command::Nothing);
        assert_eq!(
            parse_line("new fs /a.txt hello world").unwrap(),
            Command::New {
                repo: "fs".into(),
                path: "/a.txt".into(),
                content: "hello world".into()
            }
        );
        assert_eq!(parse_line("su 3").unwrap(), Command::SwitchUser(3));
        assert_eq!(parse_line("su user-3").unwrap(), Command::SwitchUser(3));
        assert_eq!(
            parse_line("read doc-0").unwrap(),
            Command::Read("doc-0".into())
        );
        assert_eq!(
            parse_line("detach personal doc-0 prop-4").unwrap(),
            Command::Detach {
                scope: "personal".into(),
                doc: "doc-0".into(),
                prop: 4
            }
        );
    }

    #[test]
    fn usage_errors() {
        assert!(parse_line("new fs /only-path").is_err());
        assert!(parse_line("su").is_err());
        assert!(parse_line("su alice").is_err());
        assert!(parse_line("frobnicate").is_err());
        assert!(parse_line("detach personal doc-0 four").is_err());
    }
}
