//! # The Placeless shell
//!
//! An interactive command engine over a live document space, its
//! repositories, and an application-level cache — the quickest way to
//! *feel* the paper's mechanics: attach a translator, watch the cache
//! invalidate; edit a file out-of-band, watch the verifier catch it.
//!
//! The engine ([`Shell`]) is a pure `line in → text out` function so it is
//! fully testable; `src/bin/placeless.rs` wraps it in a stdin loop.
//!
//! ```text
//! placeless> new fs /notes.txt hello placeless world
//! doc-0 created over fs:/notes.txt
//! placeless> attach personal doc-0 translate language="fr"
//! placeless> read doc-0
//! bonjour placeless monde
//! ```

pub mod engine;
pub mod parser;

pub use engine::Shell;
pub use parser::{parse_line, Command};
