//! Compiled transform plans — the explicit form of a property chain.
//!
//! The read and write paths used to be implicit: `DocumentSpace` re-derived
//! the base-then-reference property chain inline and folded each property's
//! stream wrapper into the previous one. A [`TransformPlan`] makes that
//! chain a first-class value: an ordered list of [`PlanStage`]s compiled
//! once per path, which the space replays for plain reads/writes and which
//! a cache can *walk* — executing stages buffered, content-addressing each
//! stage's output by a **stage signature**, and skipping stages whose
//! output it already holds.
//!
//! ## Stage signatures
//!
//! A stage's signature is `md5(input signature ‖ property name ‖ transform
//! token)`, where the token is the property's own declaration of everything
//! its transform depends on (parameters, resolved static properties,
//! external-input epochs — see
//! [`ActiveProperty::transform_token`]). Because the *input* signature is
//! folded in, the signatures form a chain rooted at the digest of the
//! provider bytes: any change to the source content, to a property's
//! parameters or program text, to an external input's epoch, or to the
//! chain order changes every downstream signature. Stale intermediate
//! entries are therefore never *served* — they simply stop being looked up
//! and age out — which is how the staged cache inherits the paper's four
//! invalidation causes by construction.
//!
//! A stage whose property declines to produce a token (`None`) is *opaque*:
//! it executes on every read, and the chain restarts from a digest of its
//! actual output, so stages downstream of an opaque stage remain cacheable.

use crate::bitprovider::BitProvider;
use crate::cacheability::Cacheability;
use crate::digest::{Md5, Signature};
use crate::error::Result;
use crate::event::EventSite;
use crate::id::{DocumentId, UserId};
use crate::property::{ActiveProperty, PathCtx, PathReport, PropsSnapshot, StageRecord};
use crate::streams::{read_all, InputStream, MemoryInput, OutputStream};
use bytes::Bytes;
use placeless_simenv::VirtualClock;
use std::sync::Arc;

/// One compiled stage of a transform plan: a property, where it is
/// attached, and its (optional) transform token.
pub struct PlanStage {
    /// The property that runs at this stage.
    pub prop: Arc<dyn ActiveProperty>,
    /// Where the property is attached (base or the user's reference).
    pub site: EventSite,
    /// The property's declared execution cost, captured at compile time.
    pub cost_micros: u64,
    /// The transform token, or `None` for an opaque stage.
    pub token: Option<Vec<u8>>,
}

impl std::fmt::Debug for PlanStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanStage")
            .field("prop", &self.prop.name())
            .field("site", &self.site)
            .field("cost_micros", &self.cost_micros)
            .field("token", &self.token.as_ref().map(|t| t.len()))
            .finish()
    }
}

/// An explicit, compiled property chain for one `(user, document)` path.
///
/// Compiled by [`crate::space::DocumentSpace`] (which owns the chain
/// assembly) and consumed either by the space itself — replaying the
/// stages as stream wrappers exactly as the old inline loops did — or by a
/// cache walking the stages buffered with intermediate-result lookups.
pub struct TransformPlan {
    /// The base document the plan reads or writes.
    pub doc: DocumentId,
    /// The user whose reference initiated the path.
    pub user: UserId,
    /// The base document's bit-provider.
    pub provider: Arc<dyn BitProvider>,
    /// Static property values visible on the path (personal shadowing
    /// universal).
    pub snapshot: PropsSnapshot,
    /// The stages in execution order: base properties first, then the
    /// user's reference properties.
    pub stages: Vec<PlanStage>,
    /// How many leading stages come from the base document. Stages
    /// `0..base_len` are user-independent; `base_len..` are the per-user
    /// reference suffix.
    pub base_len: usize,
}

impl TransformPlan {
    /// Compiles a plan from the already-assembled chain halves. Transform
    /// tokens are captured here, so the plan is a point-in-time snapshot of
    /// the chain *and* of every input the chain's transforms declared.
    pub fn compile(
        clock: &VirtualClock,
        doc: DocumentId,
        user: UserId,
        provider: Arc<dyn BitProvider>,
        base_props: Vec<Arc<dyn ActiveProperty>>,
        ref_props: Vec<Arc<dyn ActiveProperty>>,
        snapshot: PropsSnapshot,
    ) -> Self {
        let base_len = base_props.len();
        let stages = base_props
            .into_iter()
            .map(|p| (p, EventSite::Base))
            .chain(
                ref_props
                    .into_iter()
                    .map(|p| (p, EventSite::Reference(user))),
            )
            .map(|(prop, site)| {
                let ctx = PathCtx {
                    clock,
                    doc,
                    user,
                    site,
                    props: &snapshot,
                };
                let token = prop.transform_token(&ctx);
                let cost_micros = prop.execution_cost_micros();
                PlanStage {
                    prop,
                    site,
                    cost_micros,
                    token,
                }
            })
            .collect();
        Self {
            doc,
            user,
            provider,
            snapshot,
            stages,
            base_len,
        }
    }

    /// Returns the number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Returns `true` if the chain has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Builds the path context for stage `index`.
    fn ctx<'a>(&'a self, clock: &'a VirtualClock, index: usize) -> PathCtx<'a> {
        PathCtx {
            clock,
            doc: self.doc,
            user: self.user,
            site: self.stages[index].site,
            props: &self.snapshot,
        }
    }

    /// Seeds a [`PathReport`] with the provider's fetch cost, cacheability
    /// vote, and (if any) verifier — the pre-chain state of a read path.
    pub fn seed_report(&self, clock: &VirtualClock) -> PathReport {
        let mut report = PathReport::new(self.provider.fetch_cost_micros());
        report.vote(self.provider.cacheability_vote());
        if let Some(v) = self.provider.make_verifier(clock) {
            report.add_verifier(v);
        }
        report
    }

    /// Computes stage `index`'s signature given its input's signature, or
    /// `None` if the stage is opaque.
    ///
    /// The signature chains: callers thread the previous stage's signature
    /// (or a digest of the opaque stage's actual output) in as `input`.
    pub fn stage_signature(&self, index: usize, input: Signature) -> Option<Signature> {
        let stage = &self.stages[index];
        let token = stage.token.as_ref()?;
        let name = stage.prop.name().as_bytes();
        let mut ctx = Md5::new();
        ctx.update(b"stage-v1");
        ctx.update(&input.0);
        ctx.update(&(name.len() as u64).to_le_bytes());
        ctx.update(name);
        ctx.update(&(token.len() as u64).to_le_bytes());
        ctx.update(token);
        Some(ctx.finalize())
    }

    /// Replays stage `index` as a read-path stream wrapper, exactly as the
    /// old inline loop did: charge the clock, accumulate the replacement
    /// cost, interpose the property's stream, record the execution.
    pub fn wrap_input_stage(
        &self,
        clock: &VirtualClock,
        index: usize,
        report: &mut PathReport,
        stream: Box<dyn InputStream>,
    ) -> Result<Box<dyn InputStream>> {
        let ctx = self.ctx(clock, index);
        let stage = &self.stages[index];
        clock.advance(stage.cost_micros);
        report.add_cost(stage.cost_micros);
        let stream = stage.prop.wrap_input(&ctx, report, stream)?;
        report.executed.push(stage.prop.name().to_owned());
        report.record_stage(StageRecord {
            name: stage.prop.name().to_owned(),
            site: stage.site,
            cost_micros: stage.cost_micros,
            cached: false,
            signature: None,
            bytes: 0,
        });
        Ok(stream)
    }

    /// Replays stage `index` as a write-path stream wrapper (clock charge
    /// plus `wrap_output`, mirroring the old inline loop).
    pub fn wrap_output_stage(
        &self,
        clock: &VirtualClock,
        index: usize,
        report: &mut PathReport,
        stream: Box<dyn OutputStream>,
    ) -> Result<Box<dyn OutputStream>> {
        let ctx = self.ctx(clock, index);
        let stage = &self.stages[index];
        clock.advance(stage.cost_micros);
        stage.prop.wrap_output(&ctx, report, stream)
    }

    /// Executes stage `index` to completion over buffered `input`,
    /// returning the stage's output bytes. Cost accounting matches
    /// [`Self::wrap_input_stage`]; `signature` (if the stage has one) is
    /// recorded for observability.
    pub fn run_stage_buffered(
        &self,
        clock: &VirtualClock,
        index: usize,
        report: &mut PathReport,
        input: Bytes,
        signature: Option<Signature>,
    ) -> Result<Bytes> {
        let ctx = self.ctx(clock, index);
        let stage = &self.stages[index];
        clock.advance(stage.cost_micros);
        report.add_cost(stage.cost_micros);
        let inner: Box<dyn InputStream> = Box::new(MemoryInput::new(input));
        let mut wrapped = stage.prop.wrap_input(&ctx, report, inner)?;
        let out = read_all(wrapped.as_mut())?;
        report.executed.push(stage.prop.name().to_owned());
        report.record_stage(StageRecord {
            name: stage.prop.name().to_owned(),
            site: stage.site,
            cost_micros: stage.cost_micros,
            cached: false,
            signature,
            bytes: out.len() as u64,
        });
        Ok(out)
    }

    /// Executes stage `index` over `input` through the chunked streaming
    /// path, computing the output's content digest *in the same pass* that
    /// collects the bytes. Cost accounting, report entries, and output
    /// bytes are identical to [`Self::run_stage_buffered`]; the differences
    /// are purely execution strategy:
    ///
    /// - pass-through stages (wrappers that forward the input slice
    ///   unchanged) return the input `Bytes` itself, and when `input_sig`
    ///   is known the digest is carried forward without re-hashing;
    /// - transforming stages have their output hashed chunk-by-chunk as it
    ///   is collected, so no separate `md5(bytes)` pass runs afterwards.
    ///
    /// `signature` is the stage's *addressing* signature (recorded for
    /// observability, `None` for opaque stages); `input_sig` is the content
    /// digest of `input` when the caller already knows it.
    pub fn run_stage_streaming(
        &self,
        clock: &VirtualClock,
        index: usize,
        report: &mut PathReport,
        input: Bytes,
        input_sig: Option<Signature>,
        signature: Option<Signature>,
    ) -> Result<StageOutput> {
        let ctx = self.ctx(clock, index);
        let stage = &self.stages[index];
        clock.advance(stage.cost_micros);
        report.add_cost(stage.cost_micros);
        let input_ptr = input.as_ptr();
        let input_len = input.len();
        let inner: Box<dyn InputStream> = Box::new(MemoryInput::new(input.clone()));
        let mut wrapped = stage.prop.wrap_input(&ctx, report, inner)?;
        // Drain chunkwise. `input` stays alive for the whole drain, so a
        // chunk aliasing its allocation proves the stage is pass-through.
        let mut chunks: Vec<Bytes> = Vec::new();
        let mut total = 0usize;
        while let Some(chunk) = wrapped.read_chunk()? {
            total += chunk.len();
            chunks.push(chunk);
        }
        let passthrough = total == input_len
            && match chunks.as_slice() {
                [] => true,
                [only] => std::ptr::eq(only.as_ptr(), input_ptr),
                _ => false,
            };
        let (bytes, content_sig) = if chunks.len() <= 1 {
            let bytes = chunks.pop().unwrap_or_default();
            let content_sig = match input_sig {
                Some(sig) if passthrough => sig,
                _ => {
                    let mut md5 = Md5::new();
                    md5.update(&bytes);
                    md5.finalize()
                }
            };
            (bytes, content_sig)
        } else {
            let mut md5 = Md5::new();
            let mut buf = Vec::with_capacity(total);
            for chunk in &chunks {
                md5.update(chunk);
                buf.extend_from_slice(chunk);
            }
            (Bytes::from(buf), md5.finalize())
        };
        report.executed.push(stage.prop.name().to_owned());
        report.record_stage(StageRecord {
            name: stage.prop.name().to_owned(),
            site: stage.site,
            cost_micros: stage.cost_micros,
            cached: false,
            signature,
            bytes: total as u64,
        });
        Ok(StageOutput { bytes, content_sig })
    }

    /// Registers stage `index`'s path-metadata without executing its
    /// transform — the cache calls this when it serves the stage's output
    /// from the intermediate store.
    ///
    /// The property's `wrap_input` still runs (over an empty stream that is
    /// dropped unread) so cacheability votes, verifiers, and pins register
    /// exactly as on a real execution; transforming streams are lazy, so
    /// the transform itself never fires. The stage's cost still accrues to
    /// the replacement cost — it is the cost to reproduce the entry without
    /// a cache — but the clock is *not* charged: that is the saving.
    pub fn note_stage_hit(
        &self,
        clock: &VirtualClock,
        index: usize,
        report: &mut PathReport,
        signature: Signature,
        bytes: u64,
    ) -> Result<()> {
        let ctx = self.ctx(clock, index);
        let stage = &self.stages[index];
        report.add_cost(stage.cost_micros);
        let inner: Box<dyn InputStream> = Box::new(MemoryInput::new(Bytes::new()));
        let _unread = stage.prop.wrap_input(&ctx, report, inner)?;
        report.record_stage(StageRecord {
            name: stage.prop.name().to_owned(),
            site: stage.site,
            cost_micros: stage.cost_micros,
            cached: true,
            signature: Some(signature),
            bytes,
        });
        Ok(())
    }

    /// Aggregates the write-path cacheability requirement: the provider's
    /// vote combined with every stage property's `write_cacheability`.
    pub fn write_cacheability(&self) -> Cacheability {
        crate::cacheability::aggregate(
            std::iter::once(self.provider.cacheability_vote())
                .chain(self.stages.iter().map(|s| s.prop.write_cacheability())),
        )
    }
}

impl std::fmt::Debug for TransformPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransformPlan")
            .field("doc", &self.doc)
            .field("user", &self.user)
            .field("base_len", &self.base_len)
            .field("stages", &self.stages)
            .finish()
    }
}

/// One streamed stage execution's result: the output bytes and their MD5,
/// produced in the same pass (see [`TransformPlan::run_stage_streaming`]).
#[derive(Debug, Clone)]
pub struct StageOutput {
    /// The stage's output content.
    pub bytes: Bytes,
    /// Content digest of `bytes`.
    pub content_sig: Signature,
}

/// Streaming walk state for executing a [`TransformPlan`] stage by stage.
///
/// The pipeline threads three things through the chain in one pass:
///
/// - the resident chain bytes (shared [`Bytes`], handed from stage to stage
///   without copying);
/// - the **chain signature** addressing the next stage — the previous
///   stage's stage signature, or the content digest where the chain
///   (re)starts (at the root, and after every opaque stage);
/// - the **content digest** of the resident bytes, when known, so
///   pass-through stages and cache installs never re-hash content the
///   pipeline already digested.
///
/// Callers (the document space's plain path, and the cache's staged miss
/// walk) interleave [`StagePipeline::execute`] with
/// [`StagePipeline::adopt_hit`] for stages whose output they already hold.
/// A pipeline may also start from a known root *signature* without the
/// bytes ([`StagePipeline::from_signature`]): as long as every stage hits,
/// the root content is never materialized, and the first stage that needs
/// to execute asks for it via [`StagePipeline::has_bytes`] /
/// [`StagePipeline::supply_root`].
pub struct StagePipeline<'p> {
    plan: &'p TransformPlan,
    bytes: Option<Bytes>,
    chain_sig: Signature,
    content_sig: Option<Signature>,
}

impl<'p> StagePipeline<'p> {
    /// Starts a pipeline from materialized root bytes whose digest is
    /// `root_sig` (the chain's anchor signature).
    pub fn from_root(plan: &'p TransformPlan, bytes: Bytes, root_sig: Signature) -> Self {
        Self {
            plan,
            bytes: Some(bytes),
            chain_sig: root_sig,
            content_sig: Some(root_sig),
        }
    }

    /// Starts a pipeline from a known root signature *without* the root
    /// bytes — the cache's lease fast path. The bytes are only required if
    /// a stage must execute before any cached output was adopted; probe
    /// [`Self::has_bytes`] and call [`Self::supply_root`] then.
    pub fn from_signature(plan: &'p TransformPlan, root_sig: Signature) -> Self {
        Self {
            plan,
            bytes: None,
            chain_sig: root_sig,
            content_sig: Some(root_sig),
        }
    }

    /// Returns `true` once the pipeline holds resident bytes for its
    /// current position.
    pub fn has_bytes(&self) -> bool {
        self.bytes.is_some()
    }

    /// Supplies the root content for a pipeline started from a signature.
    /// The caller asserts `bytes` digest to the pipeline's root signature.
    pub fn supply_root(&mut self, bytes: Bytes) {
        debug_assert!(self.bytes.is_none(), "root already materialized");
        debug_assert_eq!(
            crate::digest::md5(&bytes),
            self.chain_sig,
            "supplied root must match the leased root signature"
        );
        self.bytes = Some(bytes);
    }

    /// The signature addressing the next stage (root digest, previous stage
    /// signature, or post-opaque content digest).
    pub fn chain_signature(&self) -> Signature {
        self.chain_sig
    }

    /// Stage `index`'s addressing signature given the current chain
    /// position, or `None` if the stage is opaque.
    pub fn stage_signature(&self, index: usize) -> Option<Signature> {
        self.plan.stage_signature(index, self.chain_sig)
    }

    /// The resident bytes at the current chain position, if materialized.
    pub fn current(&self) -> Option<&Bytes> {
        self.bytes.as_ref()
    }

    /// Content digest of the resident bytes, when known.
    pub fn content_signature(&self) -> Option<Signature> {
        self.content_sig
    }

    /// Executes stage `index` through the streaming path and advances the
    /// chain. Returns the stage's output (for cache installs: the bytes
    /// plus their already-computed content digest).
    ///
    /// # Panics
    ///
    /// Panics if the root bytes were never materialized (see
    /// [`Self::supply_root`]).
    pub fn execute(
        &mut self,
        clock: &VirtualClock,
        index: usize,
        report: &mut PathReport,
    ) -> Result<StageOutput> {
        let input = self
            .bytes
            .clone()
            .expect("pipeline bytes materialized before execute");
        let stage_sig = self.stage_signature(index);
        let out = self.plan.run_stage_streaming(
            clock,
            index,
            report,
            input,
            self.content_sig,
            stage_sig,
        )?;
        // Signed stages chain on their stage signature; opaque stages
        // restart the chain from their actual output digest.
        self.chain_sig = stage_sig.unwrap_or(out.content_sig);
        self.content_sig = Some(out.content_sig);
        self.bytes = Some(out.bytes.clone());
        Ok(out)
    }

    /// Adopts a cached output for stage `index` (a stage-store hit):
    /// registers the hit's path metadata and advances the chain without
    /// executing the transform. `content_sig` is the stored entry's content
    /// digest when the store tracked it.
    pub fn adopt_hit(
        &mut self,
        clock: &VirtualClock,
        index: usize,
        report: &mut PathReport,
        stage_sig: Signature,
        bytes: Bytes,
        content_sig: Option<Signature>,
    ) -> Result<()> {
        self.plan
            .note_stage_hit(clock, index, report, stage_sig, bytes.len() as u64)?;
        self.chain_sig = stage_sig;
        self.content_sig = content_sig;
        self.bytes = Some(bytes);
        Ok(())
    }

    /// Finishes the walk, returning the final bytes and (when known) their
    /// content digest.
    pub fn finish(self) -> (Option<Bytes>, Option<Signature>) {
        (self.bytes, self.content_sig)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::md5;
    use crate::event::{EventKind, Interests};
    use crate::streams::TransformingInput;

    struct Suffix {
        name: String,
        token: Option<Vec<u8>>,
        cost: u64,
    }

    impl ActiveProperty for Suffix {
        fn name(&self) -> &str {
            &self.name
        }
        fn interests(&self) -> Interests {
            Interests::of(&[EventKind::GetInputStream])
        }
        fn execution_cost_micros(&self) -> u64 {
            self.cost
        }
        fn wrap_input(
            &self,
            _ctx: &PathCtx<'_>,
            _report: &mut PathReport,
            inner: Box<dyn InputStream>,
        ) -> Result<Box<dyn InputStream>> {
            let suffix = self.name.clone();
            Ok(Box::new(TransformingInput::new(
                inner,
                Box::new(move |bytes| {
                    let mut out = bytes.to_vec();
                    out.extend_from_slice(suffix.as_bytes());
                    Ok(Bytes::from(out))
                }),
            )))
        }
        fn transform_token(&self, _ctx: &PathCtx<'_>) -> Option<Vec<u8>> {
            self.token.clone()
        }
    }

    fn plan_of(stages: Vec<(&str, Option<&[u8]>)>) -> TransformPlan {
        let clock = VirtualClock::new();
        let provider = crate::bitprovider::MemoryProvider::new("p", "body", 0);
        let props: Vec<Arc<dyn ActiveProperty>> = stages
            .into_iter()
            .map(|(name, token)| {
                Arc::new(Suffix {
                    name: name.to_owned(),
                    token: token.map(|t| t.to_vec()),
                    cost: 10,
                }) as Arc<dyn ActiveProperty>
            })
            .collect();
        TransformPlan::compile(
            &clock,
            DocumentId(1),
            UserId(1),
            provider,
            props,
            Vec::new(),
            PropsSnapshot::default(),
        )
    }

    #[test]
    fn signatures_chain_and_separate() {
        let plan = plan_of(vec![("a", Some(b"t1")), ("b", Some(b"t2"))]);
        let root = md5(b"body");
        let s0 = plan.stage_signature(0, root).unwrap();
        let s1 = plan.stage_signature(1, s0).unwrap();
        assert_ne!(s0, s1);
        // Deterministic.
        assert_eq!(plan.stage_signature(0, root).unwrap(), s0);
        // Different input signature shifts the whole chain.
        let other_root = md5(b"body2");
        assert_ne!(plan.stage_signature(0, other_root).unwrap(), s0);
    }

    #[test]
    fn token_and_name_both_disambiguate() {
        let root = md5(b"body");
        let a = plan_of(vec![("p", Some(b"t1"))]);
        let b = plan_of(vec![("p", Some(b"t2"))]);
        let c = plan_of(vec![("q", Some(b"t1"))]);
        let sa = a.stage_signature(0, root).unwrap();
        assert_ne!(sa, b.stage_signature(0, root).unwrap());
        assert_ne!(sa, c.stage_signature(0, root).unwrap());
    }

    #[test]
    fn length_prefixing_prevents_concatenation_collisions() {
        let root = md5(b"body");
        // ("ab", "c") vs ("a", "bc"): same concatenation, distinct stages.
        let a = plan_of(vec![("ab", Some(b"c"))]);
        let b = plan_of(vec![("a", Some(b"bc"))]);
        assert_ne!(
            a.stage_signature(0, root).unwrap(),
            b.stage_signature(0, root).unwrap()
        );
    }

    #[test]
    fn opaque_stage_has_no_signature() {
        let plan = plan_of(vec![("a", None)]);
        assert!(plan.stage_signature(0, md5(b"body")).is_none());
    }

    #[test]
    fn run_stage_buffered_matches_wrapping_and_charges_clock() {
        let plan = plan_of(vec![("a", Some(b"t"))]);
        let clock = VirtualClock::new();
        let mut report = PathReport::default();
        let out = plan
            .run_stage_buffered(&clock, 0, &mut report, Bytes::from_static(b"body"), None)
            .unwrap();
        assert_eq!(out, Bytes::from_static(b"bodya"));
        assert_eq!(clock.now().0, 10);
        assert_eq!(report.cost.raw_micros(), 10.0);
        assert_eq!(report.executed, vec!["a"]);
        assert_eq!(report.stages.len(), 1);
        assert!(!report.stages[0].cached);
    }

    #[test]
    fn note_stage_hit_registers_metadata_without_clock_charge() {
        let plan = plan_of(vec![("a", Some(b"t"))]);
        let clock = VirtualClock::new();
        let mut report = PathReport::default();
        let sig = md5(b"whatever");
        plan.note_stage_hit(&clock, 0, &mut report, sig, 5).unwrap();
        assert_eq!(clock.now().0, 0, "hit must not charge execution time");
        assert_eq!(
            report.cost.raw_micros(),
            10.0,
            "replacement cost still counts the stage"
        );
        assert!(report.executed.is_empty(), "transform did not execute");
        assert_eq!(report.stage_hits(), 1);
        assert_eq!(report.stages[0].signature, Some(sig));
        assert_eq!(report.stages[0].bytes, 5);
    }

    /// A pass-through property: wraps without changing the stream.
    struct Identity;

    impl ActiveProperty for Identity {
        fn name(&self) -> &str {
            "identity"
        }
        fn interests(&self) -> Interests {
            Interests::of(&[EventKind::GetInputStream])
        }
        fn execution_cost_micros(&self) -> u64 {
            7
        }
        fn wrap_input(
            &self,
            _ctx: &PathCtx<'_>,
            _report: &mut PathReport,
            inner: Box<dyn InputStream>,
        ) -> Result<Box<dyn InputStream>> {
            Ok(inner)
        }
        fn transform_token(&self, _ctx: &PathCtx<'_>) -> Option<Vec<u8>> {
            Some(b"id".to_vec())
        }
    }

    #[test]
    fn run_stage_streaming_matches_buffered_output_cost_and_records() {
        let make = || plan_of(vec![("a", Some(b"t"))]);
        let body = Bytes::from_static(b"body");
        let root = md5(&body);

        let plan = make();
        let clock_b = VirtualClock::new();
        let mut report_b = PathReport::default();
        let sig = plan.stage_signature(0, root);
        let buffered = plan
            .run_stage_buffered(&clock_b, 0, &mut report_b, body.clone(), sig)
            .unwrap();

        let clock_s = VirtualClock::new();
        let mut report_s = PathReport::default();
        let streamed = plan
            .run_stage_streaming(&clock_s, 0, &mut report_s, body, Some(root), sig)
            .unwrap();

        assert_eq!(streamed.bytes, buffered);
        assert_eq!(streamed.content_sig, md5(&buffered));
        assert_eq!(clock_s.now(), clock_b.now());
        assert_eq!(report_s.cost.raw_micros(), report_b.cost.raw_micros());
        assert_eq!(report_s.executed, report_b.executed);
        assert_eq!(report_s.stages.len(), 1);
        assert_eq!(report_s.stages[0].signature, sig);
        assert_eq!(report_s.stages[0].bytes, buffered.len() as u64);
    }

    #[test]
    fn run_stage_streaming_passthrough_forwards_slice_and_digest() {
        let clock = VirtualClock::new();
        let provider = crate::bitprovider::MemoryProvider::new("p", "body", 0);
        let plan = TransformPlan::compile(
            &clock,
            DocumentId(1),
            UserId(1),
            provider,
            vec![Arc::new(Identity) as Arc<dyn ActiveProperty>],
            Vec::new(),
            PropsSnapshot::default(),
        );
        let body = Bytes::from_static(b"pass through body");
        let root = md5(&body);
        let mut report = PathReport::default();
        let sig = plan.stage_signature(0, root);
        let out = plan
            .run_stage_streaming(&clock, 0, &mut report, body.clone(), Some(root), sig)
            .unwrap();
        assert!(
            std::ptr::eq(out.bytes.as_ptr(), body.as_ptr()),
            "identity stage must forward the input slice"
        );
        assert_eq!(
            out.content_sig, root,
            "digest carried forward, not rehashed"
        );
        assert_eq!(clock.now().0, 7, "execution cost still charged");
    }

    #[test]
    fn stage_pipeline_chains_executions_and_hits() {
        let plan = plan_of(vec![("a", Some(b"t1")), ("b", Some(b"t2"))]);
        let body = Bytes::from_static(b"body");
        let root = md5(&body);
        let clock = VirtualClock::new();
        let mut report = PathReport::default();

        let mut pipe = StagePipeline::from_root(&plan, body, root);
        assert_eq!(pipe.chain_signature(), root);
        let s0 = pipe.stage_signature(0).unwrap();
        let out0 = pipe.execute(&clock, 0, &mut report).unwrap();
        assert_eq!(out0.bytes, "bodya");
        assert_eq!(out0.content_sig, md5(b"bodya"));
        assert_eq!(
            pipe.chain_signature(),
            s0,
            "signed stage chains on its signature"
        );

        // Adopt stage 1 from a hypothetical cache instead of executing.
        let s1 = pipe.stage_signature(1).unwrap();
        assert_eq!(s1, plan.stage_signature(1, s0).unwrap());
        pipe.adopt_hit(
            &clock,
            1,
            &mut report,
            s1,
            Bytes::from_static(b"bodyab"),
            Some(md5(b"bodyab")),
        )
        .unwrap();
        let (bytes, content) = pipe.finish();
        assert_eq!(bytes.unwrap(), "bodyab");
        assert_eq!(content.unwrap(), md5(b"bodyab"));
        assert_eq!(report.stage_hits(), 1);
    }

    #[test]
    fn stage_pipeline_opaque_stage_restarts_chain_at_output_digest() {
        let plan = plan_of(vec![("a", None), ("b", Some(b"t"))]);
        let body = Bytes::from_static(b"body");
        let clock = VirtualClock::new();
        let mut report = PathReport::default();
        let mut pipe = StagePipeline::from_root(&plan, body.clone(), md5(&body));
        assert!(
            pipe.stage_signature(0).is_none(),
            "opaque stage unaddressable"
        );
        let out = pipe.execute(&clock, 0, &mut report).unwrap();
        assert_eq!(out.bytes, "bodya");
        assert_eq!(
            pipe.chain_signature(),
            md5(b"bodya"),
            "chain restarts from the opaque output digest"
        );
        assert_eq!(
            pipe.stage_signature(1).unwrap(),
            plan.stage_signature(1, md5(b"bodya")).unwrap()
        );
    }

    #[test]
    fn stage_pipeline_from_signature_defers_root_materialization() {
        let plan = plan_of(vec![("a", Some(b"t"))]);
        let body = Bytes::from_static(b"body");
        let root = md5(&body);
        let mut pipe = StagePipeline::from_signature(&plan, root);
        assert!(!pipe.has_bytes());
        assert_eq!(
            pipe.stage_signature(0).unwrap(),
            plan.stage_signature(0, root).unwrap(),
            "addressing works without the bytes"
        );
        pipe.supply_root(body);
        assert!(pipe.has_bytes());
        let clock = VirtualClock::new();
        let mut report = PathReport::default();
        let out = pipe.execute(&clock, 0, &mut report).unwrap();
        assert_eq!(out.bytes, "bodya");
    }
}
