//! Compiled transform plans — the explicit form of a property chain.
//!
//! The read and write paths used to be implicit: `DocumentSpace` re-derived
//! the base-then-reference property chain inline and folded each property's
//! stream wrapper into the previous one. A [`TransformPlan`] makes that
//! chain a first-class value: an ordered list of [`PlanStage`]s compiled
//! once per path, which the space replays for plain reads/writes and which
//! a cache can *walk* — executing stages buffered, content-addressing each
//! stage's output by a **stage signature**, and skipping stages whose
//! output it already holds.
//!
//! ## Stage signatures
//!
//! A stage's signature is `md5(input signature ‖ property name ‖ transform
//! token)`, where the token is the property's own declaration of everything
//! its transform depends on (parameters, resolved static properties,
//! external-input epochs — see
//! [`ActiveProperty::transform_token`]). Because the *input* signature is
//! folded in, the signatures form a chain rooted at the digest of the
//! provider bytes: any change to the source content, to a property's
//! parameters or program text, to an external input's epoch, or to the
//! chain order changes every downstream signature. Stale intermediate
//! entries are therefore never *served* — they simply stop being looked up
//! and age out — which is how the staged cache inherits the paper's four
//! invalidation causes by construction.
//!
//! A stage whose property declines to produce a token (`None`) is *opaque*:
//! it executes on every read, and the chain restarts from a digest of its
//! actual output, so stages downstream of an opaque stage remain cacheable.

use crate::bitprovider::BitProvider;
use crate::cacheability::Cacheability;
use crate::digest::{Md5, Signature};
use crate::error::Result;
use crate::event::EventSite;
use crate::id::{DocumentId, UserId};
use crate::property::{ActiveProperty, PathCtx, PathReport, PropsSnapshot, StageRecord};
use crate::streams::{read_all, InputStream, MemoryInput, OutputStream};
use bytes::Bytes;
use placeless_simenv::VirtualClock;
use std::sync::Arc;

/// One compiled stage of a transform plan: a property, where it is
/// attached, and its (optional) transform token.
pub struct PlanStage {
    /// The property that runs at this stage.
    pub prop: Arc<dyn ActiveProperty>,
    /// Where the property is attached (base or the user's reference).
    pub site: EventSite,
    /// The property's declared execution cost, captured at compile time.
    pub cost_micros: u64,
    /// The transform token, or `None` for an opaque stage.
    pub token: Option<Vec<u8>>,
}

impl std::fmt::Debug for PlanStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanStage")
            .field("prop", &self.prop.name())
            .field("site", &self.site)
            .field("cost_micros", &self.cost_micros)
            .field("token", &self.token.as_ref().map(|t| t.len()))
            .finish()
    }
}

/// An explicit, compiled property chain for one `(user, document)` path.
///
/// Compiled by [`crate::space::DocumentSpace`] (which owns the chain
/// assembly) and consumed either by the space itself — replaying the
/// stages as stream wrappers exactly as the old inline loops did — or by a
/// cache walking the stages buffered with intermediate-result lookups.
pub struct TransformPlan {
    /// The base document the plan reads or writes.
    pub doc: DocumentId,
    /// The user whose reference initiated the path.
    pub user: UserId,
    /// The base document's bit-provider.
    pub provider: Arc<dyn BitProvider>,
    /// Static property values visible on the path (personal shadowing
    /// universal).
    pub snapshot: PropsSnapshot,
    /// The stages in execution order: base properties first, then the
    /// user's reference properties.
    pub stages: Vec<PlanStage>,
    /// How many leading stages come from the base document. Stages
    /// `0..base_len` are user-independent; `base_len..` are the per-user
    /// reference suffix.
    pub base_len: usize,
}

impl TransformPlan {
    /// Compiles a plan from the already-assembled chain halves. Transform
    /// tokens are captured here, so the plan is a point-in-time snapshot of
    /// the chain *and* of every input the chain's transforms declared.
    pub fn compile(
        clock: &VirtualClock,
        doc: DocumentId,
        user: UserId,
        provider: Arc<dyn BitProvider>,
        base_props: Vec<Arc<dyn ActiveProperty>>,
        ref_props: Vec<Arc<dyn ActiveProperty>>,
        snapshot: PropsSnapshot,
    ) -> Self {
        let base_len = base_props.len();
        let stages = base_props
            .into_iter()
            .map(|p| (p, EventSite::Base))
            .chain(
                ref_props
                    .into_iter()
                    .map(|p| (p, EventSite::Reference(user))),
            )
            .map(|(prop, site)| {
                let ctx = PathCtx {
                    clock,
                    doc,
                    user,
                    site,
                    props: &snapshot,
                };
                let token = prop.transform_token(&ctx);
                let cost_micros = prop.execution_cost_micros();
                PlanStage {
                    prop,
                    site,
                    cost_micros,
                    token,
                }
            })
            .collect();
        Self {
            doc,
            user,
            provider,
            snapshot,
            stages,
            base_len,
        }
    }

    /// Returns the number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Returns `true` if the chain has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Builds the path context for stage `index`.
    fn ctx<'a>(&'a self, clock: &'a VirtualClock, index: usize) -> PathCtx<'a> {
        PathCtx {
            clock,
            doc: self.doc,
            user: self.user,
            site: self.stages[index].site,
            props: &self.snapshot,
        }
    }

    /// Seeds a [`PathReport`] with the provider's fetch cost, cacheability
    /// vote, and (if any) verifier — the pre-chain state of a read path.
    pub fn seed_report(&self, clock: &VirtualClock) -> PathReport {
        let mut report = PathReport::new(self.provider.fetch_cost_micros());
        report.vote(self.provider.cacheability_vote());
        if let Some(v) = self.provider.make_verifier(clock) {
            report.add_verifier(v);
        }
        report
    }

    /// Computes stage `index`'s signature given its input's signature, or
    /// `None` if the stage is opaque.
    ///
    /// The signature chains: callers thread the previous stage's signature
    /// (or a digest of the opaque stage's actual output) in as `input`.
    pub fn stage_signature(&self, index: usize, input: Signature) -> Option<Signature> {
        let stage = &self.stages[index];
        let token = stage.token.as_ref()?;
        let name = stage.prop.name().as_bytes();
        let mut ctx = Md5::new();
        ctx.update(b"stage-v1");
        ctx.update(&input.0);
        ctx.update(&(name.len() as u64).to_le_bytes());
        ctx.update(name);
        ctx.update(&(token.len() as u64).to_le_bytes());
        ctx.update(token);
        Some(ctx.finalize())
    }

    /// Replays stage `index` as a read-path stream wrapper, exactly as the
    /// old inline loop did: charge the clock, accumulate the replacement
    /// cost, interpose the property's stream, record the execution.
    pub fn wrap_input_stage(
        &self,
        clock: &VirtualClock,
        index: usize,
        report: &mut PathReport,
        stream: Box<dyn InputStream>,
    ) -> Result<Box<dyn InputStream>> {
        let ctx = self.ctx(clock, index);
        let stage = &self.stages[index];
        clock.advance(stage.cost_micros);
        report.add_cost(stage.cost_micros);
        let stream = stage.prop.wrap_input(&ctx, report, stream)?;
        report.executed.push(stage.prop.name().to_owned());
        report.record_stage(StageRecord {
            name: stage.prop.name().to_owned(),
            site: stage.site,
            cost_micros: stage.cost_micros,
            cached: false,
            signature: None,
        });
        Ok(stream)
    }

    /// Replays stage `index` as a write-path stream wrapper (clock charge
    /// plus `wrap_output`, mirroring the old inline loop).
    pub fn wrap_output_stage(
        &self,
        clock: &VirtualClock,
        index: usize,
        report: &mut PathReport,
        stream: Box<dyn OutputStream>,
    ) -> Result<Box<dyn OutputStream>> {
        let ctx = self.ctx(clock, index);
        let stage = &self.stages[index];
        clock.advance(stage.cost_micros);
        stage.prop.wrap_output(&ctx, report, stream)
    }

    /// Executes stage `index` to completion over buffered `input`,
    /// returning the stage's output bytes. Cost accounting matches
    /// [`Self::wrap_input_stage`]; `signature` (if the stage has one) is
    /// recorded for observability.
    pub fn run_stage_buffered(
        &self,
        clock: &VirtualClock,
        index: usize,
        report: &mut PathReport,
        input: Bytes,
        signature: Option<Signature>,
    ) -> Result<Bytes> {
        let ctx = self.ctx(clock, index);
        let stage = &self.stages[index];
        clock.advance(stage.cost_micros);
        report.add_cost(stage.cost_micros);
        let inner: Box<dyn InputStream> = Box::new(MemoryInput::new(input));
        let mut wrapped = stage.prop.wrap_input(&ctx, report, inner)?;
        let out = read_all(wrapped.as_mut())?;
        report.executed.push(stage.prop.name().to_owned());
        report.record_stage(StageRecord {
            name: stage.prop.name().to_owned(),
            site: stage.site,
            cost_micros: stage.cost_micros,
            cached: false,
            signature,
        });
        Ok(out)
    }

    /// Registers stage `index`'s path-metadata without executing its
    /// transform — the cache calls this when it serves the stage's output
    /// from the intermediate store.
    ///
    /// The property's `wrap_input` still runs (over an empty stream that is
    /// dropped unread) so cacheability votes, verifiers, and pins register
    /// exactly as on a real execution; transforming streams are lazy, so
    /// the transform itself never fires. The stage's cost still accrues to
    /// the replacement cost — it is the cost to reproduce the entry without
    /// a cache — but the clock is *not* charged: that is the saving.
    pub fn note_stage_hit(
        &self,
        clock: &VirtualClock,
        index: usize,
        report: &mut PathReport,
        signature: Signature,
    ) -> Result<()> {
        let ctx = self.ctx(clock, index);
        let stage = &self.stages[index];
        report.add_cost(stage.cost_micros);
        let inner: Box<dyn InputStream> = Box::new(MemoryInput::new(Bytes::new()));
        let _unread = stage.prop.wrap_input(&ctx, report, inner)?;
        report.record_stage(StageRecord {
            name: stage.prop.name().to_owned(),
            site: stage.site,
            cost_micros: stage.cost_micros,
            cached: true,
            signature: Some(signature),
        });
        Ok(())
    }

    /// Aggregates the write-path cacheability requirement: the provider's
    /// vote combined with every stage property's `write_cacheability`.
    pub fn write_cacheability(&self) -> Cacheability {
        crate::cacheability::aggregate(
            std::iter::once(self.provider.cacheability_vote())
                .chain(self.stages.iter().map(|s| s.prop.write_cacheability())),
        )
    }
}

impl std::fmt::Debug for TransformPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransformPlan")
            .field("doc", &self.doc)
            .field("user", &self.user)
            .field("base_len", &self.base_len)
            .field("stages", &self.stages)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::md5;
    use crate::event::{EventKind, Interests};
    use crate::streams::TransformingInput;

    struct Suffix {
        name: String,
        token: Option<Vec<u8>>,
        cost: u64,
    }

    impl ActiveProperty for Suffix {
        fn name(&self) -> &str {
            &self.name
        }
        fn interests(&self) -> Interests {
            Interests::of(&[EventKind::GetInputStream])
        }
        fn execution_cost_micros(&self) -> u64 {
            self.cost
        }
        fn wrap_input(
            &self,
            _ctx: &PathCtx<'_>,
            _report: &mut PathReport,
            inner: Box<dyn InputStream>,
        ) -> Result<Box<dyn InputStream>> {
            let suffix = self.name.clone();
            Ok(Box::new(TransformingInput::new(
                inner,
                Box::new(move |bytes| {
                    let mut out = bytes.to_vec();
                    out.extend_from_slice(suffix.as_bytes());
                    Ok(Bytes::from(out))
                }),
            )))
        }
        fn transform_token(&self, _ctx: &PathCtx<'_>) -> Option<Vec<u8>> {
            self.token.clone()
        }
    }

    fn plan_of(stages: Vec<(&str, Option<&[u8]>)>) -> TransformPlan {
        let clock = VirtualClock::new();
        let provider = crate::bitprovider::MemoryProvider::new("p", "body", 0);
        let props: Vec<Arc<dyn ActiveProperty>> = stages
            .into_iter()
            .map(|(name, token)| {
                Arc::new(Suffix {
                    name: name.to_owned(),
                    token: token.map(|t| t.to_vec()),
                    cost: 10,
                }) as Arc<dyn ActiveProperty>
            })
            .collect();
        TransformPlan::compile(
            &clock,
            DocumentId(1),
            UserId(1),
            provider,
            props,
            Vec::new(),
            PropsSnapshot::default(),
        )
    }

    #[test]
    fn signatures_chain_and_separate() {
        let plan = plan_of(vec![("a", Some(b"t1")), ("b", Some(b"t2"))]);
        let root = md5(b"body");
        let s0 = plan.stage_signature(0, root).unwrap();
        let s1 = plan.stage_signature(1, s0).unwrap();
        assert_ne!(s0, s1);
        // Deterministic.
        assert_eq!(plan.stage_signature(0, root).unwrap(), s0);
        // Different input signature shifts the whole chain.
        let other_root = md5(b"body2");
        assert_ne!(plan.stage_signature(0, other_root).unwrap(), s0);
    }

    #[test]
    fn token_and_name_both_disambiguate() {
        let root = md5(b"body");
        let a = plan_of(vec![("p", Some(b"t1"))]);
        let b = plan_of(vec![("p", Some(b"t2"))]);
        let c = plan_of(vec![("q", Some(b"t1"))]);
        let sa = a.stage_signature(0, root).unwrap();
        assert_ne!(sa, b.stage_signature(0, root).unwrap());
        assert_ne!(sa, c.stage_signature(0, root).unwrap());
    }

    #[test]
    fn length_prefixing_prevents_concatenation_collisions() {
        let root = md5(b"body");
        // ("ab", "c") vs ("a", "bc"): same concatenation, distinct stages.
        let a = plan_of(vec![("ab", Some(b"c"))]);
        let b = plan_of(vec![("a", Some(b"bc"))]);
        assert_ne!(
            a.stage_signature(0, root).unwrap(),
            b.stage_signature(0, root).unwrap()
        );
    }

    #[test]
    fn opaque_stage_has_no_signature() {
        let plan = plan_of(vec![("a", None)]);
        assert!(plan.stage_signature(0, md5(b"body")).is_none());
    }

    #[test]
    fn run_stage_buffered_matches_wrapping_and_charges_clock() {
        let plan = plan_of(vec![("a", Some(b"t"))]);
        let clock = VirtualClock::new();
        let mut report = PathReport::default();
        let out = plan
            .run_stage_buffered(&clock, 0, &mut report, Bytes::from_static(b"body"), None)
            .unwrap();
        assert_eq!(out, Bytes::from_static(b"bodya"));
        assert_eq!(clock.now().0, 10);
        assert_eq!(report.cost.raw_micros(), 10.0);
        assert_eq!(report.executed, vec!["a"]);
        assert_eq!(report.stages.len(), 1);
        assert!(!report.stages[0].cached);
    }

    #[test]
    fn note_stage_hit_registers_metadata_without_clock_charge() {
        let plan = plan_of(vec![("a", Some(b"t"))]);
        let clock = VirtualClock::new();
        let mut report = PathReport::default();
        let sig = md5(b"whatever");
        plan.note_stage_hit(&clock, 0, &mut report, sig).unwrap();
        assert_eq!(clock.now().0, 0, "hit must not charge execution time");
        assert_eq!(
            report.cost.raw_micros(),
            10.0,
            "replacement cost still counts the stage"
        );
        assert!(report.executed.is_empty(), "transform did not execute");
        assert_eq!(report.stage_hits(), 1);
        assert_eq!(report.stages[0].signature, Some(sig));
    }
}
