//! Document introspection.
//!
//! Placeless UIs (and debugging humans) need to see what a document *is*
//! for a given user: where its bits come from, which properties sit on the
//! base and on the reference and in what order, and which collections it
//! belongs to. [`DocumentDescription`] is that view, with a readable
//! `Display`.

use crate::id::{DocumentId, PropertyId, UserId};

/// One attached property, as seen by introspection.
#[derive(Debug, Clone, PartialEq)]
pub struct PropertyInfo {
    /// The property's id.
    pub id: PropertyId,
    /// The property's name.
    pub name: String,
    /// `true` for active properties, `false` for static labels.
    pub active: bool,
    /// The rendered value, for static properties.
    pub value: Option<String>,
}

/// A user's complete view of a document's structure.
#[derive(Debug, Clone, PartialEq)]
pub struct DocumentDescription {
    /// The document described.
    pub doc: DocumentId,
    /// The describing user.
    pub user: UserId,
    /// The bit-provider's description string.
    pub provider: String,
    /// Users holding references.
    pub users: Vec<UserId>,
    /// Universal properties, in chain order.
    pub universal: Vec<PropertyInfo>,
    /// The user's personal properties, in chain order.
    pub personal: Vec<PropertyInfo>,
    /// Collections the document belongs to.
    pub collections: Vec<String>,
}

impl std::fmt::Display for DocumentDescription {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{} (as seen by {})", self.doc, self.user)?;
        writeln!(f, "  provider : {}", self.provider)?;
        writeln!(
            f,
            "  users    : {}",
            self.users
                .iter()
                .map(|u| u.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        )?;
        if !self.collections.is_empty() {
            writeln!(f, "  in       : {}", self.collections.join(", "))?;
        }
        writeln!(f, "  universal:")?;
        for p in &self.universal {
            write_prop(f, p)?;
        }
        writeln!(f, "  personal :")?;
        for p in &self.personal {
            write_prop(f, p)?;
        }
        Ok(())
    }
}

fn write_prop(f: &mut std::fmt::Formatter<'_>, p: &PropertyInfo) -> std::fmt::Result {
    match (&p.value, p.active) {
        (Some(value), _) => writeln!(f, "    [{}] {} = {}", p.id, p.name, value),
        (None, true) => writeln!(f, "    [{}] {} (active)", p.id, p.name),
        (None, false) => writeln!(f, "    [{}] {}", p.id, p.name),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_renders_all_sections() {
        let description = DocumentDescription {
            doc: DocumentId(3),
            user: UserId(1),
            provider: "fs:/tilde/edelara/hotos.doc".into(),
            users: vec![UserId(1), UserId(2)],
            universal: vec![PropertyInfo {
                id: PropertyId(10),
                name: "versioning".into(),
                active: true,
                value: None,
            }],
            personal: vec![PropertyInfo {
                id: PropertyId(11),
                name: "deadline".into(),
                active: false,
                value: Some("read by 11/30".into()),
            }],
            collections: vec!["drafts".into()],
        };
        let text = description.to_string();
        assert!(text.contains("doc-3"));
        assert!(text.contains("fs:/tilde/edelara/hotos.doc"));
        assert!(text.contains("user-1, user-2"));
        assert!(text.contains("drafts"));
        assert!(text.contains("versioning (active)"));
        assert!(text.contains("deadline = read by 11/30"));
    }
}
